package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rrsched/internal/ckptstore"
)

// bundleSink captures OnShardCheckpoint pushes and can be armed to reject
// the next one, modeling a push lost on the wire.
type bundleSink struct {
	mu     sync.Mutex
	pushes [][]byte
	fail   bool
}

func (s *bundleSink) hook(shard int, round int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		s.fail = false
		return fmt.Errorf("injected push loss")
	}
	s.pushes = append(s.pushes, append([]byte(nil), data...))
	return nil
}

func (s *bundleSink) take(t *testing.T) []byte {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pushes) == 0 {
		t.Fatal("no checkpoint push captured")
	}
	last := s.pushes[len(s.pushes)-1]
	s.pushes = s.pushes[:0]
	return last
}

// chunkCount decodes a bundle and returns how many chunks ride in it.
func chunkCount(t *testing.T, data []byte) int {
	t.Helper()
	b, err := ckptstore.DecodeBundle(data)
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	return len(b.Chunks)
}

// TestBundleAckProtocol pins the sender side of the incremental checkpoint
// protocol: the first push carries the full chunk closure, quiet ticks push
// empty bundles, a dirty tenant rides as a small delta, and a failed push
// resets the acks so the next bundle is self-contained again.
func TestBundleAckProtocol(t *testing.T) {
	sink := &bundleSink{}
	svc, _, err := New(Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 10,
		RecordDecisions: true, CheckpointDecisions: true,
		Hosted: true, CheckpointBundles: true, OnShardCheckpoint: sink.hook})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClientPolicy(srv.URL, SingleShot())
	if _, err := svc.OpenShard(0, nil); err != nil {
		t.Fatalf("OpenShard: %v", err)
	}

	submit := func(tenant string, id int64) {
		t.Helper()
		out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: tenant,
			Jobs: []SubmitJob{{ID: id, Color: 0, Delay: 4}}})
		if err != nil || !out.Accepted {
			t.Fatalf("submit %s/%d: out=%+v err=%v", tenant, id, out, err)
		}
	}
	tick := func(n int) error {
		t.Helper()
		_, err := svc.TickShard(0, n)
		return err
	}

	// Push 1: three fresh tenants, jobs fully resolved — the bundle must be
	// self-contained (a receiver with an empty pool can flatten it).
	for _, tn := range []string{"pa", "pb", "pc"} {
		submit(tn, 0)
	}
	if err := tick(6); err != nil {
		t.Fatalf("tick: %v", err)
	}
	first := sink.take(t)
	if n := chunkCount(t, first); n < 3 {
		t.Fatalf("first push carries %d chunks, want the full closure (>= 3)", n)
	}
	if _, err := FlattenBundle(first, ckptstore.NewMemStore(0)); err != nil {
		t.Fatalf("first push is not self-contained: %v", err)
	}

	// Push 2: nothing changed — every chunk is acked, so the bundle is all
	// manifest, zero chunks.
	if err := tick(1); err != nil {
		t.Fatalf("quiet tick: %v", err)
	}
	if n := chunkCount(t, sink.take(t)); n != 0 {
		t.Fatalf("quiet push carries %d chunks, want 0", n)
	}

	// Push 3: one dirty tenant — only its new frame rides (as a delta chain
	// link or a folded full frame, never the whole closure), and a fresh
	// receiver cannot flatten it alone.
	submit("pa", 1)
	if err := tick(6); err != nil {
		t.Fatalf("tick: %v", err)
	}
	delta := sink.take(t)
	if n := chunkCount(t, delta); n < 1 || n > 2 {
		t.Fatalf("dirty-tenant push carries %d chunks, want 1..2", n)
	}
	if _, err := FlattenBundle(delta, ckptstore.NewMemStore(0)); err == nil {
		t.Fatal("delta push flattened against an empty pool; it must need the acked chunks")
	}

	// Push 4 is rejected: the shard must surface the failure and forget its
	// acks.
	sink.mu.Lock()
	sink.fail = true
	sink.mu.Unlock()
	submit("pb", 1)
	err = tick(6)
	if err == nil || !strings.Contains(err.Error(), "checkpoint hook") {
		t.Fatalf("tick with failing hook err = %v, want checkpoint hook failure", err)
	}

	// Push 5: after the loss, the very next bundle carries the full closure
	// again — self-contained, at least one chunk per tenant.
	if err := tick(1); err != nil {
		t.Fatalf("tick after loss: %v", err)
	}
	resend := sink.take(t)
	if n := chunkCount(t, resend); n < 3 {
		t.Fatalf("post-loss push carries %d chunks, want the full closure (>= 3)", n)
	}
	if _, err := FlattenBundle(resend, ckptstore.NewMemStore(0)); err != nil {
		t.Fatalf("post-loss push is not self-contained: %v", err)
	}
}

// TestBundleFlattenMatchesDrainCheckpoint pins receiver-side equivalence: a
// dispatcher-style pool fed every successful bundle flattens to a checkpoint
// that reopens into a shard whose decision streams are byte-identical to the
// sender's.
func TestBundleFlattenMatchesDrainCheckpoint(t *testing.T) {
	sink := &bundleSink{}
	cfg := Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 1 << 10,
		RecordDecisions: true, CheckpointDecisions: true, Hosted: true}
	bundled := cfg
	bundled.CheckpointBundles = true
	bundled.OnShardCheckpoint = sink.hook
	svc, _, err := New(bundled)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClientPolicy(srv.URL, SingleShot())
	if _, err := svc.OpenShard(0, nil); err != nil {
		t.Fatalf("OpenShard: %v", err)
	}

	// A small multi-tenant run with staggered arrivals, flattening every
	// push into the same persistent pool as the dispatcher would.
	pool := ckptstore.NewMemStore(0)
	var flat []byte
	tenants := []string{"fa", "fb", "fc", "fd"}
	nextID := map[string]int64{}
	for r := 0; r < 12; r++ {
		for i, tn := range tenants {
			if r%(i+1) == 0 && r < 8 {
				out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: tn,
					Jobs: []SubmitJob{{ID: nextID[tn], Color: int32(i % 4), Delay: 4}}})
				if err != nil || !out.Accepted {
					t.Fatalf("submit %s at %d: out=%+v err=%v", tn, r, out, err)
				}
				nextID[tn]++
			}
		}
		if _, err := svc.TickShard(0, 1); err != nil {
			t.Fatalf("tick %d: %v", r, err)
		}
		flat, err = FlattenBundle(sink.take(t), pool)
		if err != nil {
			t.Fatalf("FlattenBundle at round %d: %v", r, err)
		}
	}

	// Reopen the final flattened state elsewhere; every tenant's stream must
	// be byte-identical to the sender's.
	svc2, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New receiver: %v", err)
	}
	defer svc2.Close()
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	client2 := NewClientPolicy(srv2.URL, SingleShot())
	if round, err := svc2.OpenShard(0, flat); err != nil || round != 12 {
		t.Fatalf("reopen from flattened bundle: round=%d err=%v", round, err)
	}
	for _, tn := range tenants {
		want, err := client.DecisionsRaw(tn)
		if err != nil {
			t.Fatalf("sender DecisionsRaw(%s): %v", tn, err)
		}
		got, err := client2.DecisionsRaw(tn)
		if err != nil {
			t.Fatalf("receiver DecisionsRaw(%s): %v", tn, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %s: flattened-bundle streams diverge\nsender:   %.200s\nreceiver: %.200s", tn, want, got)
		}
	}
}
