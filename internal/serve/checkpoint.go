package serve

import (
	"encoding/json"
	"fmt"
	"sort"

	"rrsched/internal/model"
	"rrsched/internal/stream"
)

// StateSchema versions the per-shard checkpoint files written on drain.
const StateSchema = "rrserve-state/v1"

// shardCheckpoint is the JSON image of one shard: the next round, and for
// every tenant the embedded stream checkpoint plus the ingest-layer state the
// stream scheduler does not know about (queued-but-unpushed jobs, the ID
// high-water mark, and the inflight metadata the metrics layer needs).
type shardCheckpoint struct {
	Schema string `json:"schema"`
	Shard  int    `json:"shard"`
	Shards int    `json:"shards"`
	Round  int64  `json:"round"`
	// PlacementEpoch is the placement epoch the shard served under when the
	// checkpoint was cut. Zero (and omitted) for a never-resharded service,
	// which keeps pre-epoch checkpoint files decoding unchanged.
	PlacementEpoch int64 `json:"placement_epoch,omitempty"`

	Tenants []tenantCheckpoint `json:"tenants,omitempty"`
}

type tenantCheckpoint struct {
	Name  string `json:"name"`
	Epoch int64  `json:"epoch"`
	MaxID int64  `json:"max_id"`
	// Class is the tenant's QoS class; empty means the default class, so
	// pre-class checkpoints restore into the default class unchanged.
	Class string `json:"class,omitempty"`

	Delays   []colorDelay    `json:"delays,omitempty"`
	Queued   []queuedJob     `json:"queued,omitempty"`
	Inflight []inflightJob   `json:"inflight,omitempty"`
	Snapshot json.RawMessage `json:"snapshot"`
	// Decisions is the tenant's recorded decision stream, present only under
	// Config.CheckpointDecisions: the dispatcher/worker tier embeds history in
	// checkpoints so it survives a shard migration, whereas the classic drain
	// protocol keeps recordings in memory only.
	Decisions []stream.Decision `json:"decisions,omitempty"`

	// Reshard migration extensions. A frame carrying Chunk ships a reference
	// into the shared chunk store instead of embedded state: Evicted marks a
	// cold stub (no resident state at all), otherwise the target resolves the
	// chunk into a resident tenant. LogDecisions carries the tenant's
	// streaming-log records so its /v1/decisions history survives the move.
	Evicted      bool          `json:"evicted,omitempty"`
	Chunk        string        `json:"chunk,omitempty"`
	Chain        int           `json:"chain,omitempty"`
	LogDecisions []logDecision `json:"log_decisions,omitempty"`
}

// logDecision is one streaming-log record riding a migration frame: the
// global round it was appended at and the serialized stream.Decision.
type logDecision struct {
	Round    int64           `json:"round"`
	Decision json.RawMessage `json:"decision"`
}

type colorDelay struct {
	Color int32 `json:"color"`
	Delay int64 `json:"delay"`
}

type queuedJob struct {
	ID    int64 `json:"id"`
	Color int32 `json:"color"`
	Delay int64 `json:"delay"`
}

type inflightJob struct {
	ID      int64 `json:"id"`
	Color   int32 `json:"color"`
	Arrival int64 `json:"arrival"`
}

// checkpoint serializes the shard. Runs on the shard goroutine, strictly
// between round ticks, so the image is a consistent cut: every accepted job
// is either inside a scheduler snapshot, in a queued list, or resolved.
func (sh *shard) checkpoint() ([]byte, error) {
	cp := shardCheckpoint{
		Schema:         StateSchema,
		Shard:          sh.idx,
		Shards:         sh.nshards,
		Round:          sh.round,
		PlacementEpoch: sh.epoch,
	}
	for _, name := range sh.order {
		tcp, err := sh.checkpointTenant(sh.tenants[name], sh.cfg.CheckpointDecisions)
		if err != nil {
			return nil, err
		}
		cp.Tenants = append(cp.Tenants, tcp)
	}
	return json.MarshalIndent(cp, "", "  ")
}

// checkpointTenant serializes one tenant. Shared by whole-shard checkpoints
// and the reshard migration path, which ships single tenants between shards.
func (sh *shard) checkpointTenant(tn *tenant, decisions bool) (tenantCheckpoint, error) {
	snap, err := tn.sched.Snapshot()
	if err != nil {
		return tenantCheckpoint{}, fmt.Errorf("serve: checkpointing tenant %q: %w", tn.name, err)
	}
	tcp := tenantCheckpoint{
		Name:     tn.name,
		Epoch:    tn.epoch,
		MaxID:    tn.maxID,
		Snapshot: snap,
	}
	if tn.class != 0 || sh.classes[tn.class].Name != DefaultClass {
		tcp.Class = sh.classes[tn.class].Name
	}
	for c, d := range tn.delays {
		tcp.Delays = append(tcp.Delays, colorDelay{Color: int32(c), Delay: d})
	}
	sort.Slice(tcp.Delays, func(i, j int) bool { return tcp.Delays[i].Color < tcp.Delays[j].Color })
	for _, j := range tn.queued {
		tcp.Queued = append(tcp.Queued, queuedJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay})
	}
	sort.Slice(tcp.Queued, func(i, j int) bool { return tcp.Queued[i].ID < tcp.Queued[j].ID })
	for id, meta := range tn.inflight {
		tcp.Inflight = append(tcp.Inflight, inflightJob{ID: id, Color: int32(meta.Color), Arrival: meta.Arrival})
	}
	sort.Slice(tcp.Inflight, func(i, j int) bool { return tcp.Inflight[i].ID < tcp.Inflight[j].ID })
	if decisions {
		tcp.Decisions = tn.decisions
	}
	return tcp, nil
}

// restoreShard rebuilds a shard's goroutine-owned state from checkpoint
// bytes. Called before the shard goroutine starts, so plain field writes are
// safe. Validation is field by field: a corrupted file is rejected with an
// error rather than resumed into an inconsistent service.
func (sh *shard) restoreShard(data []byte, ring hashRing) error {
	cp, err := decodeShardCheckpoint(data)
	if err != nil {
		return err
	}
	if cp.Shard != sh.idx {
		return fmt.Errorf("serve: checkpoint is for shard %d, restoring shard %d", cp.Shard, sh.idx)
	}
	if cp.Shards != sh.cfg.Shards {
		return fmt.Errorf("serve: checkpoint taken with %d shards, shard expects %d", cp.Shards, sh.cfg.Shards)
	}
	sh.round = cp.Round
	if !sh.cfg.Hosted {
		// A hosted shard's placement is the dispatcher's config epoch, not a
		// worker-local ring epoch: leave it at zero there.
		sh.epoch = cp.PlacementEpoch
	}
	for i := range cp.Tenants {
		tcp := &cp.Tenants[i]
		if _, dup := sh.tenants[tcp.Name]; dup {
			return fmt.Errorf("serve: checkpoint repeats tenant %q", tcp.Name)
		}
		if got := ring.ShardOf(tcp.Name); got != sh.idx {
			return fmt.Errorf("serve: checkpoint places tenant %q on shard %d, ring says %d", tcp.Name, sh.idx, got)
		}
		tn, err := sh.buildTenant(tcp, cp.Round)
		if err != nil {
			return err
		}
		sh.adoptTenant(tn)
	}
	sort.Strings(sh.order)
	sh.setStateGauges()
	return nil
}

// decodeShardCheckpoint parses and structurally validates one shard
// checkpoint file: schema, round, and per-tenant shape (but not placement —
// the caller decides which ring and shard index the file must agree with).
func decodeShardCheckpoint(data []byte) (*shardCheckpoint, error) {
	var cp shardCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("serve: decoding shard checkpoint: %w", err)
	}
	if cp.Schema != StateSchema {
		return nil, fmt.Errorf("serve: shard checkpoint schema %q, want %q", cp.Schema, StateSchema)
	}
	if cp.Round < 0 {
		return nil, fmt.Errorf("serve: checkpoint has negative round %d", cp.Round)
	}
	if cp.Shard < 0 || cp.Shards < 1 || cp.Shard >= cp.Shards {
		return nil, fmt.Errorf("serve: checkpoint names shard %d of %d", cp.Shard, cp.Shards)
	}
	if cp.PlacementEpoch < 0 {
		return nil, fmt.Errorf("serve: checkpoint has negative placement epoch %d", cp.PlacementEpoch)
	}
	for i := range cp.Tenants {
		if err := ValidateTenant(cp.Tenants[i].Name); err != nil {
			return nil, fmt.Errorf("serve: checkpoint tenant: %w", err)
		}
	}
	return &cp, nil
}

// buildTenant reconstructs one tenant from its checkpoint image, validating
// field by field: a corrupted file is rejected with an error rather than
// resumed into an inconsistent service. round is the owning checkpoint's
// round (the bound on tenant epochs and decision history).
func (sh *shard) buildTenant(tcp *tenantCheckpoint, round int64) (*tenant, error) {
	if tcp.Epoch < 0 || tcp.Epoch > round {
		return nil, fmt.Errorf("serve: tenant %q has epoch %d outside [0, %d]", tcp.Name, tcp.Epoch, round)
	}
	class, ok := sh.restoreClass(tcp.Class)
	if !ok {
		return nil, fmt.Errorf("serve: tenant %q has unknown class %q", tcp.Name, tcp.Class)
	}
	sched, err := stream.Restore(tcp.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("serve: restoring tenant %q: %w", tcp.Name, err)
	}
	tn := &tenant{
		name:       tcp.Name,
		epoch:      tcp.Epoch,
		sched:      sched,
		maxID:      tcp.MaxID,
		delays:     make(map[model.Color]int64, len(tcp.Delays)),
		inflight:   make(map[int64]jobMeta, len(tcp.Inflight)),
		class:      class,
		lastActive: round,
	}
	for _, d := range tcp.Delays {
		if d.Color < 0 || d.Delay <= 0 || d.Delay > MaxDelayBound {
			return nil, fmt.Errorf("serve: tenant %q has invalid delay bound %d for color %d", tcp.Name, d.Delay, d.Color)
		}
		tn.delays[model.Color(d.Color)] = d.Delay
	}
	for _, q := range tcp.Queued {
		if q.ID < 0 || q.ID > tcp.MaxID {
			return nil, fmt.Errorf("serve: tenant %q queued job id %d outside [0, %d]", tcp.Name, q.ID, tcp.MaxID)
		}
		d, ok := tn.delays[model.Color(q.Color)]
		if !ok || d != q.Delay {
			return nil, fmt.Errorf("serve: tenant %q queued job %d has unregistered delay %d for color %d", tcp.Name, q.ID, q.Delay, q.Color)
		}
		tn.queued = append(tn.queued, model.Job{ID: q.ID, Color: model.Color(q.Color), Delay: q.Delay})
	}
	for _, f := range tcp.Inflight {
		if _, dup := tn.inflight[f.ID]; dup {
			return nil, fmt.Errorf("serve: tenant %q repeats inflight job %d", tcp.Name, f.ID)
		}
		if f.Color < 0 {
			return nil, fmt.Errorf("serve: tenant %q inflight job %d has negative color", tcp.Name, f.ID)
		}
		tn.inflight[f.ID] = jobMeta{Color: model.Color(f.Color), Arrival: f.Arrival}
	}
	if len(tcp.Decisions) > 0 {
		// A decision-bearing checkpoint carries the tenant's full history:
		// one decision per local round since its epoch.
		if int64(len(tcp.Decisions)) != round-tcp.Epoch {
			return nil, fmt.Errorf("serve: tenant %q checkpoint has %d decisions, want %d (rounds %d..%d)",
				tcp.Name, len(tcp.Decisions), round-tcp.Epoch, tcp.Epoch, round)
		}
		tn.decisions = tcp.Decisions
	}
	return tn, nil
}

// restoreClass maps a checkpointed class name (empty = default) to a class
// index in the shard's table.
func (sh *shard) restoreClass(name string) (int, bool) {
	if name == "" {
		name = DefaultClass
	}
	i, ok := sh.classIdx[name]
	return i, ok
}

// adoptTenant installs a reconstructed tenant into the shard's state. The
// caller is responsible for keeping sh.order sorted (restoreShard sorts once
// at the end; the reshard inject path inserts in place) and for refreshing
// the gauges via setStateGauges.
func (sh *shard) adoptTenant(tn *tenant) {
	sh.tenants[tn.name] = tn
	sh.order = append(sh.order, tn.name)
	sh.backlog += len(tn.queued)
	sh.classBacklog[tn.class] += len(tn.queued)
	sh.inflight += len(tn.inflight)
}

// setStateGauges refreshes the level gauges from the shard's rebuilt state.
func (sh *shard) setStateGauges() {
	sh.met.tenants.Set(int64(len(sh.tenants)))
	sh.met.backlog.Set(int64(sh.backlog))
	sh.met.sm.QueueDepth.Set(int64(sh.inflight))
}
