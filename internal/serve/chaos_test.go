package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"rrsched/internal/chaos"
	"rrsched/internal/obs"
)

// TestCheckpointRestoreDecisionIdentical is the durability half of the
// determinism contract: run the fixture uninterrupted, then run it again with
// a drain + checkpoint + restore in the middle, and demand that (a) the
// concatenated per-tenant decision streams match the uninterrupted run
// decision for decision, and (b) the merged metric snapshots of the two
// incarnations sum to the uninterrupted run's snapshot (zero extra drops or
// reconfigs), via the chaos package's snapshot comparison.
func TestCheckpointRestoreDecisionIdentical(t *testing.T) {
	cfg := Config{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true}
	const cutRound, totalRounds = 17, 45

	// Uninterrupted baseline.
	baseSvc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer baseSvc.Close()
	baseSrv := httptest.NewServer(baseSvc.Handler())
	defer baseSrv.Close()
	baseClient := NewClient(baseSrv.URL)
	driveService(t, baseClient, detFixture(t, 42), totalRounds)
	baseline := map[string]*DecisionsResponse{}
	for _, tn := range detFixture(t, 42) {
		dr, err := baseClient.Decisions(tn.name)
		if err != nil {
			t.Fatalf("baseline Decisions(%s): %v", tn.name, err)
		}
		baseline[tn.name] = dr
	}
	baseSnap, err := baseSvc.MergedMetrics()
	if err != nil {
		t.Fatalf("baseline metrics: %v", err)
	}

	// Interrupted run, first incarnation: rounds [0, cutRound), then the
	// drain protocol — BeginDrain, checkpoint, close — exactly as rrserve
	// does on SIGTERM.
	stateDir := t.TempDir()
	icfg := cfg
	icfg.StateDir = stateDir
	svc1, restored, err := New(icfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if restored != 0 {
		t.Fatalf("fresh state dir restored %d tenants", restored)
	}
	srv1 := httptest.NewServer(svc1.Handler())
	client1 := NewClient(srv1.URL)
	driveService(t, client1, detFixture(t, 42), cutRound)
	// Capture the pre-crash decision prefix and metrics before the shards
	// stop (decision recordings are in-memory only; checkpoints carry state,
	// not history).
	prefix := map[string]*DecisionsResponse{}
	for _, tn := range detFixture(t, 42) {
		dr, err := client1.Decisions(tn.name)
		if err != nil {
			t.Fatalf("prefix Decisions(%s): %v", tn.name, err)
		}
		prefix[tn.name] = dr
	}
	svc1.BeginDrain()
	srv1.Close()
	if err := svc1.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	snap1, err := svc1.MergedMetrics()
	if err != nil {
		t.Fatalf("incarnation-1 metrics: %v", err)
	}
	svc1.Close()
	for i := 0; i < cfg.Shards; i++ {
		if _, err := os.Stat(filepath.Join(stateDir, fmt.Sprintf("manifest-%04d.json", i))); err != nil {
			t.Fatalf("missing shard %d manifest: %v", i, err)
		}
	}

	// Second incarnation: restore and finish the run.
	svc2, restored, err := New(icfg)
	if err != nil {
		t.Fatalf("restore New: %v", err)
	}
	defer svc2.Close()
	if want := len(detFixture(t, 42)); restored != want {
		t.Fatalf("restored %d tenants, want %d", restored, want)
	}
	if svc2.Round() != cutRound {
		t.Fatalf("restored round %d, want %d", svc2.Round(), cutRound)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	defer srv2.Close()
	client2 := NewClient(srv2.URL)
	tenants := detFixture(t, 42)
	driveTail(t, client2, tenants, cutRound, totalRounds)

	// (a) Decision identity. The streaming decision log survives the restart,
	// so the restored incarnation serves each tenant's FULL history — which
	// must match the uninterrupted run byte for byte (a stronger contract
	// than the old in-memory recording, where only the post-restore suffix
	// survived). The pre-crash prefix must also be a literal prefix of it.
	for _, tn := range tenants {
		full, err := client2.Decisions(tn.name)
		if err != nil {
			t.Fatalf("restored Decisions(%s): %v", tn.name, err)
		}
		if full.Epoch != prefix[tn.name].Epoch || full.Shard != prefix[tn.name].Shard {
			t.Fatalf("tenant %s: restore moved epoch/shard: %+v vs %+v", tn.name, full, prefix[tn.name])
		}
		a, err := MarshalResponse(full.Decisions)
		if err != nil {
			t.Fatalf("encode restored stream: %v", err)
		}
		b, err := MarshalResponse(baseline[tn.name].Decisions)
		if err != nil {
			t.Fatalf("encode baseline: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("tenant %s: interrupted run diverges from baseline\ngot:  %s\nwant: %s",
				tn.name, excerpt(a, b), excerpt(b, a))
		}
		pre := prefix[tn.name].Decisions
		if len(pre) > len(full.Decisions) {
			t.Fatalf("tenant %s: pre-crash stream longer than restored stream", tn.name)
		}
		p, err := MarshalResponse(pre)
		if err != nil {
			t.Fatalf("encode prefix: %v", err)
		}
		q, err := MarshalResponse(full.Decisions[:len(pre)])
		if err != nil {
			t.Fatalf("encode restored prefix: %v", err)
		}
		if !bytes.Equal(p, q) {
			t.Fatalf("tenant %s: restored stream rewrites the pre-crash prefix", tn.name)
		}
	}

	// (b) Metric identity: the two incarnations' counters sum to the
	// uninterrupted run's. chaos.CompareSnapshots also pins that the merged
	// run covers the same number of rounds.
	snap2, err := svc2.MergedMetrics()
	if err != nil {
		t.Fatalf("incarnation-2 metrics: %v", err)
	}
	merged, err := obs.MergeSnapshots(snap1, snap2)
	if err != nil {
		t.Fatalf("MergeSnapshots: %v", err)
	}
	rep, err := chaos.CompareSnapshots(baseSnap, merged)
	if err != nil {
		t.Fatalf("CompareSnapshots: %v", err)
	}
	if rep.ExtraDrops != 0 || rep.ExtraReconfigs != 0 {
		t.Fatalf("restart cost: %+v (want zero extra drops and reconfigs)", rep)
	}
}

// driveTail is driveService restricted to global rounds [from, to): it
// submits the arrivals due in that window and ticks once per round.
func driveTail(t *testing.T, client *Client, tenants []detTenant, from, to int64) {
	t.Helper()
	for r := from; r < to; r++ {
		for i := range tenants {
			tn := &tenants[i]
			local := r - tn.startRound
			if local < 0 {
				continue
			}
			jobs := tn.seq.Request(local)
			if len(jobs) == 0 {
				continue
			}
			wire := make([]SubmitJob, len(jobs))
			for k, j := range jobs {
				wire[k] = SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
			}
			out, err := client.Submit(&SubmitRequest{Schema: WireSchema, Tenant: tn.name, Jobs: wire})
			if err != nil || !out.Accepted {
				t.Fatalf("tail submit %s at round %d: out=%+v err=%v", tn.name, r, out, err)
			}
		}
		if _, err := client.Tick(1); err != nil {
			t.Fatalf("tail tick at round %d: %v", r, err)
		}
	}
}

// TestRestoreRejectsCorruptState pins the refusal paths of restore: partial
// state dirs, shard-count changes, and mangled files must fail loudly rather
// than boot a service with silently missing tenants.
func TestRestoreRejectsCorruptState(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 64}
	stateDir := t.TempDir()
	cfg.StateDir = stateDir
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	client := NewClient(srv.URL)
	submitJobs(t, client, "alpha", SubmitJob{ID: 0, Color: 0, Delay: 4})
	if _, err := client.Tick(3); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	svc.BeginDrain()
	srv.Close()
	if err := svc.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	svc.Close()

	// A shard-count change is accepted: boot restore re-routes the tenants
	// through the larger ring and bumps the placement epoch past the
	// checkpoint's (satellite of the reshard work; the deep coverage lives in
	// reshard_test.go).
	grownCfg := cfg
	grownCfg.Shards = 4
	grown, _, err := New(grownCfg)
	if err != nil {
		t.Fatalf("restore into 4 shards: %v", err)
	}
	if st := grown.Stats(); st.Totals.Tenants != 1 || st.Epoch != 1 {
		t.Fatalf("resharded restore: tenants=%d epoch=%d, want 1 tenant at epoch 1", st.Totals.Tenants, st.Epoch)
	}
	grown.Close()

	// Partial dir (one manifest missing) must be refused.
	if err := os.Remove(filepath.Join(stateDir, "manifest-0001.json")); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, _, err := New(cfg); err == nil {
		t.Fatal("restore accepted a partial state dir")
	}

	// Corrupt JSON must be refused.
	if err := os.WriteFile(filepath.Join(stateDir, "manifest-0001.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := New(cfg); err == nil {
		t.Fatal("restore accepted a corrupt manifest")
	}
}
