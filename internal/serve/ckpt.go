package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"rrsched/internal/ckptstore"
	"rrsched/internal/obs"
	"rrsched/internal/stream"
)

// This file is the serve tier's side of the incremental checkpoint store:
// delta cuts (only dirty tenants are re-serialized), cold-tenant paging
// (quiescent tenants evict to the chunk store and fault back in on their next
// submission), the streaming decision log, and the hosted-tier bundle
// protocol. The disk formats live in internal/ckptstore; this file owns the
// mapping between shard state and those formats.

// tenantChunkPayload is what a tenant state chunk holds: the tenant's
// checkpoint image plus the round it was cut at. The round must travel inside
// the chunk because clean tenants keep their old chunk while the manifest's
// round advances — the restored scheduler fast-forwards the gap, which is
// deterministic precisely because a clean tenant's skipped rounds are trivial.
type tenantChunkPayload struct {
	Round  int64            `json:"round"`
	Tenant tenantCheckpoint `json:"tenant"`
}

// evictedStub is the resident trace of a paged-out tenant: enough to route
// reshards, answer decision queries, and fault the tenant back in, without
// holding any scheduler state.
type evictedStub struct {
	chunk ckptstore.Ref
	epoch int64
	class int
}

// cutCmd asks the shard to serialize its dirty tenants into the chunk store
// and return the manifest that commits the cut.
type cutCmd struct {
	reply chan cutResult
}

type cutResult struct {
	manifest []byte
	// roots are the manifest's referenced chunk IDs — this shard's
	// contribution to the GC root set.
	roots []uint64
	err   error
}

// markDirty flags a tenant whose state has diverged from its committed chunk.
func (sh *shard) markDirty(tn *tenant) {
	if !tn.dirty {
		tn.dirty = true
		sh.dirtyCount++
		sh.met.ckm.DirtyTenants.Set(int64(sh.dirtyCount))
	}
}

func (sh *shard) clearDirty(tn *tenant) {
	if tn.dirty {
		tn.dirty = false
		sh.dirtyCount--
		sh.met.ckm.DirtyTenants.Set(int64(sh.dirtyCount))
	}
}

// setPagingGauges refreshes the resident/evicted split gauges.
func (sh *shard) setPagingGauges() {
	sh.met.ckm.ResidentTenants.Set(int64(len(sh.tenants)))
	sh.met.ckm.EvictedTenants.Set(int64(len(sh.evicted)))
}

// encodeTenantChunk serializes one tenant as a chunk payload cut at the
// shard's current round.
func (sh *shard) encodeTenantChunk(tn *tenant) ([]byte, error) {
	tcp, err := sh.checkpointTenant(tn, sh.cfg.CheckpointDecisions)
	if err != nil {
		return nil, err
	}
	return json.Marshal(tenantChunkPayload{Round: sh.round, Tenant: tcp})
}

// putTenantChunk commits a tenant's current state to the chunk store (disk in
// classic mode, the in-memory bundle pool in hosted mode), as a delta against
// the tenant's previous chunk when that is smaller, and updates the tenant's
// reference and the chunk metrics.
func (sh *shard) putTenantChunk(tn *tenant) error {
	payload, err := sh.encodeTenantChunk(tn)
	if err != nil {
		return err
	}
	var res ckptstore.PutResult
	if sh.store != nil {
		res, err = sh.store.Put(payload, tn.chunk)
	} else {
		res, err = sh.pool.Put(payload, tn.chunk)
	}
	if err != nil {
		return fmt.Errorf("serve: shard %d tenant %q chunk: %w", sh.idx, tn.name, err)
	}
	ckm := sh.met.ckm
	if res.Wrote {
		ckm.ChunksWritten.Inc()
		ckm.ChunkBytes.Add(int64(res.Bytes))
	} else {
		ckm.ChunksDeduped.Inc()
	}
	if res.Folded {
		ckm.ChunksFolded.Inc()
	}
	tn.chunk = res.Ref
	sh.clearDirty(tn)
	return nil
}

// handleCut serializes the shard's dirty tenants into the chunk store and
// builds the manifest that commits the cut. Clean tenants keep their previous
// chunk reference; evicted tenants commit as stubs. Runs on the shard
// goroutine, strictly between round ticks.
func (sh *shard) handleCut() cutResult {
	if sh.store == nil {
		return cutResult{err: fmt.Errorf("serve: shard %d has no chunk store", sh.idx)}
	}
	if sh.declogErr != nil {
		return cutResult{err: sh.declogErr}
	}
	m := &ckptstore.Manifest{
		Schema:         ckptstore.ManifestSchema,
		Shard:          sh.idx,
		Shards:         sh.nshards,
		Round:          sh.round,
		PlacementEpoch: sh.epoch,
	}
	for _, name := range sh.order {
		tn := sh.tenants[name]
		if tn.dirty || tn.chunk.ID == 0 {
			if err := sh.putTenantChunk(tn); err != nil {
				return cutResult{err: err}
			}
		}
		m.Tenants = append(m.Tenants, ckptstore.TenantRef{
			Name:  name,
			Chunk: ckptstore.FormatChunkID(tn.chunk.ID),
			Chain: tn.chunk.Chain,
		})
	}
	stubs := make([]string, 0, len(sh.evicted))
	for name := range sh.evicted {
		stubs = append(stubs, name)
	}
	sort.Strings(stubs)
	for _, name := range stubs {
		stub := sh.evicted[name]
		m.Tenants = append(m.Tenants, ckptstore.TenantRef{
			Name:    name,
			Chunk:   ckptstore.FormatChunkID(stub.chunk.ID),
			Chain:   stub.chunk.Chain,
			Evicted: true,
			Epoch:   stub.epoch,
			Class:   sh.classes[stub.class].Name,
		})
	}
	if sh.declog != nil {
		if err := sh.declog.Flush(); err != nil {
			return cutResult{err: fmt.Errorf("serve: shard %d decision log: %w", sh.idx, err)}
		}
		sh.met.ckm.DecisionLogB.Set(sh.declog.Bytes())
	}
	data, err := ckptstore.EncodeManifest(m)
	if err != nil {
		return cutResult{err: fmt.Errorf("serve: shard %d manifest: %w", sh.idx, err)}
	}
	roots, err := m.Roots()
	if err != nil {
		return cutResult{err: err}
	}
	return cutResult{manifest: data, roots: roots}
}

// maybeEvict pages out tenants that have been quiescent for at least
// Config.EvictAfter rounds. Quiescence means no queued and no inflight work:
// such a tenant's future rounds are all trivial until its next submission, so
// the fast-forward a fault-in performs reproduces the live decision stream
// byte for byte. Runs at the end of a tick, on the shard goroutine.
func (sh *shard) maybeEvict() {
	if sh.cfg.EvictAfter <= 0 || sh.store == nil {
		return
	}
	var victims []string
	for _, name := range sh.order {
		tn := sh.tenants[name]
		if len(tn.queued) == 0 && len(tn.inflight) == 0 && sh.round-tn.lastActive >= sh.cfg.EvictAfter {
			victims = append(victims, name)
		}
	}
	if len(victims) == 0 {
		return
	}
	for _, name := range victims {
		sh.evictTenant(sh.tenants[name])
	}
	sh.setStateGauges()
	sh.setPagingGauges()
}

// evictTenant serializes one quiescent tenant into the chunk store and drops
// it from resident state, leaving a stub. A failed chunk write leaves the
// tenant resident (eviction is an optimization; the next tick retries).
func (sh *shard) evictTenant(tn *tenant) {
	if tn.dirty || tn.chunk.ID == 0 {
		if err := sh.putTenantChunk(tn); err != nil {
			return
		}
	}
	sh.evicted[tn.name] = evictedStub{chunk: tn.chunk, epoch: tn.epoch, class: tn.class}
	delete(sh.tenants, tn.name)
	i := sort.SearchStrings(sh.order, tn.name)
	sh.order = append(sh.order[:i], sh.order[i+1:]...)
}

// faultIn transparently pages an evicted tenant back in: resolve its chunk
// chain, rebuild the tenant at the chunk's round, and adopt it. The returned
// tenant's scheduler sits at the chunk's round; the next tick's Push
// fast-forwards it to the shard round (a deterministic no-op walk, because an
// evicted tenant's skipped rounds are trivial). Returns (nil, nil) when the
// name is not evicted here.
func (sh *shard) faultIn(name string) (*tenant, error) {
	stub, ok := sh.evicted[name]
	if !ok {
		return nil, nil
	}
	t0 := obs.Now()
	payload, _, err := sh.store.Resolve(stub.chunk.ID)
	if err != nil {
		return nil, fmt.Errorf("serve: faulting in tenant %q: %w", name, err)
	}
	var tcp tenantChunkPayload
	if err := json.Unmarshal(payload, &tcp); err != nil {
		return nil, fmt.Errorf("serve: faulting in tenant %q: %w", name, err)
	}
	if tcp.Tenant.Name != name {
		return nil, fmt.Errorf("serve: tenant %q chunk holds tenant %q", name, tcp.Tenant.Name)
	}
	if tcp.Round < 0 || tcp.Round > sh.round {
		return nil, fmt.Errorf("serve: tenant %q chunk round %d outside [0, %d]", name, tcp.Round, sh.round)
	}
	tn, err := sh.buildTenant(&tcp.Tenant, tcp.Round)
	if err != nil {
		return nil, err
	}
	delete(sh.evicted, name)
	tn.chunk = stub.chunk
	tn.lastActive = sh.round
	sh.tenants[name] = tn
	i := sort.SearchStrings(sh.order, name)
	sh.order = append(sh.order, "")
	copy(sh.order[i+1:], sh.order[i:])
	sh.order[i] = name
	sh.backlog += len(tn.queued)
	sh.classBacklog[tn.class] += len(tn.queued)
	sh.inflight += len(tn.inflight)
	sh.setStateGauges()
	sh.setPagingGauges()
	sh.met.ckm.FaultIns.Inc()
	sh.met.ckm.FaultInNs.Observe(obs.Now() - t0)
	return tn, nil
}

// recordDecision records one tenant round decision: appended to resident
// memory in memory mode, streamed to the shard's decision log in log mode.
// The log stores only non-trivial decisions (at the tenant's global round);
// trivial rounds are synthesized at read time, byte-identically, because the
// scheduler constructs trivial decisions as Decision{Round: r} with nil
// slices.
func (sh *shard) recordDecision(tn *tenant, dec stream.Decision) {
	if sh.declog == nil {
		tn.decisions = append(tn.decisions, dec)
		return
	}
	if len(dec.Reconfigs) == 0 && len(dec.Executions) == 0 && len(dec.Dropped) == 0 {
		return
	}
	payload, err := json.Marshal(dec)
	if err == nil {
		err = sh.declog.Append(tn.name, tn.epoch+dec.Round, payload)
	}
	if err != nil && sh.declogErr == nil {
		// The log is now behind the live stream; surface that on the next cut
		// and on decision reads instead of silently serving a hole.
		sh.declogErr = fmt.Errorf("serve: shard %d decision log: %w", sh.idx, err)
	}
}

// decisionsFromLog answers /v1/decisions in log mode: synthesize a trivial
// decision per tenant round, then overlay the logged non-trivial ones. Works
// for evicted tenants too (their epoch lives in the stub), without faulting
// them in.
func (sh *shard) decisionsFromLog(name string) decisionsResult {
	if sh.declogErr != nil {
		return decisionsResult{status: http.StatusInternalServerError, err: sh.declogErr.Error()}
	}
	var epoch int64
	if tn := sh.tenants[name]; tn != nil {
		epoch = tn.epoch
	} else if stub, ok := sh.evicted[name]; ok {
		epoch = stub.epoch
	} else {
		return decisionsResult{status: http.StatusNotFound, err: fmt.Sprintf("unknown tenant %q", name)}
	}
	recs, err := sh.declog.ReadTenant(name)
	if err != nil {
		return decisionsResult{status: http.StatusInternalServerError, err: err.Error()}
	}
	n := sh.round - epoch
	decs := make([]stream.Decision, n)
	for i := range decs {
		decs[i] = stream.Decision{Round: int64(i)}
	}
	for _, rec := range recs {
		local := rec.Round - epoch
		if local < 0 || local >= n {
			return decisionsResult{status: http.StatusInternalServerError,
				err: fmt.Sprintf("decision log round %d outside tenant %q rounds [%d, %d)", rec.Round, name, epoch, sh.round)}
		}
		var dec stream.Decision
		if err := json.Unmarshal(rec.Payload, &dec); err != nil {
			return decisionsResult{status: http.StatusInternalServerError, err: err.Error()}
		}
		// Keep-last: a tenant that resharded away and back has its records
		// replayed into this log; the values are identical, the last wins.
		decs[local] = dec
	}
	return decisionsResult{
		status: http.StatusOK,
		resp: &DecisionsResponse{
			Schema:         DecisionsSchema,
			Tenant:         name,
			Shard:          sh.idx,
			Epoch:          epoch,
			Round:          sh.round,
			PlacementEpoch: sh.epoch,
			Decisions:      decs,
		},
	}
}

// restoreManifest rebuilds a shard from its incremental checkpoint manifest:
// resident tenants are resolved out of the chunk store and rebuilt at their
// chunk's round (the next tick fast-forwards them to the manifest round);
// evicted tenants restore as stubs without touching their chunks. Called
// before the shard goroutine starts.
func (sh *shard) restoreManifest(m *ckptstore.Manifest, ring hashRing) error {
	sh.round = m.Round
	if !sh.cfg.Hosted {
		sh.epoch = m.PlacementEpoch
	}
	for i := range m.Tenants {
		ref := &m.Tenants[i]
		if err := ValidateTenant(ref.Name); err != nil {
			return fmt.Errorf("serve: manifest tenant: %w", err)
		}
		if got := ring.ShardOf(ref.Name); got != sh.idx {
			return fmt.Errorf("serve: manifest places tenant %q on shard %d, ring says %d", ref.Name, sh.idx, got)
		}
		if _, dup := sh.tenants[ref.Name]; dup {
			return fmt.Errorf("serve: manifest repeats tenant %q", ref.Name)
		}
		if _, dup := sh.evicted[ref.Name]; dup {
			return fmt.Errorf("serve: manifest repeats tenant %q", ref.Name)
		}
		r, err := ref.Ref()
		if err != nil {
			return err
		}
		if ref.Evicted {
			class, ok := sh.restoreClass(ref.Class)
			if !ok {
				return fmt.Errorf("serve: evicted tenant %q has unknown class %q", ref.Name, ref.Class)
			}
			if !sh.store.Has(r.ID) {
				return fmt.Errorf("serve: evicted tenant %q chunk %s missing from the store", ref.Name, ref.Chunk)
			}
			sh.evicted[ref.Name] = evictedStub{chunk: r, epoch: ref.Epoch, class: class}
			continue
		}
		payload, _, err := sh.store.Resolve(r.ID)
		if err != nil {
			return fmt.Errorf("serve: tenant %q: %w", ref.Name, err)
		}
		var tcp tenantChunkPayload
		if err := json.Unmarshal(payload, &tcp); err != nil {
			return fmt.Errorf("serve: tenant %q chunk: %w", ref.Name, err)
		}
		if tcp.Tenant.Name != ref.Name {
			return fmt.Errorf("serve: tenant %q chunk holds tenant %q", ref.Name, tcp.Tenant.Name)
		}
		if tcp.Round < 0 || tcp.Round > m.Round {
			return fmt.Errorf("serve: tenant %q chunk round %d outside [0, %d]", ref.Name, tcp.Round, m.Round)
		}
		tn, err := sh.buildTenant(&tcp.Tenant, tcp.Round)
		if err != nil {
			return err
		}
		tn.chunk = r
		sh.adoptTenant(tn)
	}
	sort.Strings(sh.order)
	sh.setStateGauges()
	sh.setPagingGauges()
	return nil
}

// restoreManifests loads an incremental checkpoint set, if one exists.
// Mirrors the legacy restore's contract: all manifests or none, set-internal
// agreement on shards/round/epoch, and a count mismatch with the current
// configuration re-routes references through the current ring instead of
// refusing. Returns found=false when the state dir holds no manifests.
func (s *Service) restoreManifests(pl *placement) (restored int, resharded, found bool, err error) {
	files, err := filepath.Glob(filepath.Join(s.cfg.StateDir, "manifest-*.json"))
	if err != nil {
		return 0, false, false, fmt.Errorf("serve: probing state dir: %w", err)
	}
	if len(files) == 0 {
		return 0, false, false, nil
	}
	ms := make([]*ckptstore.Manifest, 0, len(files))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return 0, false, false, fmt.Errorf("serve: reading %s: %w", f, err)
		}
		m, err := ckptstore.DecodeManifest(data)
		if err != nil {
			return 0, false, false, fmt.Errorf("serve: %s: %w", f, err)
		}
		ms = append(ms, m)
	}
	want := ms[0].Shards
	if len(files) != want {
		return 0, false, false, fmt.Errorf("serve: state dir %s has %d of %d manifests; refusing a partial restore",
			s.cfg.StateDir, len(files), want)
	}
	byIdx := make([]*ckptstore.Manifest, want)
	for _, m := range ms {
		if m.Shards != want {
			return 0, false, false, fmt.Errorf("serve: manifest shard counts diverge (%d vs %d)", m.Shards, want)
		}
		if m.Round != ms[0].Round {
			return 0, false, false, fmt.Errorf("serve: shard rounds diverge in manifest set (%d vs %d)", m.Round, ms[0].Round)
		}
		if m.PlacementEpoch != ms[0].PlacementEpoch {
			return 0, false, false, fmt.Errorf("serve: placement epochs diverge in manifest set (%d vs %d)", m.PlacementEpoch, ms[0].PlacementEpoch)
		}
		if byIdx[m.Shard] != nil {
			return 0, false, false, fmt.Errorf("serve: state dir repeats manifest for shard %d", m.Shard)
		}
		byIdx[m.Shard] = m
	}
	if want != s.cfg.Shards {
		byIdx, err = ReshardManifests(byIdx, s.cfg.Shards)
		if err != nil {
			return 0, false, false, fmt.Errorf("serve: re-routing %d-shard manifest set into %d shards: %w", want, s.cfg.Shards, err)
		}
		resharded = true
	}
	for i, sh := range pl.shards {
		if err := sh.restoreManifest(byIdx[i], pl.ring); err != nil {
			return 0, false, false, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		restored += len(sh.tenants) + len(sh.evicted)
	}
	pl.epoch = pl.shards[0].epoch
	s.round.Store(pl.shards[0].round)
	return restored, resharded, true, nil
}

// ReshardManifests transforms a complete manifest set taken under one shard
// count into an equivalent set for newShards: tenant references are re-routed
// through the newShards ring and the placement epoch is bumped past the
// input's. No chunk moves — references keep pointing into the shared store,
// which is what makes resharding an incremental checkpoint set O(tenants)
// instead of O(state bytes).
func ReshardManifests(old []*ckptstore.Manifest, newShards int) ([]*ckptstore.Manifest, error) {
	if newShards < 1 || newShards > MaxShards {
		return nil, fmt.Errorf("serve: reshard to %d shards out of range (1..%d)", newShards, MaxShards)
	}
	if len(old) == 0 {
		return nil, fmt.Errorf("serve: no manifests to reshard")
	}
	for i, m := range old {
		if m == nil || m.Shard != i {
			return nil, fmt.Errorf("serve: manifest %d missing or misnumbered", i)
		}
		if m.Shards != len(old) {
			return nil, fmt.Errorf("serve: manifest %d was taken with %d shards, set has %d", i, m.Shards, len(old))
		}
		if m.Round != old[0].Round {
			return nil, fmt.Errorf("serve: shard rounds diverge in manifest set (%d vs %d)", m.Round, old[0].Round)
		}
		if m.PlacementEpoch != old[0].PlacementEpoch {
			return nil, fmt.Errorf("serve: placement epochs diverge in manifest set (%d vs %d)", m.PlacementEpoch, old[0].PlacementEpoch)
		}
	}
	ring := newHashRing(newShards)
	out := make([]*ckptstore.Manifest, newShards)
	for i := range out {
		out[i] = &ckptstore.Manifest{
			Schema:         ckptstore.ManifestSchema,
			Shard:          i,
			Shards:         newShards,
			Round:          old[0].Round,
			PlacementEpoch: old[0].PlacementEpoch + 1,
		}
	}
	seen := make(map[string]bool)
	for _, m := range old {
		for i := range m.Tenants {
			ref := m.Tenants[i]
			if seen[ref.Name] {
				return nil, fmt.Errorf("serve: manifest set repeats tenant %q", ref.Name)
			}
			seen[ref.Name] = true
			t := ring.ShardOf(ref.Name)
			out[t].Tenants = append(out[t].Tenants, ref)
		}
	}
	for _, m := range out {
		sort.Slice(m.Tenants, func(a, b int) bool { return m.Tenants[a].Name < m.Tenants[b].Name })
	}
	return out, nil
}
