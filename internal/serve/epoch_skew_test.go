package serve

import (
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync"
	"testing"
)

// TestEpochSkewTyped409 pins the wire contract for stale-epoch submits: a
// request asserting an old placement epoch gets a 409 whose body carries
// Code "epoch_skew" and the current epoch as a retry hint, and a request
// asserting the current epoch (or none) is admitted.
func TestEpochSkewTyped409(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 64}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if _, err := svc.Reshard(3); err != nil {
		t.Fatalf("Reshard(3): %v", err)
	}

	// A pinned stale epoch surfaces as EpochSkew, not Duplicate, with the
	// current epoch hinted.
	client := NewClient(srv.URL)
	out, err := client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha", Epoch: 99,
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}},
	})
	if err != nil {
		t.Fatalf("pinned submit: %v", err)
	}
	if !out.EpochSkew || out.Duplicate || out.Accepted {
		t.Fatalf("pinned stale epoch: outcome %+v, want EpochSkew", out)
	}
	if out.Epoch != 1 {
		t.Fatalf("skew hint %d, want 1", out.Epoch)
	}

	// The correct pin and the empty assertion both land.
	out, err = client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha", Epoch: 1,
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}},
	})
	if err != nil || !out.Accepted {
		t.Fatalf("correct pin: out=%+v err=%v", out, err)
	}
	out, err = client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "beta",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}},
	})
	if err != nil || !out.Accepted {
		t.Fatalf("unasserted submit: out=%+v err=%v", out, err)
	}
	if out.Epoch != 1 {
		t.Fatalf("accepted submit reported epoch %d, want 1", out.Epoch)
	}
}

// TestEpochSkewBinaryWire re-pins the typed 409 over the binary codec: the
// epoch rides the v2 submit trailer, and the skew answer is still readable
// (errors are JSON on both codecs).
func TestEpochSkewBinaryWire(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 64}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	if _, err := svc.Reshard(4); err != nil {
		t.Fatalf("Reshard(4): %v", err)
	}

	client := NewClientWire(srv.URL, DefaultRetryPolicy(), WireBinary)
	out, err := client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha", Epoch: 7,
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}},
	})
	if err != nil {
		t.Fatalf("binary pinned submit: %v", err)
	}
	if !out.EpochSkew || out.Epoch != 1 {
		t.Fatalf("binary stale epoch: outcome %+v, want EpochSkew at hint 1", out)
	}
	// The binary response trailer carries the epoch on acceptance.
	out, err = client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}},
	})
	if err != nil || !out.Accepted || out.Epoch != 1 {
		t.Fatalf("binary unasserted submit: out=%+v err=%v, want accepted at epoch 1", out, err)
	}
}

// TestClientRetriesEpochSkewTransparently pins the client contract: a client
// that learned one epoch keeps working across a reshard it did not perform —
// the skew 409 is absorbed by one adopt-and-retry, invisible to the caller.
// A fault-injection proxy flips the epoch between the client's send and the
// server's admission, which is the worst-case interleaving.
func TestClientRetriesEpochSkewTransparently(t *testing.T) {
	cfg := Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16}
	svc, _, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	backend := httptest.NewServer(svc.Handler())
	defer backend.Close()
	target, err := url.Parse(backend.URL)
	if err != nil {
		t.Fatalf("parse backend URL: %v", err)
	}

	// The proxy reshards the backend upon seeing one marked submit, after
	// the client has committed to its learned epoch — then forwards.
	var mu sync.Mutex
	flipped := false
	rp := httputil.NewSingleHostReverseProxy(target)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/jobs" {
			mu.Lock()
			doFlip := !flipped
			flipped = true
			mu.Unlock()
			if doFlip {
				if _, err := svc.Reshard(5); err != nil {
					t.Errorf("mid-flight Reshard(5): %v", err)
				}
			}
		}
		rp.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	client := NewClient(proxy.URL)
	// Learn epoch 1 the ordinary way: reshard through the client.
	if _, err := client.Reshard(3); err != nil {
		t.Fatalf("Reshard(3): %v", err)
	}
	if got := client.PlacementEpoch(); got != 1 {
		t.Fatalf("client learned epoch %d, want 1", got)
	}

	// This submit asserts epoch 1; the proxy flips the service to epoch 2
	// mid-flight. The caller must only see an acceptance.
	out, err := client.Submit(&SubmitRequest{
		Schema: WireSchema, Tenant: "alpha",
		Jobs: []SubmitJob{{ID: 0, Color: 0, Delay: 4}},
	})
	if err != nil || !out.Accepted {
		t.Fatalf("submit across epoch flip: out=%+v err=%v", out, err)
	}
	if got := client.PlacementEpoch(); got != 2 {
		t.Fatalf("client adopted epoch %d, want 2", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if !flipped {
		t.Fatal("proxy never flipped the epoch")
	}
}
