package atomicio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard0.json")
	want := []byte(`{"epoch":3}`)
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("content = %q, want %q", got, want)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the rename: stat err = %v", err)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := WriteFile(path, []byte("old old old"), 0o644); err != nil {
		t.Fatalf("first WriteFile: %v", err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatalf("second WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "new" {
		t.Fatalf("content = %q, want %q (old content must be fully replaced)", got, "new")
	}
}

func TestWriteFileMissingDirErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "state.json")
	if err := WriteFile(path, []byte("x"), 0o644); err == nil {
		t.Fatal("WriteFile into a missing directory should error")
	}
}
