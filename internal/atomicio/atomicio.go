// Package atomicio is the sanctioned crash-consistent file writer for the
// serve/dispatch tier's state and checkpoint files. A plain os.WriteFile
// truncates the destination before writing, so a crash between truncate and
// flush leaves a torn file — and a torn checkpoint is exactly the artifact
// the dispatcher's failover protocol trusts to restore a shard. WriteFile
// stages the bytes in a sibling temp file and renames it over the
// destination; rename within a directory is atomic on POSIX filesystems, so
// readers observe either the old complete file or the new complete file,
// never a prefix.
//
// The atomicwrite analyzer (internal/analysis) enforces that state-path
// writes go through this package.
package atomicio

import "os"

// WriteFile writes data to path crash-consistently: the bytes land in
// path+".tmp" first and are renamed over path only once fully written. On a
// staging-write error the temp file may be left behind; the next successful
// write to the same path reuses (and truncates) it.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
