package adversary

import (
	"testing"

	"rrsched/internal/core"
	"rrsched/internal/sim"
)

func baseConfig() Config {
	// A search space containing the Appendix A shape: four short colors
	// (delay 64) and one long color (delay 512) over 512 rounds.
	return Config{
		Seed: 1, Delta: 4, Colors: 5,
		DelayExps: []uint{6, 6, 6, 6, 9},
		Rounds:    512, Iterations: 300,
		Resources: 8, LBResources: 1,
	}
}

func TestMineImprovesRatio(t *testing.T) {
	cfg := baseConfig()
	res, err := Mine(cfg, func() sim.Policy { return core.NewDeltaLRU() })
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < res.InitialRatio {
		t.Errorf("mining regressed: %v -> %v", res.InitialRatio, res.Ratio)
	}
	if res.Sequence == nil || res.Sequence.Validate() != nil {
		t.Fatal("mined instance invalid")
	}
	if !res.Sequence.IsBatched() {
		t.Error("mined instance not batched")
	}
}

func TestMineSeparatesPureFromCombined(t *testing.T) {
	cfg := baseConfig()
	lru, err := Mine(cfg, func() sim.Policy { return core.NewDeltaLRU() })
	if err != nil {
		t.Fatal(err)
	}
	combo, err := Mine(cfg, func() sim.Policy { return core.NewDeltaLRUEDF() })
	if err != nil {
		t.Fatal(err)
	}
	// The miner should find substantially worse inputs for pure ΔLRU than
	// for the combination (the Appendix A phenomenon, found mechanically).
	t.Logf("mined ratios: dlru=%.2f dlru-edf=%.2f", lru.Ratio, combo.Ratio)
	if lru.Ratio < combo.Ratio {
		t.Errorf("mined ΔLRU ratio %v below combined %v: separation missing", lru.Ratio, combo.Ratio)
	}
	if lru.Ratio < 1.2 {
		t.Errorf("miner failed to find a bad ΔLRU input (ratio %v)", lru.Ratio)
	}
}

func TestMineDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.Iterations = 40
	a, err := Mine(cfg, func() sim.Policy { return core.NewEDF() })
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(cfg, func() sim.Policy { return core.NewEDF() })
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || a.Accepted != b.Accepted {
		t.Fatalf("nondeterministic mining: %v/%d vs %v/%d", a.Ratio, a.Accepted, b.Ratio, b.Accepted)
	}
}

func TestMineValidation(t *testing.T) {
	bad := []Config{
		{},
		{Delta: 1, Colors: 1, Rounds: 8, Iterations: 1, Resources: 4, LBResources: 1}, // no delay exps
		{Delta: 1, Colors: 1, Rounds: 8, DelayExps: []uint{1}, Iterations: 1},         // no resources
	}
	for i, cfg := range bad {
		if _, err := Mine(cfg, func() sim.Policy { return core.NewEDF() }); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
