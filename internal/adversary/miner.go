// Package adversary searches for bad inputs automatically: a seeded
// hill-climbing miner mutates a batched instance (resizing individual
// batches) to maximize a policy's measured ratio against the certified
// offline lower bound. The hand-built Appendix A/B constructions show the
// *existence* of bad inputs for the pure policies; the miner shows they can
// be found mechanically, and that the combined policy resists the same
// search — experiment E17.
package adversary

import (
	"fmt"
	"math/rand"

	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/sim"
	"rrsched/internal/stats"
)

// Config bounds the search space and budget.
type Config struct {
	Seed   int64
	Delta  int64
	Colors int
	// DelayExps assigns each color the delay bound 2^DelayExps[i % len].
	DelayExps []uint
	// Rounds is the instance length.
	Rounds int64
	// MaxBatch caps the per-batch job count (0 = the color's delay bound,
	// i.e. rate-limited instances).
	MaxBatch int
	// Iterations is the hill-climbing budget.
	Iterations int
	// Resources given to the policy; LBResources to the lower bound.
	Resources   int
	LBResources int
}

func (c Config) validate() error {
	if c.Delta <= 0 || c.Colors <= 0 || c.Rounds <= 0 || c.Iterations < 0 {
		return fmt.Errorf("adversary: invalid config %+v", c)
	}
	if len(c.DelayExps) == 0 {
		return fmt.Errorf("adversary: need at least one delay exponent")
	}
	if c.Resources <= 0 || c.LBResources <= 0 {
		return fmt.Errorf("adversary: need positive resource counts")
	}
	return nil
}

// Result reports the mined instance and its measured ratio trajectory.
type Result struct {
	Sequence *model.Sequence
	// Ratio is cost(policy)/LB on the mined instance.
	Ratio float64
	// InitialRatio is the ratio of the random starting instance.
	InitialRatio float64
	// Accepted counts accepted mutations.
	Accepted int
}

// genome is the mutable instance encoding: batch sizes per (color, batch
// index).
type genome struct {
	cfg    Config
	delays []int64
	sizes  [][]int // per color, per batch index
}

func newGenome(cfg Config, rng *rand.Rand) *genome {
	g := &genome{cfg: cfg}
	g.delays = make([]int64, cfg.Colors)
	g.sizes = make([][]int, cfg.Colors)
	for c := 0; c < cfg.Colors; c++ {
		d := int64(1) << cfg.DelayExps[c%len(cfg.DelayExps)]
		g.delays[c] = d
		batches := int(cfg.Rounds / d)
		if cfg.Rounds%d != 0 {
			batches++
		}
		g.sizes[c] = make([]int, batches)
		for b := range g.sizes[c] {
			g.sizes[c][b] = rng.Intn(g.maxBatch(c) + 1)
		}
	}
	return g
}

func (g *genome) maxBatch(c int) int {
	if g.cfg.MaxBatch > 0 {
		return g.cfg.MaxBatch
	}
	return int(g.delays[c])
}

func (g *genome) sequence() (*model.Sequence, error) {
	b := model.NewBuilder(g.cfg.Delta)
	for c := 0; c < g.cfg.Colors; c++ {
		for bi, n := range g.sizes[c] {
			if n > 0 {
				b.Add(int64(bi)*g.delays[c], model.Color(c), g.delays[c], n)
			}
		}
	}
	return b.Build()
}

// mutate perturbs the genome, returning an undo closure. Three move kinds:
// flip one batch; set ALL batches of a color to one value (structural, which
// lets the search discover the Appendix A shape "Δ jobs every period"); or
// concentrate a color into a single huge first batch.
func (g *genome) mutate(rng *rand.Rand) func() {
	c := rng.Intn(g.cfg.Colors)
	pick := func() int {
		// Structurally interesting sizes: empty, Δ, full.
		candidates := []int{0, int(g.cfg.Delta), g.maxBatch(c), rng.Intn(g.maxBatch(c) + 1)}
		v := candidates[rng.Intn(len(candidates))]
		if v > g.maxBatch(c) {
			v = g.maxBatch(c)
		}
		return v
	}
	switch rng.Intn(4) {
	case 0: // structural: uniform batches for the whole color
		old := append([]int(nil), g.sizes[c]...)
		v := pick()
		for bi := range g.sizes[c] {
			g.sizes[c][bi] = v
		}
		return func() { copy(g.sizes[c], old) }
	case 1: // concentrate: everything in the first batch
		old := append([]int(nil), g.sizes[c]...)
		for bi := range g.sizes[c] {
			g.sizes[c][bi] = 0
		}
		g.sizes[c][0] = g.maxBatch(c)
		return func() { copy(g.sizes[c], old) }
	default: // point mutation
		bi := rng.Intn(len(g.sizes[c]))
		old := g.sizes[c][bi]
		g.sizes[c][bi] = pick()
		return func() { g.sizes[c][bi] = old }
	}
}

// Mine hill-climbs toward a worst-case instance for the policy produced by
// factory. The factory is invoked per evaluation (policies are stateful).
func Mine(cfg Config, factory func() sim.Policy) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := newGenome(cfg, rng)

	eval := func() (float64, *model.Sequence, error) {
		seq, err := g.sequence()
		if err != nil {
			return 0, nil, err
		}
		if seq.NumJobs() == 0 {
			return 0, seq, nil
		}
		res, err := sim.Run(sim.Env{Seq: seq, Resources: cfg.Resources, Replication: 2, Speed: 1}, factory())
		if err != nil {
			return 0, nil, err
		}
		lb := offline.LowerBound(seq, cfg.LBResources)
		return stats.Ratio(res.Cost.Total(), lb), seq, nil
	}

	best, bestSeq, err := eval()
	if err != nil {
		return nil, err
	}
	result := &Result{InitialRatio: best}
	for i := 0; i < cfg.Iterations; i++ {
		undo := g.mutate(rng)
		ratio, seq, err := eval()
		if err != nil {
			return nil, err
		}
		if ratio > best {
			best, bestSeq = ratio, seq
			result.Accepted++
		} else {
			undo()
		}
	}
	result.Sequence = bestSeq
	result.Ratio = best
	return result, nil
}
