package sim_test

// Metamorphic battery: transformations of an instance that provably cannot
// change the ΔLRU-EDF total cost must leave it unchanged.
//
//   - Order-preserving color renaming: every tie-break in the policy stack
//     uses the "consistent order of colors" (ascending color value), never
//     the values themselves, so any strictly increasing renaming preserves
//     every comparison and hence every decision. (An arbitrary permutation
//     is NOT cost-preserving: same-delay colors routinely tie on the EDF key
//     and on timestamps, and the color order that breaks those ties would
//     change.)
//
//   - Arrival-time translation: shifting all arrivals by a multiple of every
//     delay bound preserves the k ≡ 0 (mod D_ℓ) phase structure, and
//     timestamps shift uniformly so every recency comparison is preserved.
//     Both compared copies are pre-shifted by at least one period so that no
//     counter wrap lands on round 0, whose timestamp is indistinguishable
//     from the "never wrapped" sentinel.
//
// A failure prints a minimized counterexample trace: batches are greedily
// removed and shrunk while the discrepancy persists.

import (
	"math/rand"
	"slices"
	"testing"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
)

// runDLRUEDF returns the audited ΔLRU-EDF total cost of the instance.
func runDLRUEDF(t *testing.T, in instance) int64 {
	t.Helper()
	seq := in.sequence()
	res, err := sim.Run(sim.Env{Seq: seq, Resources: in.resources, Replication: 2, Speed: 1}, core.NewDeltaLRUEDF())
	if err != nil {
		t.Fatalf("dlru-edf failed on\n%s: %v", in.trace(), err)
	}
	audited, err := model.Audit(seq, res.Schedule)
	if err != nil {
		t.Fatalf("audit rejected dlru-edf schedule on\n%s: %v", in.trace(), err)
	}
	return audited.Total()
}

// minimize greedily shrinks the batch list while fails keeps reporting a
// discrepancy: first dropping whole batches, then decrementing counts.
func minimize(in instance, fails func(instance) bool) instance {
	for i := 0; i < len(in.batches); {
		cand := in
		cand.batches = slices.Delete(slices.Clone(in.batches), i, i+1)
		if len(cand.batches) > 0 && fails(cand) {
			in = cand
			continue
		}
		i++
	}
	for i := range in.batches {
		for in.batches[i].count > 1 {
			cand := in
			cand.batches = slices.Clone(in.batches)
			cand.batches[i].count--
			if !fails(cand) {
				break
			}
			in = cand
		}
	}
	return in
}

// renameColors applies a strictly increasing color map: the i-th smallest
// color of the instance becomes to[i].
func renameColors(in instance, to []model.Color) instance {
	var used []model.Color
	for _, a := range in.batches {
		if !slices.Contains(used, a.color) {
			used = append(used, a.color)
		}
	}
	slices.Sort(used)
	out := in
	out.batches = slices.Clone(in.batches)
	for i := range out.batches {
		out.batches[i].color = to[slices.Index(used, out.batches[i].color)]
	}
	return out
}

// monotoneTargets draws a random strictly increasing sequence of n colors
// with gaps up to 7.
func monotoneTargets(rng *rand.Rand, n int) []model.Color {
	out := make([]model.Color, n)
	next := model.Color(rng.Intn(8))
	for i := range out {
		out[i] = next
		next += model.Color(1 + rng.Intn(7))
	}
	return out
}

func TestMetamorphicColorRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		in := randomInstance(rng)
		to := monotoneTargets(rng, 4) // at least as many targets as colors
		fails := func(in instance) bool {
			return runDLRUEDF(t, in) != runDLRUEDF(t, renameColors(in, to))
		}
		if fails(in) {
			min := minimize(in, fails)
			t.Fatalf("iteration %d: ΔLRU-EDF cost changed under order-preserving renaming %v\nminimized counterexample:\n%soriginal cost %d, renamed cost %d",
				i, to, min.trace(), runDLRUEDF(t, min), runDLRUEDF(t, renameColors(min, to)))
		}
	}
}

// translate shifts every arrival by dt rounds.
func translate(in instance, dt int64) instance {
	out := in
	out.batches = slices.Clone(in.batches)
	for i := range out.batches {
		out.batches[i].round += dt
	}
	return out
}

// delayPeriod returns the least common multiple of the instance's delay
// bounds — with power-of-two delays, simply the largest one.
func delayPeriod(in instance) int64 {
	p := int64(1)
	for _, a := range in.batches {
		if a.delay > p {
			p = a.delay
		}
	}
	return p
}

func TestMetamorphicArrivalTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		in := randomInstance(rng)
		p := delayPeriod(in)
		fails := func(in instance) bool {
			return runDLRUEDF(t, translate(in, p)) != runDLRUEDF(t, translate(in, 3*p))
		}
		if fails(in) {
			min := minimize(in, fails)
			t.Fatalf("iteration %d: ΔLRU-EDF cost changed under arrival translation by %d rounds\nminimized counterexample:\n%scost at shift %d: %d, at shift %d: %d",
				i, 2*p, min.trace(), p, runDLRUEDF(t, translate(min, p)), 3*p, runDLRUEDF(t, translate(min, 3*p)))
		}
	}
}
