package sim

import (
	"strconv"

	"rrsched/internal/model"
	"rrsched/internal/obs"
)

// instr is the engine's view of an attached Observer: pre-resolved metric
// handles plus per-color drop counters cached by dense color index, so the
// round loop never does a name or map lookup. A nil *instr (the default, when
// Env.Obs is nil) reduces every instrumentation site to one pointer test;
// the rrbench bare-vs-instrumented scenario pair tracks both costs.
//
// Instrumentation is strictly read-only with respect to scheduling: it
// observes decisions after they are made and never feeds anything back, so
// runs with and without an Observer produce byte-identical schedules (pinned
// by the determinism regression tests).
type instr struct {
	sm      *obs.SchedulerMetrics
	tracer  *obs.Tracer
	sink    obs.EventSink
	dropCtr []*obs.Counter // per dense color index, lazily created
}

// newInstr resolves the environment's Observer into engine handles; it
// returns nil when there is nothing to observe.
func newInstr(env Env) *instr {
	o := env.Obs
	if o == nil {
		return nil
	}
	if o.Sched == nil && o.Tracer == nil && o.Sink == nil {
		return nil
	}
	return &instr{sm: o.Sched, tracer: o.Tracer, sink: o.Sink}
}

// phaseStart returns the phase start timestamp (0 when nothing times phases).
func (in *instr) phaseStart() int64 {
	if in == nil || (in.tracer == nil && in.sm == nil) {
		return 0
	}
	return obs.Now()
}

// phaseEnd records the span and latency observation for one finished phase.
func (in *instr) phaseEnd(p obs.Phase, round int64, mini int, start int64) {
	if in == nil || (in.tracer == nil && in.sm == nil) {
		return
	}
	dur := obs.Now() - start
	if in.tracer != nil {
		in.tracer.RecordSpan(obs.Span{Name: p.String(), Round: round, Mini: mini, Start: start, Dur: dur})
	}
	if in.sm != nil {
		in.sm.PhaseNs[p].Observe(dur)
	}
}

// dropCounter returns the per-color drop counter for dense index ci,
// creating (and caching) it on first drop of that color.
func (in *instr) dropCounter(ci int32, c model.Color) *obs.Counter {
	for int(ci) >= len(in.dropCtr) {
		in.dropCtr = append(in.dropCtr, nil)
	}
	if in.dropCtr[ci] == nil {
		in.dropCtr[ci] = in.sm.Drops.With(strconv.FormatInt(int64(c), 10))
	}
	return in.dropCtr[ci]
}

// observeRound counts one simulated round.
func (in *instr) observeRound() {
	if in == nil || in.sm == nil {
		return
	}
	in.sm.Rounds.Inc()
}

// observeDrop records n unit-cost drops of color c (dense index ci) in round
// k: per-color and total counters, queue depth, and a drop event.
func (in *instr) observeDrop(k int64, ci int32, c model.Color, n int) {
	if in == nil {
		return
	}
	if in.sm != nil {
		in.dropCounter(ci, c).Add(int64(n))
		in.sm.Dropped.Add(int64(n))
		in.sm.DropCost.Add(int64(n))
		in.sm.QueueDepth.Add(-int64(n))
	}
	if in.sink != nil {
		in.sink.Emit(obs.Event{Kind: obs.EventDrop, Round: k, Color: c, Resource: -1, N: int64(n)})
	}
}

// observeArrival records a non-empty arrival batch of round k.
func (in *instr) observeArrival(k int64, n int) {
	if in == nil || n == 0 {
		return
	}
	if in.sm != nil {
		in.sm.QueueDepth.Add(int64(n))
	}
	if in.sink != nil {
		in.sink.Emit(obs.Event{Kind: obs.EventArrival, Round: k, Color: model.Black, Resource: -1, N: int64(n)})
	}
}

// observeReconfig records one resource recoloring at cost delta.
func (in *instr) observeReconfig(k int64, mini, loc int, c model.Color, delta int64) {
	if in == nil {
		return
	}
	if in.sm != nil {
		in.sm.Reconfigs.Inc()
		in.sm.ReconfigCost.Add(delta)
	}
	if in.sink != nil {
		in.sink.Emit(obs.Event{Kind: obs.EventReconfig, Round: k, Mini: mini, Color: c, Resource: loc, N: delta})
	}
}

// observeExec records one job execution: counters, the job's age at
// execution (rounds since arrival), queue depth, and an exec event.
func (in *instr) observeExec(k int64, mini, loc int, c model.Color, j model.Job) {
	if in == nil {
		return
	}
	if in.sm != nil {
		in.sm.Executed.Inc()
		in.sm.PendingAge.Observe(k - j.Arrival)
		in.sm.QueueDepth.Add(-1)
	}
	if in.sink != nil {
		in.sink.Emit(obs.Event{Kind: obs.EventExec, Round: k, Mini: mini, Color: c, Resource: loc, N: j.ID})
	}
}

// observeFault records a crash or repair transition of resource loc.
func (in *instr) observeFault(k int64, loc int, kind obs.EventKind) {
	if in == nil {
		return
	}
	if in.sm != nil {
		switch kind {
		case obs.EventCrash:
			in.sm.Crashes.Inc()
		case obs.EventRepair:
			in.sm.Repairs.Inc()
		}
	}
	if in.sink != nil {
		in.sink.Emit(obs.Event{Kind: kind, Round: k, Color: model.Black, Resource: loc, N: 1})
	}
}
