package sim

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"rrsched/internal/model"
)

func TestFaultConfigValidate(t *testing.T) {
	good := FaultConfig{Seed: 1, Resources: 4, Horizon: 100, MeanUp: 32, MeanDown: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		mutate func(*FaultConfig)
		want   string
	}{
		{func(c *FaultConfig) { c.Resources = 0 }, "at least one resource"},
		{func(c *FaultConfig) { c.Horizon = 0 }, "positive horizon"},
		{func(c *FaultConfig) { c.MeanUp = 0.5 }, "mean up-time"},
		{func(c *FaultConfig) { c.MeanDown = 0 }, "mean down-time"},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want mention of %q", cfg, err, tc.want)
		}
	}
}

func TestNewFaultPlanValidation(t *testing.T) {
	if _, err := NewFaultPlan(0, nil); err == nil {
		t.Error("accepted zero resources")
	}
	if _, err := NewFaultPlan(2, []model.Outage{{Resource: 2, Start: 0, End: 1}}); err == nil {
		t.Error("accepted out-of-range resource")
	}
	if _, err := NewFaultPlan(2, []model.Outage{{Resource: 0, Start: 5, End: 5}}); err == nil {
		t.Error("accepted empty interval")
	}
	if _, err := NewFaultPlan(2, []model.Outage{{Resource: 0, Start: -1, End: 1}}); err == nil {
		t.Error("accepted negative start")
	}
	if _, err := NewFaultPlan(2, []model.Outage{
		{Resource: 0, Start: 0, End: 4},
		{Resource: 0, Start: 3, End: 6},
	}); err == nil {
		t.Error("accepted overlapping outages")
	}
	// Same interval on different resources is fine; adjacency composes.
	p, err := NewFaultPlan(2, []model.Outage{
		{Resource: 0, Start: 4, End: 6},
		{Resource: 0, Start: 6, End: 8},
		{Resource: 1, Start: 4, End: 6},
	})
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for round, want := range map[int64]bool{3: false, 4: true, 5: true, 6: true, 7: true, 8: false} {
		if got := p.Down(0, round); got != want {
			t.Errorf("Down(0, %d) = %v, want %v", round, got, want)
		}
	}
	if p.Down(1, 7) {
		t.Error("resource 1 should be up in round 7")
	}
	if p.DowntimeRounds() != 6 {
		t.Errorf("DowntimeRounds = %d, want 6", p.DowntimeRounds())
	}
	if p.NumOutages() != 3 {
		t.Errorf("NumOutages = %d, want 3", p.NumOutages())
	}
}

func TestRandomFaultPlanDeterministicAndConsistent(t *testing.T) {
	cfg := FaultConfig{Seed: 42, Resources: 8, Horizon: 512, MeanUp: 64, MeanDown: 8}
	a, err := RandomFaultPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomFaultPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outages(), b.Outages()) {
		t.Error("same seed produced different plans")
	}
	if a.NumOutages() == 0 {
		t.Fatal("plan with MeanUp=64 over 512 rounds produced no outages")
	}
	// Every outage lies within the horizon; Down agrees with the intervals.
	for _, o := range a.Outages() {
		if o.Start < 0 || o.End <= o.Start || o.End > cfg.Horizon {
			t.Fatalf("outage out of range: %+v", o)
		}
		if !a.Down(o.Resource, o.Start) || a.Down(o.Resource, o.End) {
			t.Fatalf("Down disagrees with outage %+v", o)
		}
	}
	other, err := RandomFaultPlan(FaultConfig{Seed: 43, Resources: 8, Horizon: 512, MeanUp: 64, MeanDown: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Outages(), other.Outages()) {
		t.Error("different seeds produced identical plans")
	}
}

func TestEnvValidateRejectsMismatchedFaultPlan(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	plan, err := NewFaultPlan(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{Seq: seq, Resources: 2, Replication: 1, Speed: 1, Faults: plan}
	if err := env.Validate(); err == nil || !strings.Contains(err.Error(), "fault plan") {
		t.Errorf("Validate = %v, want fault plan mismatch error", err)
	}
}

// TestFaultCrashEvictsAndRepairReplaces walks the crash/repair life cycle on
// a scripted scenario: a crash evicts the cached color (surviving replica is
// reused for free), the down resource executes nothing, and the repaired
// resource must be recolored (one extra Delta) before it executes again.
func TestFaultCrashEvictsAndRepairReplaces(t *testing.T) {
	// 4 jobs of color 0 (D=4) arrive at round 0; 2 resources, replication 2.
	seq := model.NewBuilder(1).Add(0, 0, 4, 4).MustBuild()
	plan, err := NewFaultPlan(2, []model.Outage{{Resource: 0, Start: 1, End: 3}})
	if err != nil {
		t.Fatal(err)
	}
	env := Env{Seq: seq, Resources: 2, Replication: 2, Speed: 1, Faults: plan}
	p := &scriptPolicy{targets: map[int64][]model.Color{0: {0}}}
	res, err := Run(env, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 4 || res.Dropped != 0 {
		t.Fatalf("executed %d dropped %d, want 4 executed 0 dropped", res.Executed, res.Dropped)
	}
	// Round 0 places both replicas (2 Delta); the survivor is reused for free
	// after the crash; the repaired resource is recolored once (1 Delta).
	if res.Cost.Reconfig != 3 {
		t.Fatalf("reconfig cost %d, want 3", res.Cost.Reconfig)
	}
	for _, e := range res.Schedule.Execs {
		if e.Resource == 0 && e.Round >= 1 && e.Round < 3 {
			t.Fatalf("execution on down resource 0 in round %d", e.Round)
		}
	}
	sawRepairReconfig := false
	for _, r := range res.Schedule.Reconfigs {
		if r.Resource == 0 && r.Round == 3 {
			sawRepairReconfig = true
		}
	}
	if !sawRepairReconfig {
		t.Error("repaired resource was not recolored in round 3")
	}
	if len(res.Schedule.Outages) != 1 {
		t.Fatalf("schedule records %d outages, want 1", len(res.Schedule.Outages))
	}
	cost, err := model.Audit(seq, res.Schedule)
	if err != nil {
		t.Fatalf("audit rejected faulty schedule: %v", err)
	}
	if cost != res.Cost {
		t.Fatalf("audit cost %v != engine cost %v", cost, res.Cost)
	}
}

// greedyPolicy caches the Slots() colors with the most pending jobs; it is a
// deliberately churny policy for fault stress tests.
type greedyPolicy struct{}

func (greedyPolicy) Name() string                        { return "greedy" }
func (greedyPolicy) Reset(Env)                           {}
func (greedyPolicy) DropPhase(View, map[model.Color]int) {}
func (greedyPolicy) ArrivalPhase(View, []model.Job)      {}
func (greedyPolicy) Target(v View) []model.Color {
	colors := v.Universe()
	sort.Slice(colors, func(i, j int) bool {
		pi, pj := v.Pending(colors[i]), v.Pending(colors[j])
		if pi != pj {
			return pi > pj
		}
		return colors[i] < colors[j]
	})
	out := []model.Color{}
	for _, c := range colors {
		if len(out) == v.Slots() {
			break
		}
		if v.Pending(c) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// TestFaultInvariantsUnderRandomPlans is the fault-model property test: under
// seeded random outage plans, no execution or reconfiguration ever lands on a
// down resource, the audit accepts every schedule, and audit and engine agree
// on the cost.
func TestFaultInvariantsUnderRandomPlans(t *testing.T) {
	seq := model.NewBuilder(4).
		Add(0, 0, 4, 6).Add(0, 1, 4, 3).Add(0, 2, 8, 5).
		Add(4, 0, 4, 4).Add(4, 1, 4, 6).
		Add(8, 0, 4, 5).Add(8, 2, 8, 7).Add(8, 3, 8, 2).
		Add(16, 1, 4, 8).Add(16, 3, 8, 4).
		MustBuild()
	for seed := int64(0); seed < 20; seed++ {
		plan, err := RandomFaultPlan(FaultConfig{
			Seed: seed, Resources: 6, Horizon: seq.Horizon() + 1, MeanUp: 8, MeanDown: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		env := Env{Seq: seq, Resources: 6, Replication: 2, Speed: 1, Faults: plan}
		res, err := Run(env, greedyPolicy{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, e := range res.Schedule.Execs {
			if plan.Down(e.Resource, e.Round) {
				t.Fatalf("seed %d: execution on down resource %d in round %d", seed, e.Resource, e.Round)
			}
		}
		for _, r := range res.Schedule.Reconfigs {
			if plan.Down(r.Resource, r.Round) {
				t.Fatalf("seed %d: reconfiguration of down resource %d in round %d", seed, r.Resource, r.Round)
			}
		}
		cost, err := model.Audit(seq, res.Schedule)
		if err != nil {
			t.Fatalf("seed %d: audit rejected faulty schedule: %v", seed, err)
		}
		if cost != res.Cost {
			t.Fatalf("seed %d: audit cost %v != engine cost %v", seed, cost, res.Cost)
		}
	}
}

// panicPolicy panics in Target, standing in for policy/workload mismatches
// (e.g. a batched-only tracker fed a general sequence).
type panicPolicy struct{}

func (panicPolicy) Name() string                        { return "panicker" }
func (panicPolicy) Reset(Env)                           {}
func (panicPolicy) DropPhase(View, map[model.Color]int) {}
func (panicPolicy) ArrivalPhase(View, []model.Job)      {}
func (panicPolicy) Target(View) []model.Color           { panic("policy exploded") }

func TestRunConvertsPolicyPanicToError(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 2, 1).MustBuild()
	env := Env{Seq: seq, Resources: 1, Replication: 1, Speed: 1}
	res, err := Run(env, panicPolicy{})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Run = (%v, %v), want panic converted to error", res, err)
	}
	if res != nil {
		t.Fatal("result should be nil after panic")
	}
}

func TestAuditRejectsExecutionOnDownResource(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 4, 1).MustBuild()
	sched := model.NewSchedule(1, 1)
	sched.AddReconfig(0, 0, 0, 0)
	sched.AddExec(2, 0, 0, 0)
	sched.AddOutage(0, 2, 3)
	if _, err := model.Audit(seq, sched); err == nil || !strings.Contains(err.Error(), "down resource") {
		t.Errorf("Audit = %v, want execution-on-down-resource error", err)
	}

	sched2 := model.NewSchedule(1, 1)
	sched2.AddReconfig(1, 0, 0, 0)
	sched2.AddOutage(0, 1, 2)
	if _, err := model.Audit(seq, sched2); err == nil || !strings.Contains(err.Error(), "down resource") {
		t.Errorf("Audit = %v, want reconfiguration-of-down-resource error", err)
	}

	// A crash wipes the configuration: executing after repair without
	// recoloring must fail the color check.
	sched3 := model.NewSchedule(1, 1)
	sched3.AddReconfig(0, 0, 0, 0)
	sched3.AddOutage(0, 1, 2)
	sched3.AddExec(2, 0, 0, 0)
	if _, err := model.Audit(seq, sched3); err == nil || !strings.Contains(err.Error(), "configured") {
		t.Errorf("Audit = %v, want wrong-color error after crash wiped config", err)
	}
}
