package sim

// White-box edge tests for the drop phase's deadline-bucket index: the
// map of due rounds, the per-color dedupe (lastDue), and the recycled
// bucket-slice pool that keeps the steady state allocation-free.

import (
	"testing"

	"rrsched/internal/model"
)

// edgeState builds a bare state over a two-color sequence; tests drive
// admit/dropDue directly, bypassing the engine loop.
func edgeState(t *testing.T) *state {
	t.Helper()
	b := model.NewBuilder(4)
	b.Add(0, 1, 4, 1)
	b.Add(0, 2, 8, 1)
	seq, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return newState(Env{Seq: seq, Resources: 4, Replication: 2, Speed: 1})
}

func job(id int64, c model.Color, arrival, delay int64) model.Job {
	return model.Job{ID: id, Color: c, Arrival: arrival, Delay: delay}
}

func TestDropDueDeadlineEdges(t *testing.T) {
	cases := []struct {
		name   string
		admit  []model.Job
		round  int64
		want   map[model.Color]int
		remain int // total jobs still pending after the drop
	}{
		{
			name:   "no bucket at round",
			admit:  []model.Job{job(1, 1, 0, 4)},
			round:  1,
			want:   map[model.Color]int{},
			remain: 1,
		},
		{
			name:   "deadline equals current round",
			admit:  []model.Job{job(1, 1, 0, 4)}, // deadline 4
			round:  4,
			want:   map[model.Color]int{1: 1},
			remain: 0,
		},
		{
			name:   "round just before deadline keeps the job",
			admit:  []model.Job{job(1, 1, 0, 4)},
			round:  3,
			want:   map[model.Color]int{},
			remain: 1,
		},
		{
			name: "same-deadline jobs of two colors drop together",
			admit: []model.Job{
				job(1, 1, 0, 4), job(2, 1, 0, 4), // dedupe: one bucket entry
				job(3, 2, 0, 4),
			},
			round:  4,
			want:   map[model.Color]int{1: 2, 2: 1},
			remain: 0,
		},
		{
			name: "later deadline survives an earlier drop",
			admit: []model.Job{
				job(1, 1, 0, 4),
				job(2, 2, 0, 8),
			},
			round:  4,
			want:   map[model.Color]int{1: 1},
			remain: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := edgeState(t)
			s.admit(tc.admit)
			got := s.dropDue(tc.round)
			if len(got) != len(tc.want) {
				t.Fatalf("dropped %v, want %v", got, tc.want)
			}
			for c, n := range tc.want {
				if got[c] != n {
					t.Errorf("dropped[%v] = %d, want %d", c, got[c], n)
				}
			}
			remain := 0
			for i := range s.pending {
				remain += s.pending[i].Len()
			}
			if remain != tc.remain {
				t.Errorf("%d jobs still pending, want %d", remain, tc.remain)
			}
			if _, ok := s.dueBuckets[tc.round]; ok {
				t.Error("bucket for the dropped round was not removed")
			}
		})
	}
}

func TestDropDueDedupesBucketEntries(t *testing.T) {
	s := edgeState(t)
	// Ten same-color jobs with one shared deadline: lastDue must collapse
	// them into a single bucket entry.
	var jobs []model.Job
	for i := int64(0); i < 10; i++ {
		jobs = append(jobs, job(i, 1, 0, 4))
	}
	s.admit(jobs)
	if got := len(s.dueBuckets[4]); got != 1 {
		t.Fatalf("bucket at 4 has %d entries, want 1 (deduped)", got)
	}
	if got := s.dropDue(4)[model.Color(1)]; got != 10 {
		t.Fatalf("dropped %d jobs, want 10", got)
	}
}

func TestDropDueRecyclesBucketSlices(t *testing.T) {
	s := edgeState(t)
	s.admit([]model.Job{job(1, 1, 0, 4)})
	if len(s.duePool) != 0 {
		t.Fatalf("fresh state has %d pooled buckets", len(s.duePool))
	}
	s.dropDue(4)
	if len(s.duePool) != 1 {
		t.Fatalf("drop did not recycle the bucket: pool has %d", len(s.duePool))
	}
	recycled := cap(s.duePool[0])

	// The next distinct deadline must reuse the pooled slice, not allocate.
	s.admit([]model.Job{job(2, 1, 8, 4)}) // deadline 12
	if len(s.duePool) != 0 {
		t.Fatalf("admit did not take the pooled bucket: pool has %d", len(s.duePool))
	}
	if got := cap(s.dueBuckets[12]); got != recycled {
		t.Errorf("bucket capacity %d, want recycled capacity %d", got, recycled)
	}
	if got := s.dropDue(12)[model.Color(1)]; got != 1 {
		t.Fatalf("reused bucket dropped %d jobs, want 1", got)
	}
	// And the bucket goes straight back to the pool.
	if len(s.duePool) != 1 {
		t.Fatalf("second drop did not recycle: pool has %d", len(s.duePool))
	}
}
