package sim

import (
	"fmt"
	"sort"

	"rrsched/internal/model"
	"rrsched/internal/queue"
)

// Replay realizes a schedule from a scripted configuration timeline: given
// the reconfiguration records (location-level recolorings), it simulates the
// four phases and fills in the execution records greedily, executing at each
// location the earliest-deadline pending job of the location's color.
//
// Replay is the common back end of the reductions: Distribute and VarBatch
// project an inner schedule's configurations onto the outer instance and let
// Replay derive the executions, which is exactly the paper's "whenever S'
// configures color (ℓ,j), S configures color ℓ; whenever S' executes a job
// of color (ℓ,j), S executes a job of color ℓ" (Section 4.1) since per-color
// executions are interchangeable.
//
// Reconfigs that recolor a location to the color it already holds are
// dropped (they would be illegal no-ops); the rest are recorded verbatim, so
// the replayed reconfiguration cost never exceeds Delta times the input
// record count.
func Replay(seq *model.Sequence, n, speed int, reconfigs []model.Reconfigure) (*model.Schedule, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: replay needs at least one resource")
	}
	if speed != 1 && speed != 2 {
		return nil, fmt.Errorf("sim: replay speed must be 1 or 2, got %d", speed)
	}
	ordered := make([]model.Reconfigure, len(reconfigs))
	copy(ordered, reconfigs)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Mini < b.Mini
	})

	sched := model.NewSchedule(n, speed)
	locColor := make([]model.Color, n)
	for i := range locColor {
		locColor[i] = model.Black
	}
	pending := make(map[model.Color]*queue.Ring[model.Job])
	next := 0

	horizon := seq.Horizon()
	for _, r := range ordered {
		if r.Round > horizon {
			horizon = r.Round
		}
	}
	for k := int64(0); k <= horizon; k++ {
		// Drop phase.
		for _, q := range pending {
			for q.Len() > 0 && q.Peek().Deadline() <= k {
				q.Pop()
			}
		}
		// Arrival phase.
		for _, j := range seq.Request(k) {
			q := pending[j.Color]
			if q == nil {
				q = &queue.Ring[model.Job]{}
				pending[j.Color] = q
			}
			q.Push(j)
		}
		for mini := 0; mini < speed; mini++ {
			// Reconfiguration phase: apply scripted recolorings.
			for next < len(ordered) && ordered[next].Round == k && ordered[next].Mini == mini {
				r := ordered[next]
				next++
				if r.Resource < 0 || r.Resource >= n {
					return nil, fmt.Errorf("sim: replay reconfig targets resource %d of %d", r.Resource, n)
				}
				if locColor[r.Resource] == r.To {
					continue // physical no-op, free
				}
				locColor[r.Resource] = r.To
				sched.AddReconfig(k, mini, r.Resource, r.To)
			}
			// Execution phase.
			for loc := 0; loc < n; loc++ {
				c := locColor[loc]
				if c == model.Black {
					continue
				}
				q := pending[c]
				if q == nil || q.Len() == 0 {
					continue
				}
				j := q.Pop()
				sched.AddExec(k, mini, loc, j.ID)
			}
		}
	}
	if next != len(ordered) {
		return nil, fmt.Errorf("sim: replay left %d reconfigs unapplied (mini-round out of range?)", len(ordered)-next)
	}
	return sched, nil
}
