package sim_test

// Differential battery: every online policy, on a corpus of seeded small
// random instances, must produce a schedule that model.Audit accepts, whose
// audited cost matches the engine's meter, and whose total is bounded below
// by both the certified lower bound and (when the DP fits its state budget)
// the exact optimal cost. Any violation is a soundness bug in the engine,
// the policy, the auditor, or the offline solver — the four are implemented
// independently, which is what makes the comparison a real oracle.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/sim"
)

// arrivalBatch is one batched arrival: count jobs of one color in one round.
type arrivalBatch struct {
	round int64
	color model.Color
	delay int64
	count int
}

// instance is a small random scheduling instance in a shrinkable form: the
// batch list can be minimized element by element while staying batched
// (every batch independently arrives at a multiple of its color's delay).
type instance struct {
	delta     int64
	resources int
	batches   []arrivalBatch
}

func (in instance) sequence() *model.Sequence {
	b := model.NewBuilder(in.delta)
	for _, a := range in.batches {
		b.Add(a.round, a.color, a.delay, a.count)
	}
	return b.MustBuild()
}

// trace renders the instance as a human-readable counterexample.
func (in instance) trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "delta=%d resources=%d\n", in.delta, in.resources)
	for _, a := range in.batches {
		fmt.Fprintf(&b, "  round %2d: %d job(s) of color %v (delay %d)\n", a.round, a.count, a.color, a.delay)
	}
	return b.String()
}

// randomInstance draws a small batched instance: up to 4 colors with
// power-of-two delay bounds, arrivals at multiples of each color's delay,
// horizon at most 24.
func randomInstance(rng *rand.Rand) instance {
	in := instance{
		delta:     1 + rng.Int63n(3),
		resources: 2 * (1 + rng.Intn(2)), // 2 or 4 (two-way replication)
	}
	colors := 1 + rng.Intn(4)
	const lastArrival = 16 // + max delay 8 => horizon <= 24
	for c := 0; c < colors; c++ {
		delay := int64(1) << rng.Intn(4) // 1, 2, 4, or 8
		for r := int64(0); r <= lastArrival; r += delay {
			if cnt := rng.Intn(4); cnt > 0 && rng.Intn(2) == 0 {
				in.batches = append(in.batches, arrivalBatch{round: r, color: model.Color(c), delay: delay, count: cnt})
			}
		}
	}
	if len(in.batches) == 0 {
		in.batches = append(in.batches, arrivalBatch{round: 0, color: 0, delay: 1, count: 1})
	}
	return in
}

// onlinePolicies returns fresh instances of every Section 3 policy.
func onlinePolicies() []sim.Policy {
	return []sim.Policy{core.NewDeltaLRU(), core.NewEDF(), core.NewDeltaLRUEDF()}
}

func TestDifferentialOnlineVsOffline(t *testing.T) {
	const numInstances = 200
	rng := rand.New(rand.NewSource(7))
	tooLarge := 0
	for i := 0; i < numInstances; i++ {
		in := randomInstance(rng)
		seq := in.sequence()
		if !seq.IsBatched() {
			t.Fatalf("instance %d: generator produced a non-batched sequence\n%s", i, in.trace())
		}

		lb := offline.LowerBound(seq, in.resources)
		exact, exactErr := offline.Exact(seq, in.resources, offline.ExactOptions{})
		if exactErr != nil {
			if exactErr != offline.ErrTooLarge {
				t.Fatalf("instance %d: exact solver: %v\n%s", i, exactErr, in.trace())
			}
			tooLarge++
		} else if exact < lb {
			t.Errorf("instance %d: exact optimum %d below certified lower bound %d\n%s", i, exact, lb, in.trace())
		}

		for _, p := range onlinePolicies() {
			res, err := sim.Run(sim.Env{Seq: seq, Resources: in.resources, Replication: 2, Speed: 1}, p)
			if err != nil {
				t.Fatalf("instance %d: %s: %v\n%s", i, p.Name(), err, in.trace())
			}
			audited, err := model.Audit(seq, res.Schedule)
			if err != nil {
				t.Fatalf("instance %d: %s: audit rejected the schedule: %v\n%s", i, p.Name(), err, in.trace())
			}
			if audited != res.Cost {
				t.Errorf("instance %d: %s: audited cost %v != engine cost %v\n%s", i, p.Name(), audited, res.Cost, in.trace())
			}
			if res.Executed+res.Dropped != seq.NumJobs() {
				t.Errorf("instance %d: %s: conservation violated: %d + %d != %d\n%s",
					i, p.Name(), res.Executed, res.Dropped, seq.NumJobs(), in.trace())
			}
			total := audited.Total()
			if total < lb {
				t.Errorf("instance %d: %s: online cost %d below certified lower bound %d\n%s",
					i, p.Name(), total, lb, in.trace())
			}
			if exactErr == nil && total < exact {
				t.Errorf("instance %d: %s: online cost %d below exact optimum %d\n%s",
					i, p.Name(), total, exact, in.trace())
			}
		}
	}
	if tooLarge > numInstances/4 {
		t.Errorf("exact solver exceeded its state budget on %d of %d instances; the corpus is too large to be a differential oracle", tooLarge, numInstances)
	}
}
