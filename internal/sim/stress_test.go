package sim

import (
	"fmt"
	"strings"
	"testing"

	"rrsched/internal/model"
	"rrsched/internal/sweep"
)

// miniProbe changes its target every mini-round to exercise speed-2
// reconfiguration semantics.
type miniProbe struct {
	colors []model.Color
}

func (p *miniProbe) Name() string                        { return "mini-probe" }
func (p *miniProbe) Reset(Env)                           {}
func (p *miniProbe) DropPhase(View, map[model.Color]int) {}
func (p *miniProbe) ArrivalPhase(View, []model.Job)      {}
func (p *miniProbe) Target(v View) []model.Color {
	// Alternate between the two colors across mini-rounds.
	return []model.Color{p.colors[(int(v.Round())*2+v.Mini())%len(p.colors)]}
}

func TestEngineMiniRoundReconfiguration(t *testing.T) {
	// Two colors, both with jobs every round; a policy that flips per
	// mini-round must produce a legal double-speed schedule where each
	// mini-round's executions match that mini-round's configuration.
	seq := model.NewBuilder(1).
		Add(0, 0, 4, 4).
		Add(0, 1, 4, 4).
		MustBuild()
	p := &miniProbe{colors: []model.Color{0, 1}}
	res := MustRun(Env{Seq: seq, Resources: 1, Replication: 1, Speed: 2}, p)
	if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
		t.Fatalf("audit %v != engine %v", got, res.Cost)
	}
	// Flipping every mini-round on one location costs ~2 reconfigs per
	// round over 4 rounds; a couple of free re-admissions are impossible
	// here because the location is overwritten each time.
	if res.Cost.Reconfig < 4 {
		t.Errorf("reconfig = %d, expected heavy mini-round churn", res.Cost.Reconfig)
	}
	// Both colors fully executed: 2 executions per round, 4 rounds >= 8 jobs.
	if res.Cost.Drop != 0 {
		t.Errorf("dropped %d with double-speed capacity", res.Cost.Drop)
	}
}

func TestEngineLargeScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// 128 colors, 256 resources, 2048 rounds: the engine must stay
	// consistent at scale (audit agreement and conservation).
	b := model.NewBuilder(8)
	for c := 0; c < 128; c++ {
		d := int64(1) << uint(1+c%5)
		for r := int64(0); r < 2048; r += d {
			if (r/d+int64(c))%3 == 0 {
				b.Add(r, model.Color(c), d, int(d/2)+1)
			}
		}
	}
	seq := b.MustBuild()
	p := &scriptPolicy{targets: map[int64][]model.Color{}}
	for r := int64(0); r < 2048; r += 16 {
		var tg []model.Color
		for c := 0; c < 64; c++ {
			tg = append(tg, model.Color((int(r/16)+c*2)%128))
		}
		p.targets[r] = tg
	}
	res := MustRun(Env{Seq: seq, Resources: 256, Replication: 2, Speed: 1}, p)
	if res.Executed+res.Dropped != seq.NumJobs() {
		t.Fatalf("conservation violated: %d + %d != %d", res.Executed, res.Dropped, seq.NumJobs())
	}
	if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
		t.Fatalf("audit %v != engine %v at scale", got, res.Cost)
	}
}

func TestEngineRunsPastLastArrival(t *testing.T) {
	// A job with a huge delay arriving early must still be executable long
	// after the last arrival round.
	seq := model.NewBuilder(1).Add(0, 0, 1024, 1).MustBuild()
	p := &scriptPolicy{targets: map[int64][]model.Color{1000: {0}}}
	res := MustRun(Env{Seq: seq, Resources: 1, Replication: 1, Speed: 1}, p)
	if res.Cost.Drop != 0 {
		t.Errorf("late-configured job dropped: %v", res.Cost)
	}
	if len(res.Schedule.Execs) != 1 || res.Schedule.Execs[0].Round < 1000 {
		t.Errorf("execution = %+v", res.Schedule.Execs)
	}
}

func TestEngineEmptySequence(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 0).MustBuild() // zero jobs
	res := MustRun(Env{Seq: seq, Resources: 2, Replication: 1, Speed: 1}, &scriptPolicy{})
	if res.Cost.Total() != 0 || res.Executed != 0 {
		t.Errorf("empty sequence produced %v", res.Cost)
	}
}

// TestEngineConcurrentSweepStress fans many engine runs out over a worker
// pool, the way experiment sweeps drive it. Each run owns its state (the
// bucket-queue deadline index, the scratch buffers, the dense color tables),
// so concurrent runs must neither race (this test is the -race exercise for
// the engine's scratch reuse) nor perturb each other's results: every seed's
// serialized schedule must be byte-identical to a sequential reference run.
func TestEngineConcurrentSweepStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	build := func(seed int64) *model.Sequence {
		b := model.NewBuilder(4)
		for c := 0; c < 16; c++ {
			d := int64(1) << uint(1+(c+int(seed))%4)
			for r := int64(0); r < 256; r += d {
				if (r/d+seed+int64(c))%3 == 0 {
					b.Add(r, model.Color(c), d, 1+int((seed+r)%3))
				}
			}
		}
		return b.MustBuild()
	}
	run := func(seed int64) (string, error) {
		seq := build(seed)
		p := &scriptPolicy{targets: map[int64][]model.Color{}}
		for r := int64(0); r < 256; r += 8 {
			p.targets[r] = []model.Color{
				model.Color((seed + r/8) % 16),
				model.Color((seed + r/8 + 5) % 16),
			}
		}
		res, err := Run(Env{Seq: seq, Resources: 4, Replication: 2, Speed: 1}, p)
		if err != nil {
			return "", err
		}
		if res.Executed+res.Dropped != seq.NumJobs() {
			return "", fmt.Errorf("seed %d: conservation violated: %d + %d != %d",
				seed, res.Executed, res.Dropped, seq.NumJobs())
		}
		if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
			return "", fmt.Errorf("seed %d: audit %v != engine %v", seed, got, res.Cost)
		}
		var sb strings.Builder
		if err := model.WriteSchedule(&sb, res.Schedule); err != nil {
			return "", err
		}
		return sb.String(), nil
	}

	seeds := sweep.Seeds(32)
	want := make([]string, len(seeds))
	for i, s := range seeds {
		ref, err := run(s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ref
	}
	got, err := sweep.Map(0, seeds, run)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if got[i] != want[i] {
			t.Errorf("seed %d: concurrent run diverged from sequential reference", seeds[i])
		}
	}
}
