// Package sim provides the round-based simulation engine for reconfigurable
// resource scheduling. The engine owns the resources, the per-color pending
// queues, and the cost meter; an online Policy only chooses, each mini-round,
// which set of distinct colors should be cached. The engine places colors on
// locations with minimal recoloring, replicates each cached color across
// Replication locations (the paper caches every color in two locations), and
// executes pending jobs earliest-deadline-first within each color.
//
// The four phases of round k (paper, Section 2):
//
//  1. drop phase: jobs with deadline k are dropped at unit cost,
//  2. arrival phase: request k is received,
//  3. reconfiguration phase: the policy picks the cached color set,
//  4. execution phase: each resource executes one pending job of its color.
//
// Double-speed schedules repeat phases 3 and 4 (Speed = 2).
package sim

import (
	"fmt"
	"sort"

	"rrsched/internal/model"
	"rrsched/internal/queue"
)

// Env describes one simulation run.
type Env struct {
	Seq         *model.Sequence
	Resources   int // n: number of resources given to the policy
	Replication int // locations per cached color (2 for the paper's algorithms)
	Speed       int // mini-rounds per round (1 uni-speed, 2 double-speed)
	// Faults, when non-nil, injects resource failures: a down resource
	// executes nothing, loses its cached color at crash, and returns blank on
	// repair. The plan must cover exactly Resources resources. The run's
	// schedule records the outages so model.Audit verifies no decision
	// touched a dead resource.
	Faults *FaultPlan
}

// Slots returns the distinct-color cache capacity Resources/Replication.
func (e Env) Slots() int { return e.Resources / e.Replication }

// Validate checks the environment parameters.
func (e Env) Validate() error {
	if e.Seq == nil {
		return fmt.Errorf("sim: nil sequence")
	}
	if e.Resources <= 0 {
		return fmt.Errorf("sim: need at least one resource, got %d", e.Resources)
	}
	if e.Replication <= 0 {
		return fmt.Errorf("sim: replication must be positive, got %d", e.Replication)
	}
	if e.Resources%e.Replication != 0 {
		return fmt.Errorf("sim: resources (%d) must be a multiple of replication (%d)", e.Resources, e.Replication)
	}
	if e.Speed != 1 && e.Speed != 2 {
		return fmt.Errorf("sim: speed must be 1 or 2, got %d", e.Speed)
	}
	if e.Faults != nil && e.Faults.Resources() != e.Resources {
		return fmt.Errorf("sim: fault plan covers %d resources, environment has %d", e.Faults.Resources(), e.Resources)
	}
	return nil
}

// View is the read-only state a policy may observe when deciding. It reveals
// nothing about future requests: online policies see only the present.
type View interface {
	// Round returns the current round index.
	Round() int64
	// Mini returns the current mini-round (always 0 for uni-speed).
	Mini() int
	// Resources returns n.
	Resources() int
	// Slots returns the distinct-color cache capacity n/Replication.
	Slots() int
	// Delta returns the reconfiguration cost.
	Delta() int64
	// Pending returns the number of pending jobs of color c.
	Pending(c model.Color) int
	// Cached reports whether color c is currently cached.
	Cached(c model.Color) bool
	// CachedColors returns the cached colors in ascending order.
	CachedColors() []model.Color
	// DelayBound returns D_c, or 0 if the color never appears.
	DelayBound(c model.Color) int64
	// Universe returns every color of the sequence in ascending order.
	Universe() []model.Color
}

// Policy is an online reconfiguration policy. The engine calls DropPhase and
// ArrivalPhase once per round (in that order) and Target once per mini-round;
// Target returns the desired set of distinct cached colors, at most
// View.Slots() of them, and the engine realizes it with minimal recoloring.
type Policy interface {
	Name() string
	// Reset prepares the policy for a fresh run in the given environment.
	Reset(env Env)
	// DropPhase is invoked after the engine dropped all jobs whose deadline
	// is the current round; dropped maps colors to the number of their jobs
	// dropped this round (absent colors dropped none).
	DropPhase(v View, dropped map[model.Color]int)
	// ArrivalPhase is invoked after the round's request joined the pending
	// queues; arrivals is the request (empty most rounds).
	ArrivalPhase(v View, arrivals []model.Job)
	// Target returns the distinct colors to cache for the current mini-round.
	Target(v View) []model.Color
}

// Result is the outcome of a run.
type Result struct {
	Policy   string
	Cost     model.Cost
	Schedule *model.Schedule
	// Executed is the number of jobs executed; Dropped the number dropped.
	Executed int
	Dropped  int
	// DropsByColor counts drops per color.
	DropsByColor map[model.Color]int
}

// Run simulates the policy on the environment and returns the resulting
// schedule and cost. The schedule is complete and independently auditable
// with model.Audit. A panicking policy is converted to a returned error so
// user-reachable callers (the cmd tools, the experiment harness) never crash
// on a policy/workload mismatch.
func Run(env Env, p Policy) (res *Result, err error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if err := env.Seq.Validate(); err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("sim: policy %q panicked: %v", p.Name(), r)
		}
	}()
	st := newState(env)
	p.Reset(env)
	if env.Faults != nil {
		for _, o := range env.Faults.Outages() {
			st.sched.AddOutage(o.Resource, o.Start, o.End)
		}
	}

	horizon := env.Seq.Horizon()
	for k := int64(0); k <= horizon; k++ {
		st.round = k

		// Phase 0: fault transitions (repairs, then crashes).
		st.applyFaults(k)

		// Phase 1: drop.
		dropped := st.dropDue(k)
		p.DropPhase(st, dropped)

		// Phase 2: arrival.
		arrivals := env.Seq.Request(k)
		st.admit(arrivals)
		p.ArrivalPhase(st, arrivals)

		// Phases 3 and 4, repeated Speed times.
		for mini := 0; mini < env.Speed; mini++ {
			st.mini = mini
			target := p.Target(st)
			if err := st.reconfigure(target); err != nil {
				return nil, fmt.Errorf("sim: round %d mini %d: %w", k, mini, err)
			}
			st.execute()
		}
	}

	res = &Result{
		Policy:       p.Name(),
		Cost:         st.cost,
		Schedule:     st.sched,
		Executed:     st.executed,
		Dropped:      st.droppedTotal,
		DropsByColor: st.dropsByColor,
	}
	return res, nil
}

// MustRun is Run but panics on error; for tests and generators with
// statically valid inputs. User-reachable paths (the cmd tools and the
// experiment harness) use Run and propagate the error.
func MustRun(env Env, p Policy) *Result {
	r, err := Run(env, p)
	if err != nil {
		panic(fmt.Errorf("sim: run failed: %w", err))
	}
	return r
}

// state implements View and owns the mutable simulation state.
type state struct {
	env   Env
	round int64
	mini  int

	pending  map[model.Color]*queue.Ring[model.Job]
	universe []model.Color

	locColor  []model.Color         // color at each location
	colorLocs map[model.Color][]int // locations of each cached color
	freeLocs  []int                 // up locations holding no cached color (black or orphaned)
	down      []bool                // down locations: never in colorLocs or freeLocs

	sched        *model.Schedule
	cost         model.Cost
	executed     int
	droppedTotal int
	dropsByColor map[model.Color]int
}

func newState(env Env) *state {
	st := &state{
		env:          env,
		pending:      make(map[model.Color]*queue.Ring[model.Job]),
		colorLocs:    make(map[model.Color][]int),
		sched:        model.NewSchedule(env.Resources, env.Speed),
		dropsByColor: make(map[model.Color]int),
	}
	st.universe = env.Seq.Colors()
	st.locColor = make([]model.Color, env.Resources)
	st.down = make([]bool, env.Resources)
	st.freeLocs = make([]int, env.Resources)
	for i := range st.locColor {
		st.locColor[i] = model.Black
		st.freeLocs[i] = env.Resources - 1 - i // pop from the back => ascending use
	}
	return st
}

// --- View ---

func (s *state) Round() int64   { return s.round }
func (s *state) Mini() int      { return s.mini }
func (s *state) Resources() int { return s.env.Resources }
func (s *state) Slots() int     { return s.env.Slots() }
func (s *state) Delta() int64   { return s.env.Seq.Delta() }
func (s *state) Universe() []model.Color {
	out := make([]model.Color, len(s.universe))
	copy(out, s.universe)
	return out
}

func (s *state) Pending(c model.Color) int {
	q := s.pending[c]
	if q == nil {
		return 0
	}
	return q.Len()
}

func (s *state) Cached(c model.Color) bool {
	_, ok := s.colorLocs[c]
	return ok
}

func (s *state) CachedColors() []model.Color {
	out := make([]model.Color, 0, len(s.colorLocs))
	for c := range s.colorLocs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *state) DelayBound(c model.Color) int64 {
	d, _ := s.env.Seq.DelayBound(c)
	return d
}

// --- phases ---

// applyFaults realizes the fault plan's transitions for round k. Repairs are
// processed before crashes so back-to-back outages on the same resource
// compose, matching the audit's event order.
func (s *state) applyFaults(k int64) {
	f := s.env.Faults
	if f == nil {
		return
	}
	for r := 0; r < s.env.Resources; r++ {
		if s.down[r] && !f.Down(r, k) {
			s.repair(r)
		}
	}
	for r := 0; r < s.env.Resources; r++ {
		if !s.down[r] && f.Down(r, k) {
			s.crash(r)
		}
	}
}

// crash takes a location down and evicts its cached color, if any: the lost
// replica must be re-placed at cost Delta, while surviving replicas return to
// the free pool keeping their physical color, so re-admitting the color
// reuses them for free. The crashed location itself is wiped to black.
func (s *state) crash(loc int) {
	s.down[loc] = true
	for i, f := range s.freeLocs {
		if f == loc {
			s.freeLocs[i] = s.freeLocs[len(s.freeLocs)-1]
			s.freeLocs = s.freeLocs[:len(s.freeLocs)-1]
			break
		}
	}
	if c := s.locColor[loc]; c != model.Black {
		if locs, ok := s.colorLocs[c]; ok {
			member := false
			for _, l := range locs {
				if l == loc {
					member = true
					break
				}
			}
			if member {
				for _, l := range locs {
					if l != loc {
						s.freeLocs = append(s.freeLocs, l)
					}
				}
				delete(s.colorLocs, c)
			}
		}
	}
	s.locColor[loc] = model.Black
}

// repair brings a location back up, blank (its color was wiped at crash); it
// rejoins the free pool and must be recolored before executing again.
func (s *state) repair(loc int) {
	s.down[loc] = false
	s.freeLocs = append(s.freeLocs, loc)
}

// dropDue removes every pending job whose deadline equals round k. Within a
// color, pending jobs are queued in arrival order, so deadlines are
// nondecreasing from the head: popping while the head is due is exhaustive.
func (s *state) dropDue(k int64) map[model.Color]int {
	dropped := make(map[model.Color]int)
	for c, q := range s.pending {
		for q.Len() > 0 && q.Peek().Deadline() <= k {
			q.Pop()
			dropped[c]++
		}
	}
	for c, n := range dropped {
		s.cost.Drop += int64(n)
		s.droppedTotal += n
		s.dropsByColor[c] += n
	}
	return dropped
}

func (s *state) admit(jobs []model.Job) {
	for _, j := range jobs {
		q := s.pending[j.Color]
		if q == nil {
			q = &queue.Ring[model.Job]{}
			s.pending[j.Color] = q
		}
		q.Push(j)
	}
}

// reconfigure realizes the target color set: colors leaving the cache free
// their locations, colors entering claim Replication free locations each.
// Unchanged colors keep their locations, so only genuine recolorings cost.
func (s *state) reconfigure(target []model.Color) error {
	want := make(map[model.Color]bool, len(target))
	for _, c := range target {
		if c == model.Black {
			return fmt.Errorf("policy targeted the black color")
		}
		if want[c] {
			return fmt.Errorf("policy targeted color %v twice", c)
		}
		want[c] = true
	}
	if len(want) > s.env.Slots() {
		return fmt.Errorf("policy targeted %d colors with only %d slots", len(want), s.env.Slots())
	}

	// Evict colors no longer wanted. Eviction is logical: the location keeps
	// its physical color (and keeps executing that color's jobs, as in the
	// paper's model) until another color overwrites it. Evictions are
	// processed in color order so location assignment — and therefore the
	// recorded schedule — is deterministic.
	var evicted []model.Color
	for c := range s.colorLocs {
		if !want[c] {
			evicted = append(evicted, c)
		}
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })
	for _, c := range evicted {
		s.freeLocs = append(s.freeLocs, s.colorLocs[c]...)
		delete(s.colorLocs, c)
	}
	// Admit new colors and top up under-replicated ones (a crash evicts a
	// color; on re-admission, or once repairs refill the pool, it regains its
	// Replication locations). A free location that still physically holds the
	// color is reused at zero cost: the resource was never recolored, so no
	// reconfiguration happens. Under faults, down resources can shrink the
	// pool below Slots()*Replication, so placement is best-effort: each color
	// gets up to Replication replicas while free locations last. Without
	// faults the pool always suffices and every color gets all replicas.
	for _, c := range target {
		locs := s.colorLocs[c]
		for len(locs) < s.env.Replication && len(s.freeLocs) > 0 {
			loc, reused := s.takeFreeLoc(c)
			locs = append(locs, loc)
			if !reused {
				s.locColor[loc] = c
				s.sched.AddReconfig(s.round, s.mini, loc, c)
				s.cost.Reconfig += s.env.Seq.Delta()
			}
		}
		if len(locs) == 0 {
			continue
		}
		s.colorLocs[c] = locs
	}
	return nil
}

// takeFreeLoc pops a free location for color c, preferring one that already
// physically holds c (reused == true, no reconfiguration needed).
func (s *state) takeFreeLoc(c model.Color) (loc int, reused bool) {
	n := len(s.freeLocs)
	for i := n - 1; i >= 0; i-- {
		if s.locColor[s.freeLocs[i]] == c {
			loc = s.freeLocs[i]
			s.freeLocs[i] = s.freeLocs[n-1]
			s.freeLocs = s.freeLocs[:n-1]
			return loc, true
		}
	}
	loc = s.freeLocs[n-1]
	s.freeLocs = s.freeLocs[:n-1]
	return loc, false
}

// execute runs the execution phase of the current mini-round: every location
// executes the earliest-deadline pending job of its physical color, if any.
// A location whose color was logically evicted but not yet overwritten still
// executes: in the paper's model a resource stays configured to its color
// until recolored.
func (s *state) execute() {
	for loc := 0; loc < s.env.Resources; loc++ {
		if s.down[loc] {
			continue
		}
		c := s.locColor[loc]
		if c == model.Black {
			continue
		}
		q := s.pending[c]
		if q == nil || q.Len() == 0 {
			continue
		}
		j := q.Pop()
		s.sched.AddExec(s.round, s.mini, loc, j.ID)
		s.executed++
	}
}
