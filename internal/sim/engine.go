// Package sim provides the round-based simulation engine for reconfigurable
// resource scheduling. The engine owns the resources, the per-color pending
// queues, and the cost meter; an online Policy only chooses, each mini-round,
// which set of distinct colors should be cached. The engine places colors on
// locations with minimal recoloring, replicates each cached color across
// Replication locations (the paper caches every color in two locations), and
// executes pending jobs earliest-deadline-first within each color.
//
// The four phases of round k (paper, Section 2):
//
//  1. drop phase: jobs with deadline k are dropped at unit cost,
//  2. arrival phase: request k is received,
//  3. reconfiguration phase: the policy picks the cached color set,
//  4. execution phase: each resource executes one pending job of its color.
//
// Double-speed schedules repeat phases 3 and 4 (Speed = 2).
package sim

import (
	"fmt"

	"rrsched/internal/model"
	"rrsched/internal/obs"
)

// Env describes one simulation run.
type Env struct {
	Seq         *model.Sequence
	Resources   int // n: number of resources given to the policy
	Replication int // locations per cached color (2 for the paper's algorithms)
	Speed       int // mini-rounds per round (1 uni-speed, 2 double-speed)
	// Faults, when non-nil, injects resource failures: a down resource
	// executes nothing, loses its cached color at crash, and returns blank on
	// repair. The plan must cover exactly Resources resources. The run's
	// schedule records the outages so model.Audit verifies no decision
	// touched a dead resource.
	Faults *FaultPlan
	// Obs, when non-nil, attaches the observability layer: scheduler metrics
	// (drops per color, reconfigurations, queue depth, pending age, phase
	// latency), phase span tracing, and structured decision events. nil (the
	// default) costs nothing; instrumentation never changes a decision.
	Obs *obs.Observer
}

// Slots returns the distinct-color cache capacity Resources/Replication.
func (e Env) Slots() int { return e.Resources / e.Replication }

// Validate checks the environment parameters.
func (e Env) Validate() error {
	if e.Seq == nil {
		return fmt.Errorf("sim: nil sequence")
	}
	if e.Resources <= 0 {
		return fmt.Errorf("sim: need at least one resource, got %d", e.Resources)
	}
	if e.Replication <= 0 {
		return fmt.Errorf("sim: replication must be positive, got %d", e.Replication)
	}
	if e.Resources%e.Replication != 0 {
		return fmt.Errorf("sim: resources (%d) must be a multiple of replication (%d)", e.Resources, e.Replication)
	}
	if e.Speed != 1 && e.Speed != 2 {
		return fmt.Errorf("sim: speed must be 1 or 2, got %d", e.Speed)
	}
	if e.Faults != nil && e.Faults.Resources() != e.Resources {
		return fmt.Errorf("sim: fault plan covers %d resources, environment has %d", e.Faults.Resources(), e.Resources)
	}
	return nil
}

// View is the read-only state a policy may observe when deciding. It reveals
// nothing about future requests: online policies see only the present.
//
// Slices returned by View methods may share the engine's internal buffers:
// they are valid only until the engine advances (the next phase or
// mini-round) and must not be modified or retained. Policies that need a
// lasting copy must make one.
type View interface {
	// Round returns the current round index.
	Round() int64
	// Mini returns the current mini-round (always 0 for uni-speed).
	Mini() int
	// Resources returns n.
	Resources() int
	// Slots returns the distinct-color cache capacity n/Replication.
	Slots() int
	// Delta returns the reconfiguration cost.
	Delta() int64
	// Pending returns the number of pending jobs of color c.
	Pending(c model.Color) int
	// Cached reports whether color c is currently cached.
	Cached(c model.Color) bool
	// CachedColors returns the cached colors in ascending order.
	CachedColors() []model.Color
	// DelayBound returns D_c, or 0 if the color never appears.
	DelayBound(c model.Color) int64
	// Universe returns every color of the sequence in ascending order.
	Universe() []model.Color
}

// Policy is an online reconfiguration policy. The engine calls DropPhase and
// ArrivalPhase once per round (in that order) and Target once per mini-round;
// Target returns the desired set of distinct cached colors, at most
// View.Slots() of them, and the engine realizes it with minimal recoloring.
type Policy interface {
	Name() string
	// Reset prepares the policy for a fresh run in the given environment.
	Reset(env Env)
	// DropPhase is invoked after the engine dropped all jobs whose deadline
	// is the current round; dropped maps colors to the number of their jobs
	// dropped this round (absent colors dropped none). The map is engine
	// scratch: valid only for the duration of the call.
	DropPhase(v View, dropped map[model.Color]int)
	// ArrivalPhase is invoked after the round's request joined the pending
	// queues; arrivals is the request (empty most rounds).
	ArrivalPhase(v View, arrivals []model.Job)
	// Target returns the distinct colors to cache for the current mini-round.
	// The engine reads the returned slice before the next Target call and
	// never retains it, so policies may return a reused buffer.
	Target(v View) []model.Color
}

// Result is the outcome of a run.
type Result struct {
	Policy   string
	Cost     model.Cost
	Schedule *model.Schedule
	// Executed is the number of jobs executed; Dropped the number dropped.
	Executed int
	Dropped  int
	// DropsByColor counts drops per color.
	DropsByColor map[model.Color]int
}

// Run simulates the policy on the environment and returns the resulting
// schedule and cost. The schedule is complete and independently auditable
// with model.Audit. A panicking policy is converted to a returned error so
// user-reachable callers (the cmd tools, the experiment harness) never crash
// on a policy/workload mismatch.
func Run(env Env, p Policy) (res *Result, err error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if err := env.Seq.Validate(); err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("sim: policy %q panicked: %v", p.Name(), r)
		}
	}()
	st := newState(env)
	st.in = newInstr(env)
	p.Reset(env)
	if env.Faults != nil {
		for _, o := range env.Faults.Outages() {
			st.sched.AddOutage(o.Resource, o.Start, o.End)
		}
	}

	horizon := env.Seq.Horizon()
	for k := int64(0); k <= horizon; k++ {
		st.round = k
		st.in.observeRound()

		// Phase 0: fault transitions (repairs, then crashes).
		st.applyFaults(k)

		// Phase 1: drop. The phase span covers the engine's deadline sweep
		// plus the policy's drop bookkeeping.
		t0 := st.in.phaseStart()
		dropped := st.dropDue(k)
		p.DropPhase(st, dropped)
		st.in.phaseEnd(obs.PhaseDrop, k, 0, t0)

		// Phase 2: arrival.
		t0 = st.in.phaseStart()
		arrivals := env.Seq.Request(k)
		st.admit(arrivals)
		p.ArrivalPhase(st, arrivals)
		st.in.phaseEnd(obs.PhaseArrival, k, 0, t0)

		// Phases 3 and 4, repeated Speed times. The reconfiguration span
		// covers the policy decision plus the engine's placement.
		for mini := 0; mini < env.Speed; mini++ {
			st.mini = mini
			t0 = st.in.phaseStart()
			target := p.Target(st)
			if err := st.reconfigure(target); err != nil {
				return nil, fmt.Errorf("sim: round %d mini %d: %w", k, mini, err)
			}
			st.in.phaseEnd(obs.PhaseReconfig, k, mini, t0)
			t0 = st.in.phaseStart()
			st.execute()
			st.in.phaseEnd(obs.PhaseExecute, k, mini, t0)
		}
	}

	res = &Result{
		Policy:       p.Name(),
		Cost:         st.cost,
		Schedule:     st.sched,
		Executed:     st.executed,
		Dropped:      st.droppedTotal,
		DropsByColor: st.dropsByColor,
	}
	return res, nil
}

// MustRun is Run but panics on error; for tests and generators with
// statically valid inputs. User-reachable paths (the cmd tools and the
// experiment harness) use Run and propagate the error.
func MustRun(env Env, p Policy) *Result {
	r, err := Run(env, p)
	if err != nil {
		panic(fmt.Errorf("sim: run failed: %w", err))
	}
	return r
}
