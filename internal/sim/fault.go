package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"rrsched/internal/model"
)

// FaultPlan is a deterministic resource failure/repair schedule: for each
// resource, a sorted list of non-overlapping outages (down intervals in
// rounds). The paper's model assumes resources never fail; a fault plan
// extends a simulation with the stochastic-availability view of real-time
// scheduling work (resources as an on/off random process), but fully
// pre-sampled from a seed so runs stay reproducible and auditable.
//
// Semantics during a run (see Env.Faults):
//   - a down resource executes nothing and may not be reconfigured,
//   - when a resource crashes, its cached color is evicted (the color's
//     surviving replicas return to the free pool, keeping their physical
//     color so re-admission reuses them at no cost) and the resource's own
//     configuration is wiped to black,
//   - on repair the resource returns blank and must be re-placed (recolored
//     at cost Δ) before it executes again.
type FaultPlan struct {
	resources int
	byRes     [][]model.Outage // per resource, sorted by Start, non-overlapping
}

// FaultConfig parameterizes RandomFaultPlan. Up and down durations are
// sampled independently per resource from exponential distributions (plus
// one round, so durations are always positive), giving a seeded
// crash/repair renewal process.
type FaultConfig struct {
	// Seed drives the pseudo-random outage sampling; equal configs produce
	// identical plans.
	Seed int64
	// Resources is the number of resources covered by the plan.
	Resources int
	// Horizon bounds outage generation: all outages lie within [0, Horizon).
	Horizon int64
	// MeanUp is the mean number of rounds a resource stays up between
	// failures (>= 1).
	MeanUp float64
	// MeanDown is the mean number of rounds a failed resource stays down
	// before repair (>= 1).
	MeanDown float64
}

// Validate checks the fault configuration.
func (c FaultConfig) Validate() error {
	if c.Resources <= 0 {
		return fmt.Errorf("sim: fault plan needs at least one resource, got %d", c.Resources)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("sim: fault plan needs a positive horizon, got %d", c.Horizon)
	}
	if c.MeanUp < 1 {
		return fmt.Errorf("sim: mean up-time must be >= 1 round, got %g", c.MeanUp)
	}
	if c.MeanDown < 1 {
		return fmt.Errorf("sim: mean down-time must be >= 1 round, got %g", c.MeanDown)
	}
	return nil
}

// RandomFaultPlan samples a seeded crash/repair plan: every resource starts
// up, stays up ~Exp(MeanUp) rounds, goes down ~Exp(MeanDown) rounds, and so
// on until the horizon. The plan is a pure function of the config.
func RandomFaultPlan(cfg FaultConfig) (*FaultPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &FaultPlan{resources: cfg.Resources, byRes: make([][]model.Outage, cfg.Resources)}
	for r := 0; r < cfg.Resources; r++ {
		t := int64(0)
		for {
			t += 1 + int64(rng.ExpFloat64()*cfg.MeanUp)
			if t >= cfg.Horizon {
				break
			}
			down := 1 + int64(rng.ExpFloat64()*cfg.MeanDown)
			end := t + down
			if end > cfg.Horizon {
				end = cfg.Horizon
			}
			p.byRes[r] = append(p.byRes[r], model.Outage{Resource: r, Start: t, End: end})
			t = end
		}
	}
	return p, nil
}

// NewFaultPlan builds a plan from explicit outage records (for tests and
// hand-crafted scenarios). Outages must be in range and, per resource,
// non-overlapping.
func NewFaultPlan(resources int, outages []model.Outage) (*FaultPlan, error) {
	if resources <= 0 {
		return nil, fmt.Errorf("sim: fault plan needs at least one resource, got %d", resources)
	}
	p := &FaultPlan{resources: resources, byRes: make([][]model.Outage, resources)}
	for i, o := range outages {
		if o.Resource < 0 || o.Resource >= resources {
			return nil, fmt.Errorf("sim: outage %d targets resource %d of %d", i, o.Resource, resources)
		}
		if o.Start < 0 || o.End <= o.Start {
			return nil, fmt.Errorf("sim: outage %d has invalid interval [%d,%d)", i, o.Start, o.End)
		}
		p.byRes[o.Resource] = append(p.byRes[o.Resource], o)
	}
	for r := range p.byRes {
		outs := p.byRes[r]
		sort.Slice(outs, func(i, j int) bool { return outs[i].Start < outs[j].Start })
		for i := 1; i < len(outs); i++ {
			if outs[i].Start < outs[i-1].End {
				return nil, fmt.Errorf("sim: overlapping outages on resource %d: [%d,%d) and [%d,%d)",
					r, outs[i-1].Start, outs[i-1].End, outs[i].Start, outs[i].End)
			}
		}
	}
	return p, nil
}

// Resources returns the number of resources the plan covers.
func (p *FaultPlan) Resources() int { return p.resources }

// Down reports whether the resource is down in the given round.
func (p *FaultPlan) Down(resource int, round int64) bool {
	if resource < 0 || resource >= p.resources {
		return false
	}
	outs := p.byRes[resource]
	// First outage starting after round; its predecessor is the only
	// candidate interval containing round.
	i := sort.Search(len(outs), func(i int) bool { return outs[i].Start > round })
	return i > 0 && round < outs[i-1].End
}

// Outages returns every outage, sorted by (resource, start).
func (p *FaultPlan) Outages() []model.Outage {
	var out []model.Outage
	for _, outs := range p.byRes {
		out = append(out, outs...)
	}
	return out
}

// NumOutages returns the total number of outages in the plan.
func (p *FaultPlan) NumOutages() int {
	n := 0
	for _, outs := range p.byRes {
		n += len(outs)
	}
	return n
}

// DowntimeRounds returns the total resource-rounds of downtime in the plan
// (the sum of outage lengths over all resources).
func (p *FaultPlan) DowntimeRounds() int64 {
	var total int64
	for _, outs := range p.byRes {
		for _, o := range outs {
			total += o.End - o.Start
		}
	}
	return total
}
