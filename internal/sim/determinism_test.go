package sim_test

// Determinism regression tests: the same seeded scenario, simulated twice,
// must produce byte-identical serialized schedules and byte-identical JSON
// summaries. This pins the engine-level invariant that the static-analysis
// determinism checks (cmd/rrlint) guard at the source level: no wall-clock
// reads, no global rand, no map-iteration-order leaks into output.

import (
	"bytes"
	"encoding/json"
	"testing"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

// summary mirrors the per-run summary shape the rrexp tables are built
// from: policy, cost components, execution counts, and per-color drops.
// encoding/json sorts map keys, so the encoding is order-independent.
type summary struct {
	Policy       string              `json:"policy"`
	Reconfig     int64               `json:"reconfig"`
	Drop         int64               `json:"drop"`
	Total        int64               `json:"total"`
	Executed     int                 `json:"executed"`
	Dropped      int                 `json:"dropped"`
	DropsByColor map[model.Color]int `json:"drops_by_color"`
}

func runOnce(t *testing.T, seq *model.Sequence, repl int, newPolicy func() sim.Policy) (schedule, summaryJSON []byte) {
	return runObserved(t, seq, repl, newPolicy, nil)
}

func runObserved(t *testing.T, seq *model.Sequence, repl int, newPolicy func() sim.Policy, o *obs.Observer) (schedule, summaryJSON []byte) {
	t.Helper()
	res, err := sim.Run(sim.Env{Seq: seq, Resources: 8, Replication: repl, Speed: 1, Obs: o}, newPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := model.WriteSchedule(&sb, res.Schedule); err != nil {
		t.Fatal(err)
	}
	js, err := json.Marshal(summary{
		Policy:       res.Policy,
		Reconfig:     res.Cost.Reconfig,
		Drop:         res.Cost.Drop,
		Total:        res.Cost.Total(),
		Executed:     res.Executed,
		Dropped:      res.Dropped,
		DropsByColor: res.DropsByColor,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sb.Bytes(), js
}

func TestSeededRunsAreByteIdentical(t *testing.T) {
	scenarios := []struct {
		name string
		gen  func() (*model.Sequence, error)
	}{
		{"background", func() (*model.Sequence, error) {
			return workload.BackgroundShortTerm(workload.BackgroundConfig{
				Seed: 7, Delta: 64,
				ShortColors: 6, ShortDelay: 8,
				BackgroundColors: 3, BackgroundDelay: 64,
				Rounds: 256, BurstProb: 0.4, BackgroundJobs: 12,
			})
		}},
		{"phaseshift", func() (*model.Sequence, error) {
			return workload.PhaseShift(workload.PhaseShiftConfig{
				Seed: 11, Delta: 32, Colors: 10,
				PhaseLen: 64, Phases: 4, ActivePerPhase: 4,
				Delay: 16, Load: 0.5,
			})
		}},
	}
	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"dlru-edf", func() sim.Policy { return core.NewDeltaLRUEDF() }},
		{"edf", func() sim.Policy { return core.NewEDF() }},
	}
	for _, sc := range scenarios {
		for _, pol := range policies {
			t.Run(sc.name+"/"+pol.name, func(t *testing.T) {
				// Regenerate the sequence from the seed each time so the
				// generator's determinism is covered too, not just the
				// engine's.
				seqA, err := sc.gen()
				if err != nil {
					t.Fatal(err)
				}
				seqB, err := sc.gen()
				if err != nil {
					t.Fatal(err)
				}
				schedA, sumA := runOnce(t, seqA, 2, pol.mk)
				schedB, sumB := runOnce(t, seqB, 2, pol.mk)
				if !bytes.Equal(schedA, schedB) {
					t.Errorf("serialized schedules differ between identical seeded runs (%d vs %d bytes)", len(schedA), len(schedB))
				}
				if !bytes.Equal(sumA, sumB) {
					t.Errorf("JSON summaries differ between identical seeded runs:\n%s\n%s", sumA, sumB)
				}
				if len(sumA) == 0 || len(schedA) == 0 {
					t.Fatal("empty schedule or summary; the run produced nothing to compare")
				}

				// A fully instrumented run — metrics, tracer, and an event
				// sink all attached — must make exactly the same decisions:
				// observability is read-only by construction, and this pins
				// it byte-for-byte.
				seqC, err := sc.gen()
				if err != nil {
					t.Fatal(err)
				}
				o, err := obs.NewObserver()
				if err != nil {
					t.Fatal(err)
				}
				o.Tracer = obs.NewTracer(1024)
				sink := &obs.CountingSink{}
				o.Sink = sink
				schedC, sumC := runObserved(t, seqC, 2, pol.mk, o)
				if !bytes.Equal(schedA, schedC) {
					t.Errorf("attaching an observer changed the serialized schedule (%d vs %d bytes)", len(schedA), len(schedC))
				}
				if !bytes.Equal(sumA, sumC) {
					t.Errorf("attaching an observer changed the summary:\n%s\n%s", sumA, sumC)
				}
				if sink.Count() == 0 {
					t.Error("instrumented run emitted no events")
				}
				if len(o.Tracer.Spans()) == 0 {
					t.Error("instrumented run recorded no spans")
				}
			})
		}
	}
}
