package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rrsched/internal/model"
)

// scriptPolicy returns a fixed target set per round (indexed by round), for
// deterministic engine tests.
type scriptPolicy struct {
	targets map[int64][]model.Color
	last    []model.Color
}

func (p *scriptPolicy) Name() string                        { return "script" }
func (p *scriptPolicy) Reset(Env)                           { p.last = nil }
func (p *scriptPolicy) DropPhase(View, map[model.Color]int) {}
func (p *scriptPolicy) ArrivalPhase(View, []model.Job)      {}
func (p *scriptPolicy) Target(v View) []model.Color {
	if tg, ok := p.targets[v.Round()]; ok {
		p.last = tg
	}
	return p.last
}

func TestEnvValidate(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	cases := []struct {
		env  Env
		want string
	}{
		{Env{Seq: nil, Resources: 1, Replication: 1, Speed: 1}, "nil sequence"},
		{Env{Seq: seq, Resources: 0, Replication: 1, Speed: 1}, "at least one resource"},
		{Env{Seq: seq, Resources: 2, Replication: 0, Speed: 1}, "replication"},
		{Env{Seq: seq, Resources: 3, Replication: 2, Speed: 1}, "multiple of replication"},
		{Env{Seq: seq, Resources: 2, Replication: 1, Speed: 3}, "speed"},
	}
	for _, c := range cases {
		err := c.env.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want mention of %q", c.env, err, c.want)
		}
	}
	good := Env{Seq: seq, Resources: 4, Replication: 2, Speed: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid env rejected: %v", err)
	}
	if good.Slots() != 2 {
		t.Errorf("Slots = %d", good.Slots())
	}
}

func TestEngineBasicExecutionAndCosts(t *testing.T) {
	// 3 jobs of color 0 (D=2) at round 0 with 1 resource: execute 2, drop 1.
	seq := model.NewBuilder(5).Add(0, 0, 2, 3).MustBuild()
	p := &scriptPolicy{targets: map[int64][]model.Color{0: {0}}}
	res := MustRun(Env{Seq: seq, Resources: 1, Replication: 1, Speed: 1}, p)
	if res.Cost.Reconfig != 5 {
		t.Errorf("reconfig = %d, want 5 (one recolor at Δ=5)", res.Cost.Reconfig)
	}
	if res.Cost.Drop != 1 || res.Executed != 2 {
		t.Errorf("drop=%d executed=%d, want 1/2", res.Cost.Drop, res.Executed)
	}
	if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
		t.Errorf("audit %v != engine %v", got, res.Cost)
	}
	if res.DropsByColor[0] != 1 {
		t.Errorf("DropsByColor = %v", res.DropsByColor)
	}
}

func TestEngineReplicationExecutesTwice(t *testing.T) {
	// Replication 2: color 0 occupies both locations, 2 executions per round.
	seq := model.NewBuilder(1).Add(0, 0, 2, 4).MustBuild()
	p := &scriptPolicy{targets: map[int64][]model.Color{0: {0}}}
	res := MustRun(Env{Seq: seq, Resources: 2, Replication: 2, Speed: 1}, p)
	if res.Cost.Drop != 0 {
		t.Errorf("dropped %d with replicated capacity 2x2", res.Cost.Drop)
	}
	if res.Cost.Reconfig != 2 {
		t.Errorf("reconfig = %d, want 2 (two locations)", res.Cost.Reconfig)
	}
}

func TestEngineDoubleSpeed(t *testing.T) {
	// Speed 2: one resource executes 2 jobs per round.
	seq := model.NewBuilder(1).Add(0, 0, 1, 2).MustBuild()
	p := &scriptPolicy{targets: map[int64][]model.Color{0: {0}}}
	res := MustRun(Env{Seq: seq, Resources: 1, Replication: 1, Speed: 2}, p)
	if res.Cost.Drop != 0 {
		t.Errorf("double-speed dropped %d", res.Cost.Drop)
	}
}

func TestEngineFreeReadmission(t *testing.T) {
	// Evicting a color logically and re-admitting it before its location is
	// overwritten must not charge a second reconfiguration.
	seq := model.NewBuilder(7).
		Add(0, 0, 2, 1).
		Add(4, 0, 2, 1).
		MustBuild()
	p := &scriptPolicy{targets: map[int64][]model.Color{
		0: {0},
		2: {},  // evict color 0 (location keeps color 0 physically)
		4: {0}, // re-admit: free
	}}
	res := MustRun(Env{Seq: seq, Resources: 1, Replication: 1, Speed: 1}, p)
	if res.Cost.Reconfig != 7 {
		t.Errorf("reconfig = %d, want 7 (single paid recolor)", res.Cost.Reconfig)
	}
	if res.Cost.Drop != 0 {
		t.Errorf("drop = %d", res.Cost.Drop)
	}
}

func TestEngineOrphanedLocationStillExecutes(t *testing.T) {
	// A logically evicted color keeps executing until overwritten: the
	// physical resource is still configured to it (paper's model).
	seq := model.NewBuilder(1).Add(0, 0, 4, 4).MustBuild()
	p := &scriptPolicy{targets: map[int64][]model.Color{
		0: {0},
		1: {}, // evicted logically, never overwritten
	}}
	res := MustRun(Env{Seq: seq, Resources: 1, Replication: 1, Speed: 1}, p)
	if res.Cost.Drop != 0 {
		t.Errorf("dropped %d: orphaned location stopped executing", res.Cost.Drop)
	}
}

func TestEngineRejectsBadTargets(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 2, 1).Add(0, 1, 2, 1).Add(0, 2, 2, 1).MustBuild()
	cases := []struct {
		name   string
		target []model.Color
		want   string
	}{
		{"too many", []model.Color{0, 1, 2}, "slots"},
		{"black", []model.Color{model.Black}, "black"},
		{"duplicate", []model.Color{0, 0}, "twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &scriptPolicy{targets: map[int64][]model.Color{0: c.target}}
			_, err := Run(Env{Seq: seq, Resources: 2, Replication: 1, Speed: 1}, p)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestEngineViewConsistency(t *testing.T) {
	seq := model.NewBuilder(2).Add(0, 0, 4, 3).Add(0, 1, 2, 1).MustBuild()
	var sawPending, sawCached, sawUniverse bool
	p := &probePolicy{probe: func(v View) []model.Color {
		if v.Round() == 0 && v.Pending(0) == 3 && v.Pending(1) == 1 {
			sawPending = true
		}
		if v.Round() == 1 {
			if v.Cached(0) && !v.Cached(2) {
				sawCached = true
			}
			u := v.Universe()
			if len(u) == 2 && u[0] == 0 && u[1] == 1 {
				sawUniverse = true
			}
			cc := v.CachedColors()
			if len(cc) != 1 || cc[0] != 0 {
				t.Errorf("CachedColors = %v", cc)
			}
			if v.Delta() != 2 || v.DelayBound(0) != 4 || v.DelayBound(9) != 0 {
				t.Error("Delta/DelayBound wrong")
			}
			if v.Resources() != 2 || v.Slots() != 2 {
				t.Error("Resources/Slots wrong")
			}
		}
		return []model.Color{0}
	}}
	MustRun(Env{Seq: seq, Resources: 2, Replication: 1, Speed: 1}, p)
	if !sawPending || !sawCached || !sawUniverse {
		t.Errorf("view probes: pending=%v cached=%v universe=%v", sawPending, sawCached, sawUniverse)
	}
}

type probePolicy struct {
	probe func(View) []model.Color
}

func (p *probePolicy) Name() string                        { return "probe" }
func (p *probePolicy) Reset(Env)                           {}
func (p *probePolicy) DropPhase(View, map[model.Color]int) {}
func (p *probePolicy) ArrivalPhase(View, []model.Job)      {}
func (p *probePolicy) Target(v View) []model.Color         { return p.probe(v) }

func TestEngineDropPhaseCallback(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 2, 3).MustBuild()
	var droppedAt2 int
	p := &dropProbePolicy{onDrop: func(v View, d map[model.Color]int) {
		if v.Round() == 2 {
			droppedAt2 = d[0]
		}
	}}
	MustRun(Env{Seq: seq, Resources: 1, Replication: 1, Speed: 1}, p)
	// 3 jobs, 1 resource, no configuration: all 3 dropped in round 2.
	if droppedAt2 != 3 {
		t.Errorf("dropped at round 2 = %d, want 3", droppedAt2)
	}
}

type dropProbePolicy struct {
	onDrop func(View, map[model.Color]int)
}

func (p *dropProbePolicy) Name() string                            { return "drop-probe" }
func (p *dropProbePolicy) Reset(Env)                               {}
func (p *dropProbePolicy) DropPhase(v View, d map[model.Color]int) { p.onDrop(v, d) }
func (p *dropProbePolicy) ArrivalPhase(View, []model.Job)          {}
func (p *dropProbePolicy) Target(View) []model.Color               { return nil }

// TestEngineAuditAgreesProperty: on random instances and random target
// scripts, the engine's cost meter agrees with the independent audit, and
// executed + dropped == jobs.
func TestEngineAuditAgreesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := model.NewBuilder(int64(rng.Intn(5)) + 1)
		colors := rng.Intn(4) + 1
		for i := 0; i < 40; i++ {
			c := model.Color(rng.Intn(colors))
			d := int64(1) << uint(int(c)%3)
			b.Add(int64(rng.Intn(30)), c, d, rng.Intn(3))
		}
		seq, err := b.Build()
		if err != nil || seq.NumJobs() == 0 {
			return true // skip degenerate
		}
		targets := map[int64][]model.Color{}
		for r := int64(0); r <= seq.Horizon(); r++ {
			if rng.Intn(3) == 0 {
				var tg []model.Color
				for c := 0; c < colors && len(tg) < 2; c++ {
					if rng.Intn(2) == 0 {
						tg = append(tg, model.Color(c))
					}
				}
				targets[r] = tg
			}
		}
		res, err := Run(Env{Seq: seq, Resources: 2, Replication: 1, Speed: 1},
			&scriptPolicy{targets: targets})
		if err != nil {
			return false
		}
		audited, err := model.Audit(seq, res.Schedule)
		if err != nil {
			return false
		}
		return audited == res.Cost && res.Executed+res.Dropped == seq.NumJobs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReplayReproducesEngineSchedule: replaying the engine's own reconfig
// records yields a schedule with identical cost (greedy executions within a
// color are interchangeable).
func TestReplayReproducesEngineSchedule(t *testing.T) {
	seq := model.NewBuilder(3).
		Add(0, 0, 4, 6).Add(0, 1, 2, 2).
		Add(4, 0, 4, 2).Add(4, 1, 2, 3).
		MustBuild()
	p := &scriptPolicy{targets: map[int64][]model.Color{0: {0, 1}, 4: {1}}}
	res := MustRun(Env{Seq: seq, Resources: 2, Replication: 1, Speed: 1}, p)
	replayed, err := Replay(seq, 2, 1, res.Schedule.Reconfigs)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := model.Audit(seq, replayed)
	if err != nil {
		t.Fatal(err)
	}
	if rc != res.Cost {
		t.Errorf("replayed cost %v != engine cost %v", rc, res.Cost)
	}
}

func TestReplayDropsPhysicalNoops(t *testing.T) {
	seq := model.NewBuilder(2).Add(0, 0, 2, 1).MustBuild()
	recs := []model.Reconfigure{
		{Round: 0, Resource: 0, To: 0},
		{Round: 1, Resource: 0, To: 0}, // physical no-op: free
	}
	sched, err := Replay(seq, 1, 1, recs)
	if err != nil {
		t.Fatal(err)
	}
	cost := model.MustAudit(seq, sched)
	if cost.Reconfig != 2 {
		t.Errorf("reconfig = %d, want 2 (no-op dropped)", cost.Reconfig)
	}
}

func TestReplayErrors(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	if _, err := Replay(seq, 0, 1, nil); err == nil {
		t.Error("Replay accepted 0 resources")
	}
	if _, err := Replay(seq, 1, 5, nil); err == nil {
		t.Error("Replay accepted speed 5")
	}
	if _, err := Replay(seq, 1, 1, []model.Reconfigure{{Round: 0, Resource: 9, To: 0}}); err == nil {
		t.Error("Replay accepted an out-of-range resource")
	}
	if _, err := Replay(seq, 1, 1, []model.Reconfigure{{Round: 0, Mini: 1, Resource: 0, To: 0}}); err == nil {
		t.Error("Replay accepted a mini-round beyond speed")
	}
}
