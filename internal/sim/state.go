package sim

import (
	"fmt"

	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/queue"
)

// state implements View and owns the mutable simulation state.
//
// The round loop is the product's hot path, so the state is laid out for a
// zero-allocation steady state: colors are mapped once to dense indices and
// every per-color structure (pending queue, cached locations, reconfigure
// marks) is a slice indexed by that dense index; a deadline-bucket index
// makes the drop phase touch only the colors actually due instead of ranging
// over a map of all colors every round; and the per-round scratch (the
// dropped-counts map, the eviction list, the cached-colors view) is
// preallocated and reused across rounds. All orders (eviction, placement,
// execution) are identical to the original map-based implementation, which
// the byte-identical determinism regression test pins.
type state struct {
	env   Env
	round int64
	mini  int

	// seqUniverse is the sequence's color set in ascending order (the View's
	// Universe). colors additionally holds any colors a policy targeted that
	// never appear in the sequence, appended on demand; dense indices point
	// into colors.
	seqUniverse []model.Color
	colors      []model.Color
	colorIdx    map[model.Color]int32

	pending []queue.Ring[model.Job] // per-color pending jobs, by dense index

	// Deadline index for the drop phase: dueBuckets[k] lists the dense color
	// indices with at least one job whose deadline is k. lastDue dedupes —
	// per color, the highest deadline already enqueued (per-color deadlines
	// are nondecreasing in arrival order). duePool recycles bucket slices.
	dueBuckets map[int64][]int32
	lastDue    []int64
	duePool    [][]int32

	locColor    []model.Color // color at each location
	locColorIdx []int32       // dense index of locColor (-1 for black)
	colorLocs   [][]int       // locations of each cached color, by dense index
	cached      []int32       // cached color indices, ascending by color value
	freeLocs    []int         // up locations holding no cached color (black or orphaned)
	down        []bool        // down locations: never in colorLocs or freeLocs

	// Reconfigure scratch: wantMark[ci] == wantStamp marks a targeted color.
	wantMark  []int64
	wantStamp int64

	droppedScratch map[model.Color]int // DropPhase callback argument, reused
	cachedScratch  []model.Color       // CachedColors view, reused

	sched        *model.Schedule
	cost         model.Cost
	executed     int
	droppedTotal int
	dropsByColor map[model.Color]int

	// in is the resolved observability attachment (nil when Env.Obs is nil);
	// every hook below is a single pointer test in the unobserved case.
	in *instr
}

func newState(env Env) *state {
	universe := env.Seq.Colors()
	nc := len(universe)
	st := &state{
		env:            env,
		seqUniverse:    universe,
		colors:         universe,
		colorIdx:       make(map[model.Color]int32, nc),
		pending:        make([]queue.Ring[model.Job], nc),
		dueBuckets:     make(map[int64][]int32),
		lastDue:        make([]int64, nc),
		colorLocs:      make([][]int, nc),
		cached:         make([]int32, 0, env.Slots()),
		wantMark:       make([]int64, nc),
		droppedScratch: make(map[model.Color]int),
		cachedScratch:  make([]model.Color, 0, env.Slots()),
		sched:          model.NewSchedule(env.Resources, env.Speed),
		dropsByColor:   make(map[model.Color]int),
	}
	for i, c := range universe {
		st.colorIdx[c] = int32(i)
	}
	// One backing array for all location lists: a color never holds more
	// than Replication locations, so each color gets a fixed-capacity
	// sub-slice and the steady state never grows them.
	locsBacking := make([]int, nc*env.Replication)
	for i := range st.colorLocs {
		st.colorLocs[i] = locsBacking[i*env.Replication : i*env.Replication : (i+1)*env.Replication]
	}
	// Executions are bounded by the job count; reserving up front keeps the
	// execution phase allocation-free.
	st.sched.Execs = make([]model.Execution, 0, env.Seq.NumJobs())
	st.locColor = make([]model.Color, env.Resources)
	st.locColorIdx = make([]int32, env.Resources)
	st.down = make([]bool, env.Resources)
	st.freeLocs = make([]int, env.Resources)
	for i := range st.locColor {
		st.locColor[i] = model.Black
		st.locColorIdx[i] = -1
		st.freeLocs[i] = env.Resources - 1 - i // pop from the back => ascending use
	}
	return st
}

// index returns the dense index of color c, extending the color table when a
// policy targets a color outside the sequence universe (legal, if useless).
func (s *state) index(c model.Color) int32 {
	if ci, ok := s.colorIdx[c]; ok {
		return ci
	}
	ci := int32(len(s.colors))
	s.colors = append(s.colors, c)
	s.colorIdx[c] = ci
	s.pending = append(s.pending, queue.Ring[model.Job]{})
	s.lastDue = append(s.lastDue, 0)
	s.colorLocs = append(s.colorLocs, make([]int, 0, s.env.Replication))
	s.wantMark = append(s.wantMark, 0)
	return ci
}

// --- View ---

func (s *state) Round() int64   { return s.round }
func (s *state) Mini() int      { return s.mini }
func (s *state) Resources() int { return s.env.Resources }
func (s *state) Slots() int     { return s.env.Slots() }
func (s *state) Delta() int64   { return s.env.Seq.Delta() }
func (s *state) Universe() []model.Color {
	return s.seqUniverse
}

func (s *state) Pending(c model.Color) int {
	ci, ok := s.colorIdx[c]
	if !ok {
		return 0
	}
	return s.pending[ci].Len()
}

func (s *state) Cached(c model.Color) bool {
	ci, ok := s.colorIdx[c]
	return ok && len(s.colorLocs[ci]) > 0
}

func (s *state) CachedColors() []model.Color {
	s.cachedScratch = s.cachedScratch[:0]
	for _, ci := range s.cached {
		s.cachedScratch = append(s.cachedScratch, s.colors[ci])
	}
	return s.cachedScratch
}

func (s *state) DelayBound(c model.Color) int64 {
	d, _ := s.env.Seq.DelayBound(c)
	return d
}

// --- phases ---

// applyFaults realizes the fault plan's transitions for round k. Repairs are
// processed before crashes so back-to-back outages on the same resource
// compose, matching the audit's event order.
func (s *state) applyFaults(k int64) {
	f := s.env.Faults
	if f == nil {
		return
	}
	for r := 0; r < s.env.Resources; r++ {
		if s.down[r] && !f.Down(r, k) {
			s.repair(r)
			s.in.observeFault(k, r, obs.EventRepair)
		}
	}
	for r := 0; r < s.env.Resources; r++ {
		if !s.down[r] && f.Down(r, k) {
			s.crash(r)
			s.in.observeFault(k, r, obs.EventCrash)
		}
	}
}

// crash takes a location down and evicts its cached color, if any: the lost
// replica must be re-placed at cost Delta, while surviving replicas return to
// the free pool keeping their physical color, so re-admitting the color
// reuses them for free. The crashed location itself is wiped to black.
func (s *state) crash(loc int) {
	s.down[loc] = true
	for i, f := range s.freeLocs {
		if f == loc {
			s.freeLocs[i] = s.freeLocs[len(s.freeLocs)-1]
			s.freeLocs = s.freeLocs[:len(s.freeLocs)-1]
			break
		}
	}
	if ci := s.locColorIdx[loc]; ci >= 0 {
		locs := s.colorLocs[ci]
		member := false
		for _, l := range locs {
			if l == loc {
				member = true
				break
			}
		}
		if member {
			for _, l := range locs {
				if l != loc {
					s.freeLocs = append(s.freeLocs, l)
				}
			}
			s.colorLocs[ci] = locs[:0]
			s.uncache(ci)
		}
	}
	s.locColor[loc] = model.Black
	s.locColorIdx[loc] = -1
}

// repair brings a location back up, blank (its color was wiped at crash); it
// rejoins the free pool and must be recolored before executing again.
func (s *state) repair(loc int) {
	s.down[loc] = false
	s.freeLocs = append(s.freeLocs, loc)
}

// dropDue removes every pending job whose deadline equals round k, guided by
// the deadline index: only colors with a bucket entry at k are touched. The
// returned map is scratch, valid until the next round.
func (s *state) dropDue(k int64) map[model.Color]int {
	clear(s.droppedScratch)
	bucket, ok := s.dueBuckets[k]
	if !ok {
		return s.droppedScratch
	}
	for _, ci := range bucket {
		q := &s.pending[ci]
		n := 0
		for q.Len() > 0 && q.Peek().Deadline() <= k {
			q.Pop()
			n++
		}
		if n > 0 {
			c := s.colors[ci]
			s.droppedScratch[c] = n
			s.cost.Drop += int64(n)
			s.droppedTotal += n
			s.dropsByColor[c] += n
			s.in.observeDrop(k, ci, c, n)
		}
	}
	delete(s.dueBuckets, k)
	s.duePool = append(s.duePool, bucket[:0])
	return s.droppedScratch
}

func (s *state) admit(jobs []model.Job) {
	s.in.observeArrival(s.round, len(jobs))
	for _, j := range jobs {
		ci := s.index(j.Color)
		s.pending[ci].Push(j)
		// Per-color deadlines are nondecreasing (same delay bound, arrival
		// order), so one bucket entry per distinct (color, deadline) suffices.
		if d := j.Deadline(); d > s.lastDue[ci] {
			s.lastDue[ci] = d
			bucket, ok := s.dueBuckets[d]
			if !ok && len(s.duePool) > 0 {
				bucket = s.duePool[len(s.duePool)-1]
				s.duePool = s.duePool[:len(s.duePool)-1]
			}
			s.dueBuckets[d] = append(bucket, ci)
		}
	}
}

// uncache removes a color index from the cached list, preserving order.
func (s *state) uncache(ci int32) {
	for i, x := range s.cached {
		if x == ci {
			s.cached = append(s.cached[:i], s.cached[i+1:]...)
			return
		}
	}
}

// encache inserts a color index into the cached list, keeping it ascending
// by color value (the paper's consistent order of colors).
func (s *state) encache(ci int32) {
	c := s.colors[ci]
	pos := len(s.cached)
	for i, x := range s.cached {
		if s.colors[x] > c {
			pos = i
			break
		}
	}
	s.cached = append(s.cached, 0)
	copy(s.cached[pos+1:], s.cached[pos:])
	s.cached[pos] = ci
}

// reconfigure realizes the target color set: colors leaving the cache free
// their locations, colors entering claim Replication free locations each.
// Unchanged colors keep their locations, so only genuine recolorings cost.
func (s *state) reconfigure(target []model.Color) error {
	s.wantStamp++
	stamp := s.wantStamp
	for _, c := range target {
		if c == model.Black {
			return fmt.Errorf("policy targeted the black color")
		}
		ci := s.index(c)
		if s.wantMark[ci] == stamp {
			return fmt.Errorf("policy targeted color %v twice", c)
		}
		s.wantMark[ci] = stamp
	}
	if len(target) > s.env.Slots() {
		return fmt.Errorf("policy targeted %d colors with only %d slots", len(target), s.env.Slots())
	}

	// Evict colors no longer wanted. Eviction is logical: the location keeps
	// its physical color (and keeps executing that color's jobs, as in the
	// paper's model) until another color overwrites it. The cached list is
	// kept in ascending color order, so location assignment — and therefore
	// the recorded schedule — is deterministic.
	for i := 0; i < len(s.cached); {
		ci := s.cached[i]
		if s.wantMark[ci] == stamp {
			i++
			continue
		}
		s.freeLocs = append(s.freeLocs, s.colorLocs[ci]...)
		s.colorLocs[ci] = s.colorLocs[ci][:0]
		s.cached = append(s.cached[:i], s.cached[i+1:]...)
	}
	// Admit new colors and top up under-replicated ones (a crash evicts a
	// color; on re-admission, or once repairs refill the pool, it regains its
	// Replication locations). A free location that still physically holds the
	// color is reused at zero cost: the resource was never recolored, so no
	// reconfiguration happens. Under faults, down resources can shrink the
	// pool below Slots()*Replication, so placement is best-effort: each color
	// gets up to Replication replicas while free locations last. Without
	// faults the pool always suffices and every color gets all replicas.
	for _, c := range target {
		ci := s.colorIdx[c]
		locs := s.colorLocs[ci]
		had := len(locs)
		for len(locs) < s.env.Replication && len(s.freeLocs) > 0 {
			loc, reused := s.takeFreeLoc(c)
			locs = append(locs, loc)
			if !reused {
				s.locColor[loc] = c
				s.locColorIdx[loc] = ci
				s.sched.AddReconfig(s.round, s.mini, loc, c)
				s.cost.Reconfig += s.env.Seq.Delta()
				s.in.observeReconfig(s.round, s.mini, loc, c, s.env.Seq.Delta())
			}
		}
		s.colorLocs[ci] = locs
		if had == 0 && len(locs) > 0 {
			s.encache(ci)
		}
	}
	return nil
}

// takeFreeLoc pops a free location for color c, preferring one that already
// physically holds c (reused == true, no reconfiguration needed).
func (s *state) takeFreeLoc(c model.Color) (loc int, reused bool) {
	n := len(s.freeLocs)
	for i := n - 1; i >= 0; i-- {
		if s.locColor[s.freeLocs[i]] == c {
			loc = s.freeLocs[i]
			s.freeLocs[i] = s.freeLocs[n-1]
			s.freeLocs = s.freeLocs[:n-1]
			return loc, true
		}
	}
	loc = s.freeLocs[n-1]
	s.freeLocs = s.freeLocs[:n-1]
	return loc, false
}

// execute runs the execution phase of the current mini-round: every location
// executes the earliest-deadline pending job of its physical color, if any.
// A location whose color was logically evicted but not yet overwritten still
// executes: in the paper's model a resource stays configured to its color
// until recolored. The phase is allocation-free in steady state: the dense
// location->color index avoids map lookups and the execution log was
// capacity-reserved at construction.
func (s *state) execute() {
	for loc := 0; loc < s.env.Resources; loc++ {
		if s.down[loc] {
			continue
		}
		ci := s.locColorIdx[loc]
		if ci < 0 {
			continue
		}
		q := &s.pending[ci]
		if q.Len() == 0 {
			continue
		}
		j := q.Pop()
		s.sched.AddExec(s.round, s.mini, loc, j.ID)
		s.executed++
		s.in.observeExec(s.round, s.mini, loc, s.colors[ci], j)
	}
}
