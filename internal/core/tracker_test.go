package core

import (
	"testing"

	"rrsched/internal/model"
	"rrsched/internal/sim"
)

// fakeView implements sim.View for tracker unit tests.
type fakeView struct {
	round   int64
	cached  map[model.Color]bool
	pending map[model.Color]int
	slots   int
	delays  map[model.Color]int64
}

func (v *fakeView) Round() int64              { return v.round }
func (v *fakeView) Mini() int                 { return 0 }
func (v *fakeView) Resources() int            { return v.slots * 2 }
func (v *fakeView) Slots() int                { return v.slots }
func (v *fakeView) Delta() int64              { return 0 }
func (v *fakeView) Pending(c model.Color) int { return v.pending[c] }
func (v *fakeView) Cached(c model.Color) bool { return v.cached[c] }
func (v *fakeView) CachedColors() []model.Color {
	var out []model.Color
	for c := range v.cached {
		out = append(out, c)
	}
	return out
}
func (v *fakeView) DelayBound(c model.Color) int64 { return v.delays[c] }
func (v *fakeView) Universe() []model.Color        { return nil }

func trackerEnv(t *testing.T, delta int64) (*Tracker, *fakeView) {
	t.Helper()
	seq := model.NewBuilder(delta).
		Add(0, 0, 4, 1).
		Add(0, 1, 2, 1).
		MustBuild()
	env := sim.Env{Seq: seq, Resources: 4, Replication: 2, Speed: 1}
	tr := NewTracker(env)
	v := &fakeView{
		cached:  map[model.Color]bool{},
		pending: map[model.Color]int{},
		slots:   2,
		delays:  map[model.Color]int64{0: 4, 1: 2},
	}
	return tr, v
}

func jobs(c model.Color, delay int64, round int64, n int) []model.Job {
	out := make([]model.Job, n)
	for i := range out {
		out[i] = model.Job{Color: c, Arrival: round, Delay: delay}
	}
	return out
}

func TestTrackerEligibilityThreshold(t *testing.T) {
	tr, v := trackerEnv(t, 3) // Δ = 3
	// Round 0: 2 jobs of color 0 — below Δ, stays ineligible.
	v.round = 0
	tr.ArrivalPhase(v, jobs(0, 4, 0, 2))
	if tr.Eligible(0) {
		t.Fatal("color eligible below Δ arrivals")
	}
	// Round 4 (next multiple of D=4): 1 more job — counter reaches 3 = Δ.
	v.round = 4
	tr.DropPhase(v, nil)
	tr.ArrivalPhase(v, jobs(0, 4, 4, 1))
	if !tr.Eligible(0) {
		t.Fatal("color not eligible after Δ arrivals")
	}
	// Counter wrapped: cnt = 3 mod 3 = 0.
	if tr.states[0].cnt != 0 {
		t.Errorf("cnt = %d after wrap", tr.states[0].cnt)
	}
}

func TestTrackerCounterWrapModulo(t *testing.T) {
	tr, v := trackerEnv(t, 3)
	v.round = 0
	tr.ArrivalPhase(v, jobs(0, 4, 0, 7)) // 7 = 2*3 + 1 -> wrap, cnt = 1
	if !tr.Eligible(0) {
		t.Fatal("not eligible after large batch")
	}
	if tr.states[0].cnt != 1 {
		t.Errorf("cnt = %d, want 7 mod 3 = 1", tr.states[0].cnt)
	}
}

func TestTrackerIneligibleResetOnlyWhenUncached(t *testing.T) {
	tr, v := trackerEnv(t, 2)
	v.round = 0
	tr.ArrivalPhase(v, jobs(0, 4, 0, 2)) // eligible
	if !tr.Eligible(0) {
		t.Fatal("setup failed")
	}
	// Round 4, color 0 cached: stays eligible.
	v.round = 4
	v.cached[0] = true
	tr.DropPhase(v, nil)
	if !tr.Eligible(0) {
		t.Fatal("cached color became ineligible")
	}
	// Round 8, not cached: becomes ineligible, counter zeroed, epoch ends.
	v.round = 8
	v.cached[0] = false
	tr.states[0].cnt = 1
	tr.DropPhase(v, nil)
	if tr.Eligible(0) {
		t.Fatal("uncached color stayed eligible at its multiple")
	}
	if tr.states[0].cnt != 0 {
		t.Errorf("cnt = %d after ineligibility reset", tr.states[0].cnt)
	}
	if tr.completedEpochs != 1 {
		t.Errorf("completedEpochs = %d", tr.completedEpochs)
	}
}

func TestTrackerResetOnlyAtMultiples(t *testing.T) {
	tr, v := trackerEnv(t, 2)
	v.round = 0
	tr.ArrivalPhase(v, jobs(0, 4, 0, 2))
	// Round 2 is not a multiple of D_0 = 4: no reset even if uncached.
	v.round = 2
	tr.DropPhase(v, nil)
	if !tr.Eligible(0) {
		t.Fatal("reset happened off the color's multiple")
	}
}

func TestTrackerDeadlineAdvancesEveryMultiple(t *testing.T) {
	tr, v := trackerEnv(t, 2)
	v.round = 0
	tr.ArrivalPhase(v, nil)
	if got := tr.Deadline(1); got != 2 {
		t.Errorf("dd(1) = %d, want 2", got)
	}
	v.round = 2
	tr.ArrivalPhase(v, nil) // empty request still advances dd (Section 3.1)
	if got := tr.Deadline(1); got != 4 {
		t.Errorf("dd(1) = %d, want 4", got)
	}
	// Color 0 (D=4) only advances at multiples of 4.
	if got := tr.Deadline(0); got != 4 {
		t.Errorf("dd(0) = %d, want 4", got)
	}
}

func TestTimestampSemantics(t *testing.T) {
	// Timestamp = latest wrap round strictly before the most recent multiple
	// of D (Section 3.1.1).
	cs := &colorState{delay: 4}
	if got := cs.timestamp(10); got != 0 {
		t.Errorf("no wraps: timestamp = %d", got)
	}
	cs.wrap(4, 2)
	// At round 4 the most recent multiple is 4; wrap at 4 does not count.
	if got := cs.timestamp(4); got != 0 {
		t.Errorf("same-round wrap counted: timestamp = %d", got)
	}
	if got := cs.timestamp(7); got != 0 {
		t.Errorf("wrap at 4 counted before round 8: timestamp = %d", got)
	}
	// From round 8 on, the wrap at 4 is visible.
	if got := cs.timestamp(8); got != 4 {
		t.Errorf("timestamp(8) = %d, want 4", got)
	}
	cs.wrap(8, 2)
	// At round 8 the newest visible wrap is still 4 (wrap at 8 excluded).
	if got := cs.timestamp(8); got != 4 {
		t.Errorf("timestamp(8) after wrap(8) = %d, want 4", got)
	}
	if got := cs.timestamp(12); got != 8 {
		t.Errorf("timestamp(12) = %d, want 8", got)
	}
}

func TestTrackerDropClassification(t *testing.T) {
	tr, v := trackerEnv(t, 2)
	// Ineligible drops.
	v.round = 4
	tr.DropPhase(v, map[model.Color]int{0: 3})
	if tr.IneligibleDrops() != 3 || tr.EligibleDrops() != 0 {
		t.Errorf("drops = %d/%d, want 0/3", tr.EligibleDrops(), tr.IneligibleDrops())
	}
	// Make eligible, then drops count as eligible (classified before the
	// same-round ineligibility transition).
	tr.ArrivalPhase(v, jobs(0, 4, 4, 2))
	v.round = 8
	tr.DropPhase(v, map[model.Color]int{0: 2})
	if tr.EligibleDrops() != 2 {
		t.Errorf("eligible drops = %d, want 2", tr.EligibleDrops())
	}
	// And the color became ineligible afterwards (uncached at multiple).
	if tr.Eligible(0) {
		t.Error("color still eligible after uncached multiple")
	}
}

func TestTrackerEpochCounting(t *testing.T) {
	tr, v := trackerEnv(t, 2)
	if tr.NumEpochs() != 0 {
		t.Fatalf("fresh tracker epochs = %d", tr.NumEpochs())
	}
	v.round = 0
	tr.ArrivalPhase(v, jobs(0, 4, 0, 1)) // color 0 seen: epoch 0 starts
	if tr.NumEpochs() != 1 {
		t.Errorf("epochs = %d, want 1 (incomplete epoch 0)", tr.NumEpochs())
	}
	tr.ArrivalPhase(v, jobs(0, 4, 0, 1)) // eligible now (Δ=2)
	v.round = 4
	tr.DropPhase(v, nil) // ineligible: epoch 0 complete, epoch 1 current
	if tr.NumEpochs() != 2 {
		t.Errorf("epochs = %d, want 2", tr.NumEpochs())
	}
}

func TestNewTrackerRejectsNonBatched(t *testing.T) {
	seq := model.NewBuilder(2).Add(1, 0, 4, 1).MustBuild() // arrival at round 1, D=4
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker accepted a non-batched sequence")
		}
	}()
	NewTracker(sim.Env{Seq: seq, Resources: 4, Replication: 2, Speed: 1})
}

func TestRankEDFOrdering(t *testing.T) {
	tr, v := trackerEnv(t, 1)
	// Make both colors eligible with known deadlines.
	v.round = 0
	tr.ArrivalPhase(v, append(jobs(0, 4, 0, 1), jobs(1, 2, 0, 1)...))
	// dd(0) = 4, dd(1) = 2. Color 1 nonidle, color 0 idle.
	v.pending = map[model.Color]int{0: 0, 1: 5}
	ranked := tr.rankEDF(v, []model.Color{0, 1})
	if ranked[0] != 1 || ranked[1] != 0 {
		t.Errorf("ranked = %v, want nonidle color 1 first", ranked)
	}
	// Both nonidle: earlier deadline first.
	v.pending = map[model.Color]int{0: 1, 1: 1}
	ranked = tr.rankEDF(v, []model.Color{0, 1})
	if ranked[0] != 1 {
		t.Errorf("ranked = %v, want earlier-deadline color 1 first", ranked)
	}
	// Tie on deadline: smaller delay bound first.
	tr.states[0].dd = 2
	ranked = tr.rankEDF(v, []model.Color{0, 1})
	if ranked[0] != 1 {
		t.Errorf("ranked = %v, want smaller-delay color 1 first on deadline tie", ranked)
	}
}

func TestTopByTimestamp(t *testing.T) {
	tr, _ := trackerEnv(t, 1)
	tr.states[0].eligible = true
	tr.states[1].eligible = true
	tr.states[0].wrap(4, 2)
	tr.states[1].wrap(6, 2)
	// At round 8: ts(0) = 4 (multiple of 4 is 8); ts(1) = 6 (multiple of 2 is 8).
	top := tr.topByTimestamp(8, 1)
	if len(top) != 1 || top[0] != 1 {
		t.Errorf("top = %v, want color 1 (newer timestamp)", top)
	}
	// q larger than the eligible count returns everything.
	top = tr.topByTimestamp(8, 5)
	if len(top) != 2 {
		t.Errorf("top = %v, want both colors", top)
	}
	// Ineligible colors never appear.
	tr.states[1].eligible = false
	top = tr.topByTimestamp(8, 2)
	if len(top) != 1 || top[0] != 0 {
		t.Errorf("top = %v, want only color 0", top)
	}
}

func TestTimestampKSemantics(t *testing.T) {
	cs := &colorState{delay: 4}
	cs.wrap(4, 3)
	cs.wrap(8, 3)
	cs.wrap(12, 3)
	// At round 16 the most recent multiple is 16; wraps 12, 8, 4 all count.
	if got := cs.timestampK(16, 1); got != 12 {
		t.Errorf("K=1: %d, want 12", got)
	}
	if got := cs.timestampK(16, 2); got != 8 {
		t.Errorf("K=2: %d, want 8", got)
	}
	if got := cs.timestampK(16, 3); got != 4 {
		t.Errorf("K=3: %d, want 4", got)
	}
	// Fewer than K visible wraps -> 0.
	if got := cs.timestampK(16, 4); got != 0 {
		t.Errorf("K=4: %d, want 0", got)
	}
	// Wrap at the current multiple is excluded at any depth.
	if got := cs.timestampK(12, 1); got != 8 {
		t.Errorf("K=1 at 12: %d, want 8", got)
	}
}

func TestSetTimestampKValidation(t *testing.T) {
	tr := NewDynamicTracker(2)
	defer func() {
		if recover() == nil {
			t.Fatal("K=0 accepted")
		}
	}()
	tr.SetTimestampK(0)
}
