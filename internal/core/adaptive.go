package core

import (
	"fmt"

	"rrsched/internal/model"
	"rrsched/internal/sim"
)

// AdaptiveDeltaLRUEDF is an extension of ΔLRU-EDF in the spirit of ARC
// (Megiddo–Modha, discussed in the paper's related work): instead of fixing
// the LRU/EDF slot split at half/half, it tunes the split online from the
// observed cost mix. When reconfiguration cost dominates a window the
// algorithm is thrashing, so the LRU quota (which stabilizes the cache)
// grows; when drop cost dominates it is underutilizing, so the quota shrinks
// in favor of the EDF half. The paper's worst-case analysis fixes the split;
// this variant targets the average case and is evaluated in experiment E15.
type AdaptiveDeltaLRUEDF struct {
	// Window is the adaptation period in rounds (default 4Δ).
	Window int64

	tracker *Tracker
	quota   int
	slots   int

	windowLeft    int64
	dropCredit    int64
	reconfCredit  int64
	quotaHistory  []int
	prevTargetSet map[model.Color]bool
}

// NewAdaptive returns a fresh adaptive policy.
func NewAdaptive() *AdaptiveDeltaLRUEDF { return &AdaptiveDeltaLRUEDF{} }

// Name implements sim.Policy.
func (p *AdaptiveDeltaLRUEDF) Name() string { return "adaptive-dlru-edf" }

// Reset implements sim.Policy.
func (p *AdaptiveDeltaLRUEDF) Reset(env sim.Env) {
	p.tracker = NewTracker(env)
	p.slots = env.Slots()
	p.quota = p.slots / 2
	if p.Window <= 0 {
		p.Window = 4 * env.Seq.Delta()
	}
	p.windowLeft = p.Window
	p.dropCredit, p.reconfCredit = 0, 0
	p.quotaHistory = p.quotaHistory[:0]
	p.prevTargetSet = nil
}

// DropPhase implements sim.Policy.
func (p *AdaptiveDeltaLRUEDF) DropPhase(v sim.View, dropped map[model.Color]int) {
	p.tracker.DropPhase(v, dropped)
	for _, n := range dropped {
		p.dropCredit += int64(n)
	}
}

// ArrivalPhase implements sim.Policy.
func (p *AdaptiveDeltaLRUEDF) ArrivalPhase(v sim.View, arrivals []model.Job) {
	p.tracker.ArrivalPhase(v, arrivals)
}

// Target implements sim.Policy.
func (p *AdaptiveDeltaLRUEDF) Target(v sim.View) []model.Color {
	p.adapt(v)
	lru := p.tracker.topByTimestamp(v.Round(), p.quota)
	target := edfUpdate(p.tracker, v, v.CachedColors(), lru, p.slots-p.quota)
	// Attribute reconfiguration credit: colors entering the target that were
	// not cached will be recolored (Δ per location; replication is a
	// constant factor, irrelevant to the comparison).
	for _, c := range target {
		if p.prevTargetSet != nil && !p.prevTargetSet[c] && !v.Cached(c) {
			p.reconfCredit += v.Delta()
		}
	}
	set := make(map[model.Color]bool, len(target))
	for _, c := range target {
		set[c] = true
	}
	p.prevTargetSet = set
	return target
}

// adapt nudges the quota once per window toward the half that is losing.
func (p *AdaptiveDeltaLRUEDF) adapt(v sim.View) {
	p.windowLeft--
	if p.windowLeft > 0 {
		return
	}
	p.windowLeft = p.Window
	switch {
	case p.reconfCredit > 2*p.dropCredit && p.quota < p.slots-1:
		p.quota++ // thrashing: favor recency stability
	case p.dropCredit > 2*p.reconfCredit && p.quota > 0:
		p.quota-- // underutilizing: favor deadlines
	}
	p.quotaHistory = append(p.quotaHistory, p.quota)
	p.dropCredit, p.reconfCredit = 0, 0
}

// Quota returns the current LRU slot quota.
func (p *AdaptiveDeltaLRUEDF) Quota() int { return p.quota }

// QuotaHistory returns the quota after each adaptation window.
func (p *AdaptiveDeltaLRUEDF) QuotaHistory() []int { return p.quotaHistory }

// Tracker exposes the shared state machine.
func (p *AdaptiveDeltaLRUEDF) Tracker() *Tracker { return p.tracker }

// String describes the policy configuration.
func (p *AdaptiveDeltaLRUEDF) String() string {
	return fmt.Sprintf("adaptive-dlru-edf{window=%d quota=%d/%d}", p.Window, p.quota, p.slots)
}

var _ sim.Policy = (*AdaptiveDeltaLRUEDF)(nil)
