package core

import (
	"rrsched/internal/model"
	"rrsched/internal/sim"
)

// LemmaLedger is a runtime monitor for the amortized argument behind
// Lemma 3.3: every epoch receives 4Δ units of credit (2Δ "first-time" + 2Δ
// "end-of-epoch"), and every reconfiguration is paid from the credit of an
// epoch that has already started. The ledger checks the prefix-strengthened
// form of the lemma after every reconfiguration phase:
//
//	reconfigCost(prefix) <= 4 · Δ · epochsStarted(prefix)
//
// It wraps the ΔLRU-EDF policy and conservatively charges every admission of
// a color as a full paid recoloring (the engine occasionally reuses a
// still-colored location for free, so the ledger's reconfiguration estimate
// upper-bounds the real cost — a violation-free ledger therefore implies the
// real inequality).
type LemmaLedger struct {
	Inner *DeltaLRUEDF

	delta    int64
	repl     int64
	paid     int64
	rounds   int64
	minSlack int64
	// Violations counts rounds where the prefix inequality failed.
	Violations int
}

// NewLemmaLedger wraps a fresh ΔLRU-EDF policy.
func NewLemmaLedger() *LemmaLedger {
	return &LemmaLedger{Inner: NewDeltaLRUEDF()}
}

// Name implements sim.Policy.
func (l *LemmaLedger) Name() string { return "ledger(" + l.Inner.Name() + ")" }

// Reset implements sim.Policy.
func (l *LemmaLedger) Reset(env sim.Env) {
	l.Inner.Reset(env)
	l.delta = env.Seq.Delta()
	l.repl = int64(env.Replication)
	l.paid = 0
	l.rounds = 0
	l.minSlack = 0
	l.Violations = 0
}

// DropPhase implements sim.Policy.
func (l *LemmaLedger) DropPhase(v sim.View, dropped map[model.Color]int) {
	l.Inner.DropPhase(v, dropped)
}

// ArrivalPhase implements sim.Policy.
func (l *LemmaLedger) ArrivalPhase(v sim.View, arrivals []model.Job) {
	l.Inner.ArrivalPhase(v, arrivals)
}

// Target implements sim.Policy, charging admissions and checking the prefix
// inequality.
func (l *LemmaLedger) Target(v sim.View) []model.Color {
	target := l.Inner.Target(v)
	for _, c := range target {
		if !v.Cached(c) {
			l.paid += l.repl * l.delta
		}
	}
	l.rounds++
	budget := 4 * l.delta * l.Inner.Tracker().NumEpochs()
	slack := budget - l.paid
	if l.rounds == 1 || slack < l.minSlack {
		l.minSlack = slack
	}
	if slack < 0 {
		l.Violations++
	}
	return target
}

// MinSlack returns the minimum prefix slack 4Δ·epochs − paidReconfig
// observed over the run (>= 0 when the ledger balanced everywhere).
func (l *LemmaLedger) MinSlack() int64 { return l.minSlack }

// Paid returns the ledger's (conservative) total reconfiguration charge.
func (l *LemmaLedger) Paid() int64 { return l.paid }

var _ sim.Policy = (*LemmaLedger)(nil)
