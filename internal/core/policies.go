package core

import (
	"fmt"

	"rrsched/internal/model"
	"rrsched/internal/sim"
)

// DeltaLRU is the pure recency policy of Section 3.1.1: it keeps the
// eligible colors with the most recent ΔLRU timestamps cached, ignoring
// idleness. It is not resource competitive (Appendix A): it underutilizes
// resources by caching idle colors with recent timestamps.
type DeltaLRU struct {
	tracker *Tracker
}

// NewDeltaLRU returns a fresh ΔLRU policy.
func NewDeltaLRU() *DeltaLRU { return &DeltaLRU{} }

// Name implements sim.Policy.
func (p *DeltaLRU) Name() string { return "dlru" }

// Reset implements sim.Policy.
func (p *DeltaLRU) Reset(env sim.Env) { p.tracker = NewTracker(env) }

// DropPhase implements sim.Policy.
func (p *DeltaLRU) DropPhase(v sim.View, dropped map[model.Color]int) {
	p.tracker.DropPhase(v, dropped)
}

// ArrivalPhase implements sim.Policy.
func (p *DeltaLRU) ArrivalPhase(v sim.View, arrivals []model.Job) {
	p.tracker.ArrivalPhase(v, arrivals)
}

// Target implements sim.Policy: cache the Slots() eligible colors with the
// most recent timestamps.
func (p *DeltaLRU) Target(v sim.View) []model.Color {
	return p.tracker.topByTimestamp(v.Round(), v.Slots())
}

// Tracker exposes the shared state machine (for analysis experiments).
func (p *DeltaLRU) Tracker() *Tracker { return p.tracker }

// EDF is the pure deadline policy of Section 3.1.2: it caches nonidle
// eligible colors in EDF-rank order, evicting the lowest-ranked cached color
// when full. It is not resource competitive (Appendix B): it thrashes when a
// short-delay color alternates between idle and nonidle.
type EDF struct {
	tracker *Tracker
}

// NewEDF returns a fresh EDF policy.
func NewEDF() *EDF { return &EDF{} }

// Name implements sim.Policy.
func (p *EDF) Name() string { return "edf" }

// Reset implements sim.Policy.
func (p *EDF) Reset(env sim.Env) { p.tracker = NewTracker(env) }

// DropPhase implements sim.Policy.
func (p *EDF) DropPhase(v sim.View, dropped map[model.Color]int) {
	p.tracker.DropPhase(v, dropped)
}

// ArrivalPhase implements sim.Policy.
func (p *EDF) ArrivalPhase(v sim.View, arrivals []model.Job) {
	p.tracker.ArrivalPhase(v, arrivals)
}

// Target implements sim.Policy: starting from the current cache, bring in
// every nonidle eligible color ranked in the top Slots() that is not cached,
// evicting the lowest-ranked cached colors to make room.
func (p *EDF) Target(v sim.View) []model.Color {
	return edfUpdate(p.tracker, v, v.CachedColors(), nil, v.Slots())
}

// Tracker exposes the shared state machine.
func (p *EDF) Tracker() *Tracker { return p.tracker }

// edfUpdate implements the cache update shared by EDF and the EDF half of
// ΔLRU-EDF: given the current cached set and a protected subset (the
// LRU-colors, never evicted here), rank the eligible unprotected colors, pull
// the nonidle top-q entries that are missing into the cache, and evict
// lowest-ranked unprotected colors while the cache exceeds capacity.
//
// All working storage is tracker-owned scratch, so the steady-state decision
// path allocates nothing; the returned slice is valid only until the next
// edfUpdate call on the same tracker (the sim.Policy.Target contract).
func edfUpdate(t *Tracker, v sim.View, cached, protected []model.Color, q int) []model.Color {
	prot := t.protScratch
	clear(prot)
	for _, c := range protected {
		prot[c] = true
	}
	inCache := t.cacheScratch
	clear(inCache)
	set := t.setScratch[:0]
	for _, c := range protected {
		if !inCache[c] {
			inCache[c] = true
			set = append(set, c)
		}
	}
	for _, c := range cached {
		if !inCache[c] {
			inCache[c] = true
			set = append(set, c)
		}
	}

	// Rank eligible unprotected colors.
	candidates := t.candScratch[:0]
	for _, c := range t.eligibleColors() {
		if !prot[c] {
			candidates = append(candidates, c)
		}
	}
	t.candScratch = candidates
	t.sortEDF(v, candidates)
	ranked := candidates

	// Bring in the nonidle top-q ranked colors that are missing.
	top := ranked
	if len(top) > q {
		top = top[:q]
	}
	for _, c := range top {
		if v.Pending(c) > 0 && !inCache[c] {
			inCache[c] = true
			set = append(set, c)
		}
	}

	// Evict lowest-ranked unprotected colors while over capacity.
	capacity := v.Slots()
	if len(set) > capacity {
		for i := len(ranked) - 1; i >= 0 && len(set) > capacity; i-- {
			c := ranked[i]
			if !inCache[c] {
				continue
			}
			inCache[c] = false
			set = removeColor(set, c)
		}
	}
	if len(set) > capacity {
		// Cannot happen: protected ≤ capacity/2 and everything else is
		// evictable. Guard against silent corruption.
		panic(fmt.Sprintf("core: cache overflow: %d colors, capacity %d", len(set), capacity))
	}
	t.setScratch = set
	return set
}

func removeColor(set []model.Color, c model.Color) []model.Color {
	for i, x := range set {
		if x == c {
			return append(set[:i], set[i+1:]...)
		}
	}
	return set
}

// DeltaLRUEDF is the paper's main contribution (Section 3.1.3): it keeps two
// sets of colors cached — up to half the slots hold the eligible colors with
// the most recent ΔLRU timestamps (the LRU-colors, kept regardless of
// idleness, which prevents thrashing), and the remaining capacity holds
// nonidle eligible colors by EDF rank (which prevents underutilization).
// With n = 8m resources and two-way replication it is resource competitive
// for rate-limited [Δ | 1 | D_ℓ | D_ℓ] with power-of-two delay bounds
// (Theorem 1).
type DeltaLRUEDF struct {
	tracker     *Tracker
	lruSlots    int // 0 => half the slots
	superEpochs bool
	timestampK  int // 0 => 1 (the paper's ΔLRU timestamp)
}

// Option configures DeltaLRUEDF.
type Option func(*DeltaLRUEDF)

// WithLRUSlots overrides the number of slots reserved for the ΔLRU half
// (default: half the slots). Used by the ablation experiments.
func WithLRUSlots(q int) Option {
	return func(p *DeltaLRUEDF) { p.lruSlots = q }
}

// WithSuperEpochs enables the Section 3.4 super-epoch accounting with the
// paper's threshold 2m = n/4 (half the distinct-color slots). Read the
// statistics from Tracker().SuperEpochs() after the run.
func WithSuperEpochs() Option {
	return func(p *DeltaLRUEDF) { p.superEpochs = true }
}

// WithTimestampK sets the timestamp depth K >= 1 for the ΔLRU half: colors
// are ranked by their K-th latest visible counter wrap instead of the
// latest, the LRU-K generalization of O'Neil et al. from the paper's
// related work. K = 1 (the default) is the paper's ΔLRU timestamp.
func WithTimestampK(k int) Option {
	return func(p *DeltaLRUEDF) { p.timestampK = k }
}

// NewDeltaLRUEDF returns a fresh ΔLRU-EDF policy.
func NewDeltaLRUEDF(opts ...Option) *DeltaLRUEDF {
	p := &DeltaLRUEDF{}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Policy.
func (p *DeltaLRUEDF) Name() string { return "dlru-edf" }

// Reset implements sim.Policy.
func (p *DeltaLRUEDF) Reset(env sim.Env) {
	p.tracker = NewTracker(env)
	if p.timestampK > 0 {
		p.tracker.SetTimestampK(p.timestampK)
	}
	if p.lruSlots < 0 || p.lruSlots > env.Slots() {
		panic(fmt.Sprintf("core: LRU slot quota %d out of range [0,%d]", p.lruSlots, env.Slots()))
	}
	if p.superEpochs {
		threshold := env.Slots() / 2 // 2m = n/4 in the paper's regime
		if threshold < 1 {
			threshold = 1
		}
		p.tracker.EnableSuperEpochs(threshold)
	}
}

// DropPhase implements sim.Policy.
func (p *DeltaLRUEDF) DropPhase(v sim.View, dropped map[model.Color]int) {
	p.tracker.DropPhase(v, dropped)
}

// ArrivalPhase implements sim.Policy.
func (p *DeltaLRUEDF) ArrivalPhase(v sim.View, arrivals []model.Job) {
	p.tracker.ArrivalPhase(v, arrivals)
}

// Target implements sim.Policy: first the ΔLRU step caches the top-q colors
// by timestamp; then the EDF step brings in the nonidle top-q colors by rank
// among the non-LRU eligible colors, evicting the lowest-ranked non-LRU
// cached colors when the cache is full.
func (p *DeltaLRUEDF) Target(v sim.View) []model.Color {
	q := p.lruSlots
	if q == 0 {
		q = v.Slots() / 2
	}
	lru := p.tracker.topByTimestamp(v.Round(), q)
	edfQuota := v.Slots() - q
	return edfUpdate(p.tracker, v, v.CachedColors(), lru, edfQuota)
}

// Tracker exposes the shared state machine (epoch and drop accounting for
// the Lemma 3.2–3.4 experiments).
func (p *DeltaLRUEDF) Tracker() *Tracker { return p.tracker }

var (
	_ sim.Policy = (*DeltaLRU)(nil)
	_ sim.Policy = (*EDF)(nil)
	_ sim.Policy = (*DeltaLRUEDF)(nil)
)
