package core_test

import (
	"testing"

	"rrsched/internal/baseline"
	"rrsched/internal/core"
	"rrsched/internal/edf"
	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/reduce"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

// TestSmokeEndToEnd drives the whole stack once on a random rate-limited
// batched instance: run all three Section 3 policies plus baselines, audit
// every schedule, and check the basic cost sanity relations.
func TestSmokeEndToEnd(t *testing.T) {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 1, Delta: 4, Colors: 8, Rounds: 256,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.8, RateLimited: true,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !seq.IsRateLimited() {
		t.Fatal("generator did not produce a rate-limited sequence")
	}
	n := 8
	env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}

	policies := []sim.Policy{
		core.NewDeltaLRUEDF(),
		core.NewDeltaLRU(),
		core.NewEDF(),
		&baseline.MostPending{},
		&baseline.ColorEDF{},
		&baseline.Static{},
		baseline.Never{},
	}
	lb := offline.LowerBound(seq, n/8+1)
	for _, p := range policies {
		res, err := sim.Run(env, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		audited, err := model.Audit(seq, res.Schedule)
		if err != nil {
			t.Fatalf("%s: audit: %v", p.Name(), err)
		}
		if audited != res.Cost {
			t.Fatalf("%s: engine cost %v != audited cost %v", p.Name(), res.Cost, audited)
		}
		if res.Executed+res.Dropped != seq.NumJobs() {
			t.Fatalf("%s: executed %d + dropped %d != jobs %d", p.Name(), res.Executed, res.Dropped, seq.NumJobs())
		}
		t.Logf("%-14s %v (jobs=%d, LB(m=%d)=%d)", p.Name(), res.Cost, seq.NumJobs(), n/8+1, lb)
	}

	// Never drops everything.
	never := sim.MustRun(env, baseline.Never{})
	if never.Cost.Drop != int64(seq.NumJobs()) || never.Cost.Reconfig != 0 {
		t.Fatalf("never policy: %v, want all %d jobs dropped", never.Cost, seq.NumJobs())
	}

	// Par-EDF drop count lower-bounds every n-resource schedule's drops.
	parN := edf.ParEDFDrops(seq, n)
	for _, p := range []sim.Policy{core.NewDeltaLRUEDF(), core.NewEDF()} {
		res := sim.MustRun(env, p)
		if res.Cost.Drop < parN {
			t.Fatalf("%s drops %d < ParEDF(n=%d) drops %d: optimality violated", p.Name(), res.Cost.Drop, n, parN)
		}
	}

	// Reductions run and audit on batched and general instances.
	dres, err := reduce.RunDistribute(seq, n, core.NewDeltaLRUEDF())
	if err != nil {
		t.Fatalf("distribute: %v", err)
	}
	if dres.Cost.Total() > dres.Inner.Cost.Total() {
		t.Fatalf("distribute outer cost %v exceeds inner cost %v (violates Lemma 4.2)", dres.Cost, dres.Inner.Cost)
	}
	gen, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 2, Delta: 4, Colors: 6, Rounds: 200,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.4,
	})
	if err != nil {
		t.Fatalf("generate general: %v", err)
	}
	vres, err := reduce.RunVarBatch(gen, n, core.NewDeltaLRUEDF())
	if err != nil {
		t.Fatalf("varbatch: %v", err)
	}
	t.Logf("varbatch(dlru-edf) on general input: %v (jobs=%d)", vres.Cost, gen.NumJobs())
}
