package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func randomRateLimited(seed int64) *model.Sequence {
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: seed, Delta: int64(2 + seed%5), Colors: int(4 + seed%6), Rounds: 256,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.4 + float64(seed%4)*0.2,
		RateLimited: true,
	})
	if err != nil {
		panic(err)
	}
	return seq
}

// TestLemma33ReconfigBound: ReconfigCost(ΔLRU-EDF) <= 4 · numEpochs · Δ on
// random rate-limited batched instances (Lemma 3.3).
func TestLemma33ReconfigBound(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		seq := randomRateLimited(seed)
		if seq.NumJobs() == 0 {
			return true
		}
		p := core.NewDeltaLRUEDF()
		res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
		bound := 4 * p.Tracker().NumEpochs() * seq.Delta()
		if res.Cost.Reconfig > bound {
			t.Logf("seed %d: reconfig %d > 4·epochs·Δ = %d", seed, res.Cost.Reconfig, bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLemma34IneligibleDropBound: IneligibleDropCost <= numEpochs · Δ
// (Lemma 3.4).
func TestLemma34IneligibleDropBound(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seed := int64(seedRaw)
		seq := randomRateLimited(seed)
		if seq.NumJobs() == 0 {
			return true
		}
		p := core.NewDeltaLRUEDF()
		sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
		tr := p.Tracker()
		bound := tr.NumEpochs() * seq.Delta()
		if tr.IneligibleDrops() > bound {
			t.Logf("seed %d: ineligible drops %d > epochs·Δ = %d", seed, tr.IneligibleDrops(), bound)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLemma31FewJobsNeverCached: a color with fewer than Δ jobs never
// becomes eligible and is never cached, so all its jobs are dropped
// (Lemma 3.1's premise).
func TestLemma31FewJobsNeverCached(t *testing.T) {
	// Color 0: Δ-1 jobs; color 1: plenty.
	seq := model.NewBuilder(8).
		Add(0, 0, 4, 7).
		Add(0, 1, 4, 4).Add(4, 1, 4, 4).Add(8, 1, 4, 4).
		MustBuild()
	p := core.NewDeltaLRUEDF()
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
	if res.DropsByColor[0] != 7 {
		t.Errorf("color with < Δ jobs dropped %d of 7", res.DropsByColor[0])
	}
	for _, rec := range res.Schedule.Reconfigs {
		if rec.To == 0 {
			t.Fatal("sub-Δ color was cached")
		}
	}
}

// TestDropClassificationPartition: eligible + ineligible drops equals total
// drops for the combined policy.
func TestDropClassificationPartition(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seq := randomRateLimited(seed)
		p := core.NewDeltaLRUEDF()
		res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
		tr := p.Tracker()
		if tr.EligibleDrops()+tr.IneligibleDrops() != res.Cost.Drop {
			t.Fatalf("seed %d: %d + %d != %d", seed,
				tr.EligibleDrops(), tr.IneligibleDrops(), res.Cost.Drop)
		}
	}
}

// TestDeterminism: identical runs produce identical schedules.
func TestDeterminism(t *testing.T) {
	seq := randomRateLimited(3)
	env := sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}
	a := sim.MustRun(env, core.NewDeltaLRUEDF())
	b := sim.MustRun(env, core.NewDeltaLRUEDF())
	if a.Cost != b.Cost || len(a.Schedule.Reconfigs) != len(b.Schedule.Reconfigs) {
		t.Fatalf("nondeterministic: %v vs %v", a.Cost, b.Cost)
	}
	for i := range a.Schedule.Reconfigs {
		if a.Schedule.Reconfigs[i] != b.Schedule.Reconfigs[i] {
			t.Fatalf("reconfig %d differs", i)
		}
	}
}

// TestDeltaLRUKeepsRecentTimestamps: on the Appendix A structure, ΔLRU
// caches the short-term colors and starves the long-term color.
func TestDeltaLRUKeepsRecentTimestamps(t *testing.T) {
	n, delta := 8, int64(4)
	seq, err := workload.DeltaLRUAdversary(n, delta, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.MustRun(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}, core.NewDeltaLRU())
	longColor := model.Color(n / 2)
	// The long-term color is never executed after the short colors warm up.
	if res.DropsByColor[longColor] == 0 {
		t.Error("ΔLRU served the long-term color — the adversary should starve it")
	}
	// ΔLRU's total reconfig cost is bounded: it settles on the short colors.
	if res.Cost.Reconfig > int64(2*n)*delta {
		t.Errorf("ΔLRU reconfig = %d, want <= %d (settled configuration)", res.Cost.Reconfig, int64(2*n)*delta)
	}
}

// TestEDFServesEarliestDeadlines: EDF caches nonidle colors with the
// earliest deadlines.
func TestEDFServesEarliestDeadlines(t *testing.T) {
	// Two colors, slots for one (n=2, repl=2 -> 1 slot). Color 1 has the
	// shorter delay bound; both become eligible in round 0.
	seq := model.NewBuilder(2).
		Add(0, 0, 8, 4).
		Add(0, 1, 2, 2).Add(2, 1, 2, 2).
		MustBuild()
	res := sim.MustRun(sim.Env{Seq: seq, Resources: 2, Replication: 2, Speed: 1}, core.NewEDF())
	// Color 1 (D=2, earlier deadlines) must not be starved.
	if res.DropsByColor[1] > 0 {
		t.Errorf("EDF dropped %d jobs of the earliest-deadline color", res.DropsByColor[1])
	}
}

// TestComboCachedSubsetEligible: every color the combined policy targets is
// eligible at target time (cache ⊆ eligible, the invariant Lemma 3.3 rests
// on). Verified via the engine: a cached color's counter state must say
// eligible whenever it is in the target.
func TestComboCachedSubsetEligible(t *testing.T) {
	seq := randomRateLimited(5)
	p := core.NewDeltaLRUEDF()
	probe := &eligibilityProbe{inner: p}
	sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, probe)
	if probe.violations > 0 {
		t.Fatalf("%d target colors were ineligible", probe.violations)
	}
	if probe.targets == 0 {
		t.Fatal("probe never saw a target")
	}
}

type eligibilityProbe struct {
	inner      *core.DeltaLRUEDF
	violations int
	targets    int
}

func (p *eligibilityProbe) Name() string    { return "probe(" + p.inner.Name() + ")" }
func (p *eligibilityProbe) Reset(e sim.Env) { p.inner.Reset(e) }
func (p *eligibilityProbe) DropPhase(v sim.View, d map[model.Color]int) {
	p.inner.DropPhase(v, d)
}
func (p *eligibilityProbe) ArrivalPhase(v sim.View, a []model.Job) {
	p.inner.ArrivalPhase(v, a)
}
func (p *eligibilityProbe) Target(v sim.View) []model.Color {
	tg := p.inner.Target(v)
	for _, c := range tg {
		p.targets++
		if !p.inner.Tracker().Eligible(c) {
			p.violations++
		}
	}
	return tg
}

// TestComboRespectsSlotQuota: the combined policy never targets more than
// Slots() colors, across random instances.
func TestComboRespectsSlotQuota(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seq := randomRateLimited(int64(seedRaw))
		counter := &quotaProbe{inner: core.NewDeltaLRUEDF()}
		res, err := sim.Run(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, counter)
		if err != nil {
			return false
		}
		_, err = model.Audit(seq, res.Schedule)
		return err == nil && counter.maxTargets <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

type quotaProbe struct {
	inner      *core.DeltaLRUEDF
	maxTargets int
}

func (p *quotaProbe) Name() string                                { return "quota" }
func (p *quotaProbe) Reset(e sim.Env)                             { p.inner.Reset(e) }
func (p *quotaProbe) DropPhase(v sim.View, d map[model.Color]int) { p.inner.DropPhase(v, d) }
func (p *quotaProbe) ArrivalPhase(v sim.View, a []model.Job)      { p.inner.ArrivalPhase(v, a) }
func (p *quotaProbe) Target(v sim.View) []model.Color {
	tg := p.inner.Target(v)
	if len(tg) > p.maxTargets {
		p.maxTargets = len(tg)
	}
	return tg
}

// TestWithLRUSlotsExtremes: quota 0 behaves like the EDF half only; quota =
// Slots() behaves like the LRU half only. Both still audit.
func TestWithLRUSlotsExtremes(t *testing.T) {
	seq := randomRateLimited(4)
	for _, q := range []int{0, 1, 2, 3, 4} {
		p := core.NewDeltaLRUEDF(core.WithLRUSlots(q))
		res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
		if _, err := model.Audit(seq, res.Schedule); err != nil {
			t.Fatalf("quota %d: %v", q, err)
		}
	}
}

func TestWithLRUSlotsOutOfRangePanics(t *testing.T) {
	seq := randomRateLimited(1)
	p := core.NewDeltaLRUEDF(core.WithLRUSlots(99))
	defer func() {
		if recover() == nil {
			t.Fatal("quota 99 accepted with 4 slots")
		}
	}()
	sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
}

// TestPolicyNames pins the public names used by the CLIs and tables.
func TestPolicyNames(t *testing.T) {
	if core.NewDeltaLRU().Name() != "dlru" ||
		core.NewEDF().Name() != "edf" ||
		core.NewDeltaLRUEDF().Name() != "dlru-edf" {
		t.Error("policy names changed")
	}
}

// TestAllPoliciesAuditOnRandomInstances is the cross-policy audit sweep.
func TestAllPoliciesAuditOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 15; i++ {
		seq := randomRateLimited(rng.Int63n(1000))
		for _, mk := range []func() sim.Policy{
			func() sim.Policy { return core.NewDeltaLRU() },
			func() sim.Policy { return core.NewEDF() },
			func() sim.Policy { return core.NewDeltaLRUEDF() },
		} {
			p := mk()
			res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
			if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
				t.Fatalf("%s: audit %v != engine %v", p.Name(), got, res.Cost)
			}
		}
	}
}

// TestWithTimestampKRunsAndAudits: the LRU-K variant stays legal and
// deterministic across K.
func TestWithTimestampKRunsAndAudits(t *testing.T) {
	seq := randomRateLimited(6)
	for _, k := range []int{1, 2, 3} {
		p := core.NewDeltaLRUEDF(core.WithTimestampK(k))
		res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
		if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
			t.Fatalf("K=%d: audit %v != engine %v", k, got, res.Cost)
		}
	}
	// K=1 must behave exactly like the default.
	env := sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}
	a := sim.MustRun(env, core.NewDeltaLRUEDF())
	b := sim.MustRun(env, core.NewDeltaLRUEDF(core.WithTimestampK(1)))
	if a.Cost != b.Cost {
		t.Fatalf("K=1 differs from default: %v vs %v", a.Cost, b.Cost)
	}
}
