package core

import (
	"fmt"
	"sort"

	"rrsched/internal/model"
)

// TrackerCheckpoint is a serializable image of a Tracker: the full Section
// 3.1 state machine (per-color counters, deadlines, eligibility, timestamp
// wraps) plus the epoch and drop accounting. Colors are sorted so equal
// trackers produce identical checkpoints.
type TrackerCheckpoint struct {
	Delta           int64             `json:"delta"`
	TimestampK      int               `json:"timestamp_k"`
	CompletedEpochs int64             `json:"completed_epochs"`
	EligibleDrops   int64             `json:"eligible_drops"`
	IneligibleDrops int64             `json:"ineligible_drops"`
	Colors          []ColorCheckpoint `json:"colors"`
}

// ColorCheckpoint is the serialized per-color state.
type ColorCheckpoint struct {
	Color    model.Color `json:"color"`
	Delay    int64       `json:"delay"`
	Cnt      int64       `json:"cnt"`
	Deadline int64       `json:"deadline"`
	Eligible bool        `json:"eligible"`
	Wraps    []int64     `json:"wraps,omitempty"`
	Seen     bool        `json:"seen,omitempty"`
}

// Checkpoint captures the tracker's state. Trackers with super-epoch
// accounting enabled are not checkpointable (the streaming scheduler, the
// only checkpointed driver, never enables it).
func (t *Tracker) Checkpoint() (*TrackerCheckpoint, error) {
	if t.super != nil {
		return nil, fmt.Errorf("core: tracker with super-epoch accounting is not checkpointable")
	}
	cp := &TrackerCheckpoint{
		Delta:           t.delta,
		TimestampK:      t.tsK,
		CompletedEpochs: t.completedEpochs,
		EligibleDrops:   t.eligibleDrops,
		IneligibleDrops: t.ineligibleDrops,
	}
	for c, cs := range t.states {
		cc := ColorCheckpoint{
			Color:    c,
			Delay:    cs.delay,
			Cnt:      cs.cnt,
			Deadline: cs.dd,
			Eligible: cs.eligible,
			Seen:     cs.seen,
		}
		if len(cs.wraps) > 0 {
			cc.Wraps = append([]int64(nil), cs.wraps...)
		}
		cp.Colors = append(cp.Colors, cc)
	}
	sort.Slice(cp.Colors, func(i, j int) bool { return cp.Colors[i].Color < cp.Colors[j].Color })
	return cp, nil
}

// RestoreTracker rebuilds a Tracker from a checkpoint, validating it field by
// field so a corrupted checkpoint is rejected rather than resumed.
func RestoreTracker(cp *TrackerCheckpoint) (*Tracker, error) {
	if cp == nil {
		return nil, fmt.Errorf("core: nil tracker checkpoint")
	}
	if cp.Delta <= 0 {
		return nil, fmt.Errorf("core: checkpoint has non-positive delta %d", cp.Delta)
	}
	if cp.TimestampK < 1 {
		return nil, fmt.Errorf("core: checkpoint has timestamp depth %d", cp.TimestampK)
	}
	if cp.CompletedEpochs < 0 || cp.EligibleDrops < 0 || cp.IneligibleDrops < 0 {
		return nil, fmt.Errorf("core: checkpoint has negative accounting counters")
	}
	t := NewDynamicTracker(cp.Delta)
	t.tsK = cp.TimestampK
	t.completedEpochs = cp.CompletedEpochs
	t.eligibleDrops = cp.EligibleDrops
	t.ineligibleDrops = cp.IneligibleDrops
	for i, cc := range cp.Colors {
		if cc.Color < 0 {
			return nil, fmt.Errorf("core: checkpoint color %d has invalid color %v", i, cc.Color)
		}
		if cc.Delay <= 0 {
			return nil, fmt.Errorf("core: checkpoint color %v has non-positive delay %d", cc.Color, cc.Delay)
		}
		if _, ok := t.states[cc.Color]; ok {
			return nil, fmt.Errorf("core: checkpoint repeats color %v", cc.Color)
		}
		if cc.Cnt < 0 || cc.Cnt >= cp.Delta {
			return nil, fmt.Errorf("core: checkpoint color %v has counter %d outside [0,%d)", cc.Color, cc.Cnt, cp.Delta)
		}
		if len(cc.Wraps) > cp.TimestampK+1 {
			return nil, fmt.Errorf("core: checkpoint color %v has %d wraps (depth %d)", cc.Color, len(cc.Wraps), cp.TimestampK+1)
		}
		for j := 1; j < len(cc.Wraps); j++ {
			if cc.Wraps[j] < cc.Wraps[j-1] {
				return nil, fmt.Errorf("core: checkpoint color %v has unsorted wraps", cc.Color)
			}
		}
		// Register establishes the color's slot in the sorted order index;
		// the restored state then replaces the blank one it created.
		t.Register(cc.Color, cc.Delay)
		t.states[cc.Color] = &colorState{
			delay:    cc.Delay,
			cnt:      cc.Cnt,
			dd:       cc.Deadline,
			eligible: cc.Eligible,
			wraps:    append([]int64(nil), cc.Wraps...),
			seen:     cc.Seen,
		}
	}
	return t, nil
}
