package core_test

import (
	"testing"
	"testing/quick"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

// TestLedgerPrefixInequality: the prefix-strengthened Lemma 3.3 holds at
// every round on random rate-limited batched instances.
func TestLedgerPrefixInequality(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seq := randomRateLimited(int64(seedRaw))
		if seq.NumJobs() == 0 {
			return true
		}
		l := core.NewLemmaLedger()
		sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, l)
		if l.Violations > 0 {
			t.Logf("seed %d: %d prefix violations, min slack %d", seedRaw, l.Violations, l.MinSlack())
			return false
		}
		return l.MinSlack() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLedgerPaidUpperBoundsEngine: the ledger's conservative charge is at
// least the engine's true reconfiguration cost.
func TestLedgerPaidUpperBoundsEngine(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seq := randomRateLimited(seed)
		l := core.NewLemmaLedger()
		res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, l)
		if l.Paid() < res.Cost.Reconfig {
			t.Fatalf("seed %d: ledger paid %d < engine reconfig %d", seed, l.Paid(), res.Cost.Reconfig)
		}
	}
}

// TestLedgerOnAdversaries: the ledger stays balanced even on the adversarial
// constructions.
func TestLedgerOnAdversaries(t *testing.T) {
	n := 8
	seqs := []*model.Sequence{}
	if s, err := workload.DeltaLRUAdversary(n, 4, 6, 9); err == nil {
		seqs = append(seqs, s)
	}
	if s, err := workload.EDFAdversary(4, 8, 4, 7); err == nil {
		// EDF adversary is built for n=4; run the ledger there too.
		l := core.NewLemmaLedger()
		sim.MustRun(sim.Env{Seq: s, Resources: 4, Replication: 2, Speed: 1}, l)
		if l.Violations > 0 {
			t.Errorf("EDF adversary: %d violations", l.Violations)
		}
	}
	for _, s := range seqs {
		l := core.NewLemmaLedger()
		sim.MustRun(sim.Env{Seq: s, Resources: n, Replication: 2, Speed: 1}, l)
		if l.Violations > 0 {
			t.Errorf("adversary: %d violations (min slack %d)", l.Violations, l.MinSlack())
		}
	}
}
