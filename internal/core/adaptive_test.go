package core_test

import (
	"strings"
	"testing"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func TestAdaptiveRunsAndAudits(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seq := randomRateLimited(seed)
		p := core.NewAdaptive()
		res := sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
		if got := model.MustAudit(seq, res.Schedule); got != res.Cost {
			t.Fatalf("seed %d: audit %v != engine %v", seed, got, res.Cost)
		}
		if q := p.Quota(); q < 0 || q > 4 {
			t.Fatalf("seed %d: quota %d out of range", seed, q)
		}
	}
}

func TestAdaptiveQuotaMoves(t *testing.T) {
	// A heavily dropping workload (way over capacity) should push the quota
	// down toward the EDF half.
	seq, err := workload.RandomBatched(workload.RandomConfig{
		Seed: 3, Delta: 2, Colors: 16, Rounds: 1024,
		MinDelayExp: 1, MaxDelayExp: 2, Load: 2.0, RateLimited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewAdaptive()
	sim.MustRun(sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}, p)
	hist := p.QuotaHistory()
	if len(hist) == 0 {
		t.Fatal("no adaptation windows elapsed")
	}
	if p.Quota() >= 2 {
		t.Errorf("quota = %d, expected it to drop below the initial 2 under heavy drops (history %v)", p.Quota(), hist)
	}
}

func TestAdaptiveOnAdversaryAvoidsLRUCollapse(t *testing.T) {
	// On the Appendix A instance pure ΔLRU (all-LRU quota) starves the
	// long-term color; the adaptive policy must stay within a small factor
	// of the fixed combination.
	n := 8
	seq, err := workload.DeltaLRUAdversary(n, 4, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
	fixed := sim.MustRun(env, core.NewDeltaLRUEDF()).Cost.Total()
	allLRU := sim.MustRun(env, core.NewDeltaLRUEDF(core.WithLRUSlots(4))).Cost.Total()
	adaptive := sim.MustRun(env, core.NewAdaptive()).Cost.Total()
	if adaptive > 2*fixed {
		t.Errorf("adaptive %d > 2x fixed %d on the adversary", adaptive, fixed)
	}
	if adaptive >= allLRU {
		t.Errorf("adaptive %d did not beat all-LRU %d on the adversary", adaptive, allLRU)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	seq := randomRateLimited(7)
	env := sim.Env{Seq: seq, Resources: 8, Replication: 2, Speed: 1}
	a := sim.MustRun(env, core.NewAdaptive())
	b := sim.MustRun(env, core.NewAdaptive())
	if a.Cost != b.Cost {
		t.Fatalf("nondeterministic: %v vs %v", a.Cost, b.Cost)
	}
}

func TestAdaptiveString(t *testing.T) {
	p := core.NewAdaptive()
	p.Reset(sim.Env{Seq: randomRateLimited(1), Resources: 8, Replication: 2, Speed: 1})
	if s := p.String(); !strings.Contains(s, "adaptive-dlru-edf") {
		t.Errorf("String = %q", s)
	}
	if p.Name() != "adaptive-dlru-edf" {
		t.Errorf("Name = %q", p.Name())
	}
}
