// Package core implements the paper's online reconfiguration policies for
// rate-limited batched instances (Section 3): ΔLRU (3.1.1), EDF (3.1.2), and
// the main contribution ΔLRU-EDF (3.1.3), a combination that caches one set
// of colors by recency of ΔLRU timestamps and a second set by earliest
// deadline. All three share the counter / eligibility / timestamp state
// machine of Section 3.1 ("common aspects"), implemented by Tracker.
package core

import (
	"fmt"
	"slices"

	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/sim"
)

// colorState is the per-color bookkeeping of Section 3.1: the counter ℓ.cnt,
// the deadline ℓ.dd, the eligibility bit, and the most recent
// counter-wrapping rounds (enough to answer timestamp queries; the ΔLRU
// timestamp is the latest wrap strictly before the most recent multiple of
// D_ℓ, and the ΔLRU-K generalization uses the K-th latest).
type colorState struct {
	delay    int64
	cnt      int64
	dd       int64
	eligible bool
	wraps    []int64 // wrap rounds, most recent last (bounded by the tracker's depth)
	seen     bool    // a job of this color has arrived (epoch 0 started)
}

// wrap records a counter-wrapping event in round k, retaining at most depth
// entries.
func (cs *colorState) wrap(k int64, depth int) {
	cs.wraps = append(cs.wraps, k)
	if len(cs.wraps) > depth {
		cs.wraps = cs.wraps[len(cs.wraps)-depth:]
	}
}

// lastWrap returns the most recent wrap round (ok == false if none).
func (cs *colorState) lastWrap() (int64, bool) {
	if len(cs.wraps) == 0 {
		return 0, false
	}
	return cs.wraps[len(cs.wraps)-1], true
}

// timestampK returns the generalized ΔLRU-K timestamp at round now: the
// K-th latest counter-wrapping round strictly before k, where k is the most
// recent integral multiple of D_ℓ; 0 if fewer than K such wraps exist. K=1
// is the paper's timestamp (Section 3.1.1); larger K is the LRU-K flavor of
// O'Neil et al. discussed in the related work.
func (cs *colorState) timestampK(now int64, K int) int64 {
	k := (now / cs.delay) * cs.delay
	found := 0
	for i := len(cs.wraps) - 1; i >= 0; i-- {
		if cs.wraps[i] < k {
			found++
			if found == K {
				return cs.wraps[i]
			}
		}
	}
	return 0
}

// timestamp is the paper's K = 1 timestamp.
func (cs *colorState) timestamp(now int64) int64 { return cs.timestampK(now, 1) }

// Tracker maintains the shared per-color state for the Section 3 policies
// and the epoch / drop-classification accounting used by the analysis
// (epochs per Section 3.2, eligible vs ineligible drops per Lemma 3.2/3.4).
type Tracker struct {
	delta  int64
	states map[model.Color]*colorState
	order  []model.Color // registered colors in ascending order
	tsK    int           // timestamp depth K (1 = the paper's ΔLRU)

	completedEpochs int64
	eligibleDrops   int64
	ineligibleDrops int64

	// super, when non-nil, performs the Section 3.4 super-epoch accounting
	// (see superepoch.go).
	super *superEpochTracker

	// sink, when non-nil, receives the tracker's decision events (epoch
	// ends, eligibility wraps). Emission is strictly after the state
	// transition, so attaching a sink never changes a decision.
	sink obs.EventSink

	// Per-round scratch, reused across calls so the steady-state decision
	// path allocates nothing. Slices returned from the helpers below alias
	// these buffers and are valid only until the next tracker call.
	countScratch map[model.Color]int64
	eligScratch  []model.Color
	lruScratch   []model.Color
	protScratch  map[model.Color]bool
	cacheScratch map[model.Color]bool
	setScratch   []model.Color
	candScratch  []model.Color
}

// NewTracker returns a Tracker for the given environment. The core policies
// require batched arrivals (jobs of color ℓ arrive at integral multiples of
// D_ℓ); Reset panics otherwise, because the drop/arrival phase bookkeeping of
// Section 3.1 is only defined for batched inputs. Use the VarBatch and
// Distribute reductions for general inputs.
func NewTracker(env sim.Env) *Tracker {
	if !env.Seq.IsBatched() {
		panic("core: the Section 3 policies require batched arrivals; wrap general inputs with reduce.VarBatch")
	}
	t := NewDynamicTracker(env.Seq.Delta())
	if env.Obs != nil {
		t.sink = env.Obs.Sink
	}
	for _, c := range env.Seq.Colors() {
		d, _ := env.Seq.DelayBound(c)
		t.Register(c, d)
	}
	return t
}

// SetSink attaches an event sink for the tracker's decision events (epoch
// ends per Section 3.2, eligibility wraps per Section 3.1). NewTracker wires
// this automatically from Env.Obs; dynamic trackers attach it explicitly.
func (t *Tracker) SetSink(sink obs.EventSink) { t.sink = sink }

// NewDynamicTracker returns a Tracker whose color universe is registered
// incrementally with Register — the streaming interface uses this, since
// subcolors of the Distribute reduction come into existence as batches
// arrive. The caller is responsible for only feeding batched arrivals.
func NewDynamicTracker(delta int64) *Tracker {
	if delta <= 0 {
		panic("core: non-positive reconfiguration cost")
	}
	return &Tracker{
		delta:        delta,
		states:       make(map[model.Color]*colorState),
		tsK:          1,
		countScratch: make(map[model.Color]int64),
		protScratch:  make(map[model.Color]bool),
		cacheScratch: make(map[model.Color]bool),
	}
}

// SetTimestampK sets the timestamp depth K (>= 1): topByTimestamp then ranks
// colors by their K-th latest visible counter wrap (the LRU-K
// generalization). Must be set before the run.
func (t *Tracker) SetTimestampK(k int) {
	if k < 1 {
		panic("core: timestamp depth must be >= 1")
	}
	t.tsK = k
}

// Register adds a color with its delay bound to the universe; registering an
// existing color with the same delay is a no-op, with a different delay a
// panic.
func (t *Tracker) Register(c model.Color, delay int64) {
	if delay <= 0 {
		panic("core: non-positive delay bound")
	}
	if cs, ok := t.states[c]; ok {
		if cs.delay != delay {
			panic(fmt.Sprintf("core: color %v re-registered with delay %d (was %d)", c, delay, cs.delay))
		}
		return
	}
	t.states[c] = &colorState{delay: delay}
	i, _ := slices.BinarySearch(t.order, c)
	t.order = slices.Insert(t.order, i, c)
}

// ComputeTarget runs the ΔLRU-EDF reconfiguration scheme (Section 3.1.3)
// directly on a tracker and view: the top lruSlots eligible colors by
// timestamp are protected, and the remaining capacity is managed by the EDF
// scheme. This is the policy core exposed for incremental drivers
// (internal/stream); DeltaLRUEDF.Target delegates to the same logic.
func ComputeTarget(t *Tracker, v sim.View, lruSlots int) []model.Color {
	lru := t.topByTimestamp(v.Round(), lruSlots)
	return edfUpdate(t, v, v.CachedColors(), lru, v.Slots()-lruSlots)
}

// state returns the colorState of c; colors outside the universe map to nil.
func (t *Tracker) state(c model.Color) *colorState { return t.states[c] }

// Eligible reports whether color c is currently eligible.
func (t *Tracker) Eligible(c model.Color) bool {
	cs := t.states[c]
	return cs != nil && cs.eligible
}

// Deadline returns ℓ.dd of color c.
func (t *Tracker) Deadline(c model.Color) int64 {
	cs := t.states[c]
	if cs == nil {
		return 0
	}
	return cs.dd
}

// Timestamp returns the ΔLRU timestamp of color c at round now.
func (t *Tracker) Timestamp(c model.Color, now int64) int64 {
	cs := t.states[c]
	if cs == nil {
		return 0
	}
	return cs.timestampK(now, t.tsK)
}

// NumEpochs returns the number of epochs associated with the input so far,
// counting the incomplete last epoch of every color that has started one
// (Section 3.2: an epoch of ℓ ends the moment ℓ becomes ineligible; colors
// start ineligible and epoch 0 starts with the color's first job).
func (t *Tracker) NumEpochs() int64 {
	n := t.completedEpochs
	for _, cs := range t.states {
		if cs.seen {
			n++ // the current (possibly incomplete) epoch
		}
	}
	return n
}

// EligibleDrops returns the drop cost incurred on eligible jobs (jobs
// dropped while their color was eligible).
func (t *Tracker) EligibleDrops() int64 { return t.eligibleDrops }

// IneligibleDrops returns the drop cost incurred on ineligible jobs.
func (t *Tracker) IneligibleDrops() int64 { return t.ineligibleDrops }

// DropPhase performs the Section 3.1 drop-phase bookkeeping for round k:
// classify this round's drops by the (pre-transition) eligibility of their
// color, then, for every color ℓ with k ≡ 0 (mod D_ℓ) that is eligible and
// not cached, make ℓ ineligible and zero its counter, ending its epoch.
func (t *Tracker) DropPhase(v sim.View, dropped map[model.Color]int) {
	for c, n := range dropped {
		cs := t.states[c]
		if cs == nil {
			continue
		}
		if cs.eligible {
			t.eligibleDrops += int64(n)
		} else {
			t.ineligibleDrops += int64(n)
		}
	}
	k := v.Round()
	for _, c := range t.order {
		cs := t.states[c]
		if k%cs.delay != 0 {
			continue
		}
		if cs.eligible && !v.Cached(c) {
			cs.eligible = false
			cs.cnt = 0
			t.completedEpochs++
			if t.super != nil {
				// The epoch of c ends here and its successor begins
				// immediately (Section 3.2).
				t.super.onEpochStart(c)
			}
			if t.sink != nil {
				t.sink.Emit(obs.Event{Kind: obs.EventEpochEnd, Round: k, Color: c, Resource: -1, N: t.completedEpochs})
			}
		}
	}
}

// ArrivalPhase performs the Section 3.1 arrival-phase bookkeeping for round
// k: for every color ℓ with k ≡ 0 (mod D_ℓ), advance its deadline to k+D_ℓ,
// add this round's arrivals to its counter, and on reaching Δ wrap the
// counter (recording the wrap round) and make the color eligible.
func (t *Tracker) ArrivalPhase(v sim.View, arrivals []model.Job) {
	counts := t.countScratch
	clear(counts)
	for _, j := range arrivals {
		counts[j.Color]++
	}
	k := v.Round()
	t.observeArrivalForSuperEpochs(v, k)
	for _, c := range t.order {
		cs := t.states[c]
		if k%cs.delay != 0 {
			continue
		}
		cs.dd = k + cs.delay
		if n := counts[c]; n > 0 {
			if !cs.seen {
				cs.seen = true
			}
			cs.cnt += n
		}
		if cs.cnt >= t.delta {
			cs.cnt %= t.delta
			cs.wrap(k, t.tsK+1)
			cs.eligible = true
			if t.sink != nil {
				t.sink.Emit(obs.Event{Kind: obs.EventEligible, Round: k, Color: c, Resource: -1, N: t.delta})
			}
		}
	}
}

// eligibleColors returns the eligible colors in ascending color order (the
// paper's "consistent order of colors"). The returned slice aliases tracker
// scratch: it is valid only until the next eligibleColors call.
func (t *Tracker) eligibleColors() []model.Color {
	out := t.eligScratch[:0]
	for _, c := range t.order {
		if t.states[c].eligible {
			out = append(out, c)
		}
	}
	t.eligScratch = out
	return out
}

// topByTimestamp returns the (at most q) eligible colors with the most
// recent timestamps at round now, ties broken by the consistent color order.
// The ranking key is a total order (no two distinct colors compare equal), so
// the unstable sort below produces the same result the spec's stable sort
// would. The returned slice aliases tracker scratch, valid until the next
// topByTimestamp call.
func (t *Tracker) topByTimestamp(now int64, q int) []model.Color {
	elig := append(t.lruScratch[:0], t.eligibleColors()...)
	t.lruScratch = elig
	slices.SortFunc(elig, func(a, b model.Color) int {
		ta := t.states[a].timestampK(now, t.tsK)
		tb := t.states[b].timestampK(now, t.tsK)
		if ta != tb {
			if ta > tb {
				return -1
			}
			return 1
		}
		if a < b {
			return -1
		}
		return 1
	})
	if len(elig) > q {
		elig = elig[:q]
	}
	return elig
}

// edfRank is the EDF ranking key of Section 3.1.2: nonidle colors first,
// then ascending deadline, then ascending delay bound, then the consistent
// order of colors. Smaller compares first (better rank).
type edfRank struct {
	idle  bool
	dd    int64
	delay int64
	color model.Color
}

func (a edfRank) less(b edfRank) bool {
	if a.idle != b.idle {
		return !a.idle // nonidle first
	}
	if a.dd != b.dd {
		return a.dd < b.dd
	}
	if a.delay != b.delay {
		return a.delay < b.delay
	}
	return a.color < b.color
}

// rankEDF returns a copy of the given colors sorted by the EDF ranking at the
// current view state (idleness comes from the live pending counts).
func (t *Tracker) rankEDF(v sim.View, colors []model.Color) []model.Color {
	ranked := make([]model.Color, len(colors))
	copy(ranked, colors)
	t.sortEDF(v, ranked)
	return ranked
}

// sortEDF sorts colors in place by the EDF ranking. The edfRank key is a
// total order (the color field breaks every tie), so the unstable sort
// produces the same permutation a stable sort would.
func (t *Tracker) sortEDF(v sim.View, colors []model.Color) {
	slices.SortFunc(colors, func(a, b model.Color) int {
		ca, cb := t.states[a], t.states[b]
		ka := edfRank{idle: v.Pending(a) == 0, dd: ca.dd, delay: ca.delay, color: a}
		kb := edfRank{idle: v.Pending(b) == 0, dd: cb.dd, delay: cb.delay, color: b}
		if ka.less(kb) {
			return -1
		}
		return 1
	})
}

// DelayBoundOf returns the registered delay bound of color c (0 if the
// color is unknown).
func (t *Tracker) DelayBoundOf(c model.Color) int64 {
	cs := t.states[c]
	if cs == nil {
		return 0
	}
	return cs.delay
}
