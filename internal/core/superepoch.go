package core

import (
	"rrsched/internal/model"
	"rrsched/internal/sim"
)

// SuperEpochStats summarizes the Section 3.4 accounting of one run: the
// analysis partitions time into super-epochs — a super-epoch ends the moment
// at least `threshold` (= 2m = n/4 in the paper) colors have increased their
// timestamps since it began — and shows that any color overlaps a
// super-epoch with at most three epochs (Corollary 3.2), which bounds the
// number of "special" epochs (Lemma 3.16) and ultimately OPT's cost from
// below (Lemma 3.5).
type SuperEpochStats struct {
	// Threshold is the timestamp-update quota ending a super-epoch (2m).
	Threshold int
	// Completed counts completed super-epochs (the last one may be cut off).
	Completed int64
	// TimestampUpdates counts all timestamp update events.
	TimestampUpdates int64
	// MaxEpochOverlap is the maximum number of epochs of a single color
	// overlapping a single super-epoch (Corollary 3.2 bounds it by 3).
	MaxEpochOverlap int
}

// superEpochTracker implements the Section 3.4 bookkeeping on top of the
// shared Tracker state. It observes timestamp update events (a color's
// visible timestamp changes exactly at a multiple k of D_ℓ when a counter
// wrap happened in the preceding period, i.e. w1 == k - D_ℓ on entry) and
// epoch boundaries (eligible -> ineligible transitions).
type superEpochTracker struct {
	threshold int
	stats     SuperEpochStats

	updated map[model.Color]bool // colors with a timestamp update this super-epoch
	overlap map[model.Color]int  // epochs of each color overlapping this super-epoch
}

func newSuperEpochTracker(threshold int) *superEpochTracker {
	return &superEpochTracker{
		threshold: threshold,
		stats:     SuperEpochStats{Threshold: threshold},
		updated:   make(map[model.Color]bool),
		overlap:   make(map[model.Color]int),
	}
}

// onTimestampUpdate records a timestamp update event of color c.
func (s *superEpochTracker) onTimestampUpdate(c model.Color) {
	s.stats.TimestampUpdates++
	if !s.updated[c] {
		s.updated[c] = true
		if len(s.updated) >= s.threshold {
			s.closeSuperEpoch()
		}
	}
}

// onEpochStart records that color c started a new epoch (it had one before,
// which ended inside or before this super-epoch).
func (s *superEpochTracker) onEpochStart(c model.Color) {
	s.touch(c)
	s.overlap[c]++
	if s.overlap[c] > s.stats.MaxEpochOverlap {
		s.stats.MaxEpochOverlap = s.overlap[c]
	}
}

// touch lazily registers a color's current epoch as overlapping this
// super-epoch.
func (s *superEpochTracker) touch(c model.Color) {
	if _, ok := s.overlap[c]; !ok {
		s.overlap[c] = 1
		if s.stats.MaxEpochOverlap < 1 {
			s.stats.MaxEpochOverlap = 1
		}
	}
}

func (s *superEpochTracker) closeSuperEpoch() {
	s.stats.Completed++
	s.updated = make(map[model.Color]bool)
	s.overlap = make(map[model.Color]int)
	// Colors with an ongoing epoch will be re-registered lazily on their
	// next event; the new super-epoch starts with one overlapping epoch per
	// color, which touch() reproduces.
}

// EnableSuperEpochs turns on Section 3.4 super-epoch accounting with the
// given threshold (the paper uses 2m = n/4). Must be called after Reset and
// before the run. Returns the tracker itself for chaining.
func (t *Tracker) EnableSuperEpochs(threshold int) *Tracker {
	if threshold <= 0 {
		panic("core: super-epoch threshold must be positive")
	}
	t.super = newSuperEpochTracker(threshold)
	return t
}

// SuperEpochs returns the Section 3.4 statistics; zero-valued if
// EnableSuperEpochs was not called.
func (t *Tracker) SuperEpochs() SuperEpochStats {
	if t.super == nil {
		return SuperEpochStats{}
	}
	return t.super.stats
}

// observeArrivalForSuperEpochs hooks timestamp update detection into the
// arrival phase: at a multiple k of D_ℓ, the visible timestamp of ℓ changes
// exactly when the last counter wrap happened in the preceding period.
// Called before this round's wrap processing.
func (t *Tracker) observeArrivalForSuperEpochs(v sim.View, k int64) {
	if t.super == nil {
		return
	}
	for _, c := range t.order {
		cs := t.states[c]
		if k%cs.delay != 0 {
			continue
		}
		if cs.seen {
			t.super.touch(c)
		}
		if w, ok := cs.lastWrap(); ok && w == k-cs.delay {
			t.super.onTimestampUpdate(c)
		}
	}
	_ = v
}
