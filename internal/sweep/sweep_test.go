package sweep

import (
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrdering(t *testing.T) {
	in := Seeds(100)
	out := Map(8, in, func(v int64) int64 { return v * v })
	for i, v := range out {
		if v != int64(i)*int64(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(4, nil, func(v int64) int64 { return v }); len(got) != 0 {
		t.Error("empty input produced output")
	}
	if got := Map(4, []int64{7}, func(v int64) int64 { return v + 1 }); got[0] != 8 {
		t.Error("single input wrong")
	}
}

func TestMapSequentialFallback(t *testing.T) {
	out := Map(1, Seeds(10), func(v int64) int64 { return -v })
	if out[3] != -3 {
		t.Error("sequential path wrong")
	}
}

func TestMapUsesConcurrency(t *testing.T) {
	var calls atomic.Int64
	Map(4, Seeds(64), func(v int64) int64 {
		calls.Add(1)
		return v
	})
	if calls.Load() != 64 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic swallowed")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic = %v", r)
		}
	}()
	Map(4, Seeds(16), func(v int64) int64 {
		if v == 9 {
			panic("boom")
		}
		return v
	})
}

// TestMapMatchesSequentialProperty: parallel Map agrees with a plain loop.
func TestMapMatchesSequentialProperty(t *testing.T) {
	f := func(vals []int32, workersRaw uint8) bool {
		in := make([]int64, len(vals))
		for i, v := range vals {
			in[i] = int64(v)
		}
		workers := int(workersRaw%8) + 1
		fn := func(v int64) int64 { return 3*v - 1 }
		got := Map(workers, in, fn)
		for i, v := range in {
			if got[i] != fn(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(3)
	if len(s) != 3 || s[0] != 0 || s[2] != 2 {
		t.Errorf("Seeds = %v", s)
	}
}
