package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func ok[In, Out any](f func(In) Out) func(In) (Out, error) {
	return func(v In) (Out, error) { return f(v), nil }
}

func TestMapOrdering(t *testing.T) {
	in := Seeds(100)
	out, err := Map(8, in, ok(func(v int64) int64 { return v * v }))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != int64(i)*int64(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := Map(4, nil, ok(func(v int64) int64 { return v }))
	if err != nil || len(got) != 0 {
		t.Error("empty input produced output or error")
	}
	got, err = Map(4, []int64{7}, ok(func(v int64) int64 { return v + 1 }))
	if err != nil || got[0] != 8 {
		t.Error("single input wrong")
	}
}

func TestMapSequentialFallback(t *testing.T) {
	out, err := Map(1, Seeds(10), ok(func(v int64) int64 { return -v }))
	if err != nil || out[3] != -3 {
		t.Error("sequential path wrong")
	}
}

func TestMapUsesConcurrency(t *testing.T) {
	var calls atomic.Int64
	if _, err := Map(4, Seeds(64), ok(func(v int64) int64 {
		calls.Add(1)
		return v
	})); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 64 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

// TestMapZeroWorkersRunsConcurrently pins the documented Workers==0 default
// (runtime.GOMAXPROCS(0)): with at least two processors available, two tasks
// must be in flight at once. A rendezvous proves it — each task waits for
// the other, so a sequential fallback would deadlock and hit the timeout.
func TestMapZeroWorkersRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs GOMAXPROCS >= 2 to observe concurrency")
	}
	var arrived atomic.Int64
	both := make(chan struct{})
	out, err := Map(0, Seeds(2), func(v int64) (int64, error) {
		if arrived.Add(1) == 2 {
			close(both)
		}
		select {
		case <-both:
			return v, nil
		case <-time.After(5 * time.Second):
			return 0, fmt.Errorf("task %d never met its partner: Map(0, ...) ran sequentially", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d results", len(out))
	}
	// Negative workers take the same default path.
	if _, err := Map(-3, Seeds(4), ok(func(v int64) int64 { return v })); err != nil {
		t.Fatal(err)
	}
}

// TestMapSurvivesPanickingTask: a panicking task does not abort the sweep —
// every other task completes, and the failure is reported with its index.
func TestMapSurvivesPanickingTask(t *testing.T) {
	var calls atomic.Int64
	out, err := Map(4, Seeds(16), func(v int64) (int64, error) {
		calls.Add(1)
		if v == 9 {
			panic("boom")
		}
		return v * 10, nil
	})
	if calls.Load() != 16 {
		t.Fatalf("sweep aborted early: only %d of 16 tasks ran", calls.Load())
	}
	if err == nil {
		t.Fatal("panic swallowed")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T", err)
	}
	if idx := se.Indices(); len(idx) != 1 || idx[0] != 9 {
		t.Fatalf("failed indices = %v, want [9]", idx)
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "task 9") {
		t.Fatalf("error = %v", err)
	}
	for i, v := range out {
		switch {
		case i == 9 && v != 0:
			t.Fatalf("failed slot not zeroed: out[9] = %d", v)
		case i != 9 && v != int64(i)*10:
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestMapCollectsAllErrors: returned errors from multiple tasks are all
// reported, sorted by input index, and wrapped for errors.Is.
func TestMapCollectsAllErrors(t *testing.T) {
	sentinel := errors.New("bad seed")
	_, err := Map(4, Seeds(20), func(v int64) (int64, error) {
		if v%7 == 3 {
			return 0, fmt.Errorf("seed %d: %w", v, sentinel)
		}
		return v, nil
	})
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error type = %T (%v)", err, err)
	}
	idx := se.Indices()
	if len(idx) != 3 || idx[0] != 3 || idx[1] != 10 || idx[2] != 17 {
		t.Fatalf("failed indices = %v, want [3 10 17]", idx)
	}
	for _, task := range se.Tasks {
		if !errors.Is(task, sentinel) {
			t.Fatalf("task error %v does not wrap sentinel", task)
		}
	}
}

// TestMapMatchesSequentialProperty: parallel Map agrees with a plain loop.
func TestMapMatchesSequentialProperty(t *testing.T) {
	f := func(vals []int32, workersRaw uint8) bool {
		in := make([]int64, len(vals))
		for i, v := range vals {
			in[i] = int64(v)
		}
		workers := int(workersRaw%8) + 1
		fn := func(v int64) int64 { return 3*v - 1 }
		got, err := Map(workers, in, ok(fn))
		if err != nil {
			return false
		}
		for i, v := range in {
			if got[i] != fn(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeeds(t *testing.T) {
	s := Seeds(3)
	if len(s) != 3 || s[0] != 0 || s[2] != 2 {
		t.Errorf("Seeds = %v", s)
	}
}

// TestMapRespectsWorkerBound checks that an explicit worker count is a hard
// concurrency bound: at no instant do more than `workers` tasks run, and
// workers=1 is strictly sequential. Drivers rely on this to pin sweeps to
// one worker when measuring work rather than parallel speedup (rrbench).
func TestMapRespectsWorkerBound(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		var inFlight, peak atomic.Int64
		_, err := Map(workers, Seeds(64), ok(func(v int64) int64 {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			// Linger long enough that overlapping tasks would be observed.
			for i := 0; i < 10000; i++ {
				v += int64(i)
			}
			inFlight.Add(-1)
			return v
		}))
		if err != nil {
			t.Fatal(err)
		}
		if got := peak.Load(); got > int64(workers) {
			t.Errorf("workers=%d: observed %d concurrent tasks", workers, got)
		}
	}
}
