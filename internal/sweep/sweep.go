// Package sweep provides a small deterministic parallel-map substrate for
// parameter sweeps: experiments fan seeds and configurations out over a
// bounded worker pool and collect results in input order, so tables stay
// byte-identical regardless of GOMAXPROCS. The simulator itself is
// sequential (a run is a causal chain of rounds); parallelism lives at the
// sweep level, which is where the evaluation spends its time.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Map applies f to every input concurrently using at most workers
// goroutines (0 means GOMAXPROCS) and returns the outputs in input order.
// The first panic in a worker is re-raised on the caller's goroutine after
// all workers have stopped, so a failing sweep never leaks goroutines.
func Map[In, Out any](workers int, inputs []In, f func(In) Out) []Out {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	out := make([]Out, len(inputs))
	if len(inputs) == 0 {
		return out
	}
	if workers <= 1 {
		for i, in := range inputs {
			out[i] = f(in)
		}
		return out
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					out[i] = f(inputs[i])
				}()
			}
		}()
	}
	for i := range inputs {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("sweep: worker panicked: %v", panicked))
	}
	return out
}

// Seeds returns the integers [0, n) as int64 seeds, a convenience for
// seed sweeps.
func Seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
