// Package sweep provides a small deterministic parallel-map substrate for
// parameter sweeps: experiments fan seeds and configurations out over a
// bounded worker pool and collect results in input order, so tables stay
// byte-identical regardless of GOMAXPROCS. The simulator itself is
// sequential (a run is a causal chain of rounds); parallelism lives at the
// sweep level, which is where the evaluation spends its time.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// TaskError records one failed task of a sweep: which input index failed and
// why (either the error f returned or a recovered panic).
type TaskError struct {
	Index int
	Err   error
}

func (e TaskError) Error() string { return fmt.Sprintf("task %d: %v", e.Index, e.Err) }

func (e TaskError) Unwrap() error { return e.Err }

// SweepError aggregates every failed task of a sweep in input-index order.
type SweepError struct {
	Tasks []TaskError
}

func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d of the tasks failed:", len(e.Tasks))
	for _, t := range e.Tasks {
		b.WriteString(" [")
		b.WriteString(t.Error())
		b.WriteString("]")
	}
	return b.String()
}

// Indices returns the failed input indices in increasing order.
func (e *SweepError) Indices() []int {
	out := make([]int, len(e.Tasks))
	for i, t := range e.Tasks {
		out[i] = t.Index
	}
	return out
}

// Map applies f to every input concurrently using at most workers
// goroutines and returns the outputs in input order. Workers <= 0 selects
// the default, runtime.GOMAXPROCS(0) — "use the machine" — which is what
// every production caller (the experiment sweeps, cmd/rrexp) passes; the
// zero default is pinned by TestMapZeroWorkersRunsConcurrently. Bounded
// values are for tests and benchmarks that need a deterministic degree of
// parallelism (the rrbench sweep scenario pins workers=1 to measure
// dispatch, not speedup).
// A task that returns an error or panics does not abort the sweep: the
// remaining tasks still run to completion, the failed slots keep their zero
// value, and Map reports every failure — with its input index — in a single
// *SweepError. The error is nil iff every task succeeded.
func Map[In, Out any](workers int, inputs []In, f func(In) (Out, error)) ([]Out, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) {
		workers = len(inputs)
	}
	out := make([]Out, len(inputs))
	if len(inputs) == 0 {
		return out, nil
	}

	var (
		failMu sync.Mutex
		fails  []TaskError
	)
	runTask := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				failMu.Lock()
				fails = append(fails, TaskError{Index: i, Err: fmt.Errorf("panic: %v", r)})
				failMu.Unlock()
			}
		}()
		v, err := f(inputs[i])
		if err != nil {
			failMu.Lock()
			fails = append(fails, TaskError{Index: i, Err: err})
			failMu.Unlock()
			return
		}
		out[i] = v
	}

	if workers <= 1 {
		for i := range inputs {
			runTask(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					runTask(i)
				}
			}()
		}
		for i := range inputs {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if len(fails) > 0 {
		sort.Slice(fails, func(a, b int) bool { return fails[a].Index < fails[b].Index })
		return out, &SweepError{Tasks: fails}
	}
	return out, nil
}

// Seeds returns the integers [0, n) as int64 seeds, a convenience for
// seed sweeps.
func Seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
