package perf

import (
	"fmt"
	"math"
	"testing"
)

// TestWireScenariosRegistered pins the wire matrix's shape: both codecs,
// both directions, every batch size, all selectable as one group.
func TestWireScenariosRegistered(t *testing.T) {
	scs, err := Select("^wire/")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	want := map[string]bool{}
	for _, codec := range []string{"json", "binary"} {
		for _, dir := range []string{"encode", "decode"} {
			for _, b := range wireBatches {
				want[fmt.Sprintf("wire/%s/%s/b%d", codec, dir, b)] = true
			}
		}
	}
	if len(scs) != len(want) {
		t.Fatalf("wire matrix has %d scenarios, want %d", len(scs), len(want))
	}
	for _, s := range scs {
		if !want[s.Name] {
			t.Errorf("unexpected wire scenario %q", s.Name)
		}
		if s.Rounds <= 0 {
			t.Errorf("%s: rounds %d", s.Name, s.Rounds)
		}
	}
}

// TestCompareFlagsWireAllocRegression is the gate the zero-alloc contract
// hangs on: a baseline that recorded 0 allocs/frame on the binary decode row
// flags ANY measured allocation as an infinite regression, at any threshold —
// so a committed baseline pins the hot path to zero forever.
func TestCompareFlagsWireAllocRegression(t *testing.T) {
	base := sampleReport(res("wire/binary/decode/b256", 8, 0, 0))
	cur := sampleReport(res("wire/binary/decode/b256", 8, 0.4, 10))
	regs := Compare(base, cur, 1000) // even an absurdly lax threshold trips
	var sawAllocs bool
	for _, r := range regs {
		if r.Metric == "allocs/round" {
			sawAllocs = true
			if !math.IsInf(r.Change, 1) {
				t.Errorf("alloc regression change %v, want +Inf", r.Change)
			}
		}
	}
	if !sawAllocs {
		t.Fatalf("allocs 0 -> 0.4 on the binary decode row not flagged: %v", regs)
	}
}

// TestWireBinaryDecodeMeasuresZeroAllocs runs the real (converged) benchmark
// of the hot decode row and demands an exact zero — the measured form of the
// AllocsPerRun pin, at the layer the committed baseline is produced from.
func TestWireBinaryDecodeMeasuresZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark measurement in -short mode")
	}
	scs, err := Select("^wire/binary/decode/b256$")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	got, err := Measure(scs[0])
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if got.AllocsPerRound != 0 {
		t.Fatalf("steady-state binary decode measured %v allocs/round, want exactly 0", got.AllocsPerRound)
	}
}
