package perf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleReport(results ...Result) *Report {
	r := NewReport()
	r.Results = results
	r.Sort()
	return r
}

func res(name string, ns, allocs, bs float64) Result {
	return Result{Name: name, Iterations: 10, RoundsPerOp: 100, NsPerRound: ns, AllocsPerRound: allocs, BytesPerRound: bs}
}

func TestReportRoundTrip(t *testing.T) {
	want := sampleReport(res("engine/n8", 1200, 2.5, 500), res("queue/ring", 11, 0, 0))
	var buf bytes.Buffer
	if err := want.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema {
		t.Errorf("schema %q after round-trip", got.Schema)
	}
	if len(got.Results) != 2 || got.Results[0] != want.Results[0] || got.Results[1] != want.Results[1] {
		t.Errorf("results differ after round-trip: %+v", got.Results)
	}
	if got.Machine != want.Machine {
		t.Errorf("machine fields differ: %+v vs %+v", got.Machine, want.Machine)
	}
}

func TestReadReportRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong schema":   `{"schema":"other/v9","machine":{},"results":[]}`,
		"unknown field":  `{"schema":"` + Schema + `","machine":{},"results":[],"extra":1}`,
		"unnamed result": `{"schema":"` + Schema + `","machine":{},"results":[{"name":"","rounds_per_op":1}]}`,
		"bad rounds":     `{"schema":"` + Schema + `","machine":{},"results":[{"name":"x","rounds_per_op":0}]}`,
		"not json":       `][`,
	}
	for name, in := range cases {
		if _, err := ReadReport(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := sampleReport(res("a", 100, 10, 1000), res("b", 100, 10, 1000))
	cur := sampleReport(
		res("a", 140, 10, 1000), // ns up 40%: regression at threshold 0.25
		res("b", 80, 12, 900),   // ns improved, allocs up 20%: under threshold
	)
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions %v, want exactly the ns/round one on a", len(regs), regs)
	}
	if regs[0].Scenario != "a" || regs[0].Metric != "ns/round" {
		t.Errorf("unexpected regression %+v", regs[0])
	}
	if math.Abs(regs[0].Change-0.4) > 1e-9 {
		t.Errorf("change = %v, want 0.4", regs[0].Change)
	}
	if s := regs[0].String(); !strings.Contains(s, "a") || !strings.Contains(s, "ns/round") {
		t.Errorf("regression string %q lacks scenario or metric", s)
	}
}

func TestCompareSkipsMissingAndQuick(t *testing.T) {
	quick := res("q", 1, 1, 1)
	quick.Quick = true
	base := sampleReport(res("gone", 1, 1, 1), quick)
	cur := sampleReport(res("new", 1000, 50, 9000), Result{Name: "q", Iterations: 1, RoundsPerOp: 100, Quick: true, NsPerRound: 999})
	if regs := Compare(base, cur, 0.1); len(regs) != 0 {
		t.Errorf("missing/quick scenarios produced regressions: %v", regs)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := sampleReport(res("a", 50, 0, 100))
	cur := sampleReport(res("a", 50, 3, 100))
	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 || regs[0].Metric != "allocs/round" || !math.IsInf(regs[0].Change, 1) {
		t.Errorf("zero-baseline alloc growth not flagged as infinite regression: %v", regs)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Scenarios()) {
		t.Fatalf("empty pattern: %d scenarios, err %v", len(all), err)
	}
	engines, err := Select("^engine/")
	if err != nil || len(engines) != 4 {
		t.Fatalf("engine pattern matched %d, err %v", len(engines), err)
	}
	if _, err := Select("no-such-scenario"); err == nil {
		t.Error("unmatched pattern accepted")
	}
	if _, err := Select("("); err == nil {
		t.Error("invalid regexp accepted")
	}
}

func TestScenarioNamesUniqueAndDocumented(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Scenarios() {
		if s.Name == "" || s.Doc == "" || s.Rounds <= 0 {
			t.Errorf("scenario %+v incompletely specified", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestMeasureQuickAllScenarios is the in-process equivalent of the CI smoke
// step: every scenario must set up and execute once without error, and the
// quick result must be marked as such so Compare skips it.
func TestMeasureQuickAllScenarios(t *testing.T) {
	for _, s := range Scenarios() {
		got, err := MeasureQuick(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !got.Quick || got.Name != s.Name || got.RoundsPerOp != s.Rounds || got.Iterations != 1 {
			t.Errorf("%s: quick result malformed: %+v", s.Name, got)
		}
		if got.NsPerRound < 0 || got.AllocsPerRound < 0 || got.BytesPerRound < 0 {
			t.Errorf("%s: negative metrics: %+v", s.Name, got)
		}
	}
}
