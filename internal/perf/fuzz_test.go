package perf

// Fuzz target for the benchmark-report reader: ReadReport gates CI runs on
// files that cross machine and branch boundaries, so it must reject
// arbitrary bytes with an error — never a panic — and every report it
// accepts must survive a write/read round trip and a Compare call.

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func FuzzReadReport(f *testing.F) {
	// Seed with the committed baseline report when present (tests run from
	// the package directory), plus a minimal valid report and mutations that
	// target the validation branches.
	if data, err := os.ReadFile("../../BENCH_sim.json"); err == nil {
		f.Add(data)
	}
	valid := `{"schema":"` + Schema + `","machine":{"go_version":"go1.22","goos":"linux","goarch":"amd64","gomaxprocs":4,"num_cpu":4},"results":[{"name":"engine/n8","iterations":10,"rounds_per_op":257,"ns_per_round":100,"allocs_per_round":0,"bytes_per_round":0}]}`
	f.Add([]byte(valid))
	f.Add([]byte(strings.Replace(valid, Schema, "other/v9", 1)))
	f.Add([]byte(strings.Replace(valid, `"rounds_per_op":257`, `"rounds_per_op":0`, 1)))
	f.Add([]byte(strings.Replace(valid, `"engine/n8"`, `""`, 1)))
	f.Add([]byte(`{"schema":`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := ReadReport(bytes.NewReader(data))
		if err != nil {
			return // rejected gracefully
		}
		if r.Schema != Schema {
			t.Fatalf("accepted report with schema %q", r.Schema)
		}
		for _, res := range r.Results {
			if res.Name == "" || res.RoundsPerOp <= 0 {
				t.Fatalf("accepted invalid result %+v", res)
			}
		}
		// Accepted reports must round-trip and be comparable to themselves.
		var buf bytes.Buffer
		if err := r.Write(&buf); err != nil {
			t.Fatalf("rewriting accepted report: %v", err)
		}
		rt, err := ReadReport(&buf)
		if err != nil {
			t.Fatalf("re-reading rewritten report: %v", err)
		}
		if regs := Compare(r, rt, 0.01); len(regs) != 0 {
			t.Fatalf("report regressed against itself: %v", regs)
		}
	})
}
