package perf

import (
	"strings"
	"testing"
)

// mustScenario returns the named scenario from the matrix.
func mustScenario(t *testing.T, name string) Scenario {
	t.Helper()
	for _, s := range Scenarios() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("scenario %q not in the matrix", name)
	return Scenario{}
}

// TestCkptScenariosRegistered pins the checkpoint-store rows of the matrix:
// the full/delta cut pair at both tenant counts and dirty fractions, the
// fault-in row, and the manifest codec row.
func TestCkptScenariosRegistered(t *testing.T) {
	want := []string{
		"ckpt/cut/full/n8", "ckpt/cut/full/n512",
		"ckpt/cut/delta/n8/dirty1", "ckpt/cut/delta/n8/dirty100",
		"ckpt/cut/delta/n512/dirty1", "ckpt/cut/delta/n512/dirty100",
		"ckpt/manifest/n8", "ckpt/manifest/n512",
		"ckpt/faultin/chain4",
	}
	for _, name := range want {
		s := mustScenario(t, name)
		if s.Doc == "" || s.Rounds < 1 {
			t.Errorf("%s: doc %q rounds %d", name, s.Doc, s.Rounds)
		}
	}
}

// TestCkptScenariosRun smoke-runs every checkpoint row single-shot; the op
// closures must be re-runnable (Measure repeats them to convergence).
func TestCkptScenariosRun(t *testing.T) {
	for _, s := range Scenarios() {
		if !strings.HasPrefix(s.Name, "ckpt/") {
			continue
		}
		op, err := s.Setup()
		if err != nil {
			t.Fatalf("%s: setup: %v", s.Name, err)
		}
		for i := 0; i < 3; i++ {
			if err := op(); err != nil {
				t.Fatalf("%s: op run %d: %v", s.Name, i, err)
			}
		}
	}
}

// TestDeltaCutBeatsFullCutAtLowDirty is the headline claim of the
// incremental checkpoint store, asserted: with 1% of 512 tenants dirty, a
// delta cut must be at least 5x faster than chunking the shard from
// scratch. The measured ratio is ~15-20x (the delta cut still pays the full
// manifest encode, which bounds it), so the 5x floor holds on any hardware;
// -short skips the two 1-second measurements.
func TestDeltaCutBeatsFullCutAtLowDirty(t *testing.T) {
	if testing.Short() {
		t.Skip("two benchmark measurements; skipped under -short")
	}
	full, err := Measure(mustScenario(t, "ckpt/cut/full/n512"))
	if err != nil {
		t.Fatalf("measuring full cut: %v", err)
	}
	delta, err := Measure(mustScenario(t, "ckpt/cut/delta/n512/dirty1"))
	if err != nil {
		t.Fatalf("measuring delta cut: %v", err)
	}
	if full.NsPerRound <= 0 || delta.NsPerRound <= 0 {
		t.Fatalf("non-positive figures: full=%v delta=%v", full.NsPerRound, delta.NsPerRound)
	}
	ratio := full.NsPerRound / delta.NsPerRound
	t.Logf("full cut %.1f ns/tenant, delta cut (1%% dirty) %.1f ns/tenant: %.1fx", full.NsPerRound, delta.NsPerRound, ratio)
	if ratio < 5 {
		t.Fatalf("delta cut at 1%% dirty is only %.2fx faster than a full cut, want >= 5x", ratio)
	}
}
