// Package perf is the repository's benchmark harness: a fixed matrix of
// named scenarios (engine round loop, policy decisions at several scales,
// queue operations, stream snapshot/restore, sweep fan-out), each measured
// with testing.Benchmark and normalized to per-round figures (ns/round,
// allocs/round, B/round). Results are written as a schema-versioned JSON
// report (BENCH_sim.json) so the performance trajectory of the simulator is
// tracked in-repo, and two reports can be diffed with a configurable
// regression threshold — the cmd/rrbench driver exits non-zero on a
// regression, which is the perf analogue of a failing test.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
)

// Schema identifies the report format. Readers reject other schemas, so the
// format can evolve by bumping the version suffix.
const Schema = "rrsched-bench/v1"

// Machine records the environment a report was measured on. Reports from
// different machines are comparable only qualitatively; the diff gate is
// meant for same-machine before/after runs.
type Machine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CurrentMachine captures the running environment.
func CurrentMachine() Machine {
	return Machine{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Result is one scenario's measurement, normalized per round (the scenario
// declares how many simulated rounds — or unit operations — one benchmark op
// performs).
type Result struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	RoundsPerOp int64  `json:"rounds_per_op"`
	// Quick marks a single-shot smoke measurement (rrbench -quick): the
	// numbers are real but unaveraged, so they gate nothing.
	Quick          bool    `json:"quick,omitempty"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	BytesPerRound  float64 `json:"bytes_per_round"`
}

// Report is the full benchmark report: schema version, machine, and one
// result per scenario run.
type Report struct {
	Schema  string   `json:"schema"`
	Machine Machine  `json:"machine"`
	Results []Result `json:"results"`
}

// NewReport returns an empty report for the current machine.
func NewReport() *Report {
	return &Report{Schema: Schema, Machine: CurrentMachine()}
}

// Sort orders the results by scenario name, so reports are byte-stable for
// a given set of measurements.
func (r *Report) Sort() {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
}

// Lookup returns the result with the given scenario name.
func (r *Report) Lookup(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// Write encodes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes and validates a report: the schema string must match
// exactly and every result must carry a name and a positive rounds-per-op,
// so a truncated or foreign file fails loudly instead of producing a
// meaningless diff.
func ReadReport(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: decoding report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: unsupported report schema %q (want %q)", r.Schema, Schema)
	}
	for i, res := range r.Results {
		if res.Name == "" {
			return nil, fmt.Errorf("perf: result %d has no scenario name", i)
		}
		if res.RoundsPerOp <= 0 {
			return nil, fmt.Errorf("perf: result %q has non-positive rounds_per_op %d", res.Name, res.RoundsPerOp)
		}
	}
	return &r, nil
}

// Regression is one metric of one scenario that got worse than the baseline
// by more than the threshold.
type Regression struct {
	Scenario string
	Metric   string // "ns/round", "allocs/round", or "B/round"
	Old, New float64
	// Change is the relative increase (new-old)/old; +Inf when old == 0.
	Change float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.2f -> %.2f (%+.1f%%)", r.Scenario, r.Metric, r.Old, r.New, r.Change*100)
}

// Compare diffs current against baseline and returns every metric that
// regressed by more than threshold (e.g. 0.25 = 25%). Scenarios present in
// only one report are skipped: the gate compares like with like. Quick
// (single-shot) results on either side are skipped too — they are smoke
// measurements, too noisy to gate on.
func Compare(baseline, current *Report, threshold float64) []Regression {
	var regs []Regression
	for _, cur := range current.Results {
		old, ok := baseline.Lookup(cur.Name)
		if !ok || old.Quick || cur.Quick {
			continue
		}
		metrics := []struct {
			name     string
			old, new float64
		}{
			{"ns/round", old.NsPerRound, cur.NsPerRound},
			{"allocs/round", old.AllocsPerRound, cur.AllocsPerRound},
			{"B/round", old.BytesPerRound, cur.BytesPerRound},
		}
		for _, m := range metrics {
			if reg, change := regressed(m.old, m.new, threshold); reg {
				regs = append(regs, Regression{
					Scenario: cur.Name, Metric: m.name,
					Old: m.old, New: m.new, Change: change,
				})
			}
		}
	}
	return regs
}

// regressed reports whether new exceeds old by more than the relative
// threshold. A baseline of zero (e.g. a zero-allocation scenario) regresses
// on any measurable increase beyond rounding noise.
func regressed(old, new, threshold float64) (bool, float64) {
	const eps = 1e-9
	if old <= eps {
		if new <= eps {
			return false, 0
		}
		return true, math.Inf(1)
	}
	change := (new - old) / old
	return change > threshold, change
}
