package perf

import (
	"fmt"
	"regexp"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/queue"
	"rrsched/internal/sim"
	"rrsched/internal/stream"
	"rrsched/internal/sweep"
	"rrsched/internal/workload"
)

// Scenario is one named benchmark: Setup builds the inputs once (excluded
// from measurement) and returns the op executed per benchmark iteration.
// Rounds is the number of simulated rounds — or unit operations — one op
// performs; all metrics are normalized by it.
type Scenario struct {
	Name   string
	Doc    string
	Rounds int64
	Setup  func() (func() error, error)
}

// Scenarios returns the fixed benchmark matrix, in report order: the engine
// round loop and the ΔLRU-EDF decision path at n ∈ {8, 64, 512} over
// short/long-delay color mixes, the queue primitives, the streaming
// scheduler's push loop and checkpoint round-trip, the sweep fan-out
// substrate (pinned to one worker so the figure is dispatch overhead, not
// parallel speedup), the incremental checkpoint store (full vs delta cuts at
// a dirty fraction, fault-in chain resolution, manifest codec), and the
// wire-codec matrix (JSON vs binary submit encode/decode at batch sizes
// 1/16/256, normalized per job).
func Scenarios() []Scenario {
	scs := []Scenario{
		engineScenario("engine/n8", 8, 6, 1, 4),
		engineScenario("engine/n64", 64, 48, 1, 6),
		engineScenario("engine/n512", 512, 256, 1, 6),
		obsEngineScenario("engine/n64/obs", 64, 48, 1, 6),
		policyScenario("policy/dlru-edf/n8", 8, 6, 1, 4),
		policyScenario("policy/dlru-edf/n64", 64, 48, 1, 6),
		policyScenario("policy/dlru-edf/n512", 512, 256, 1, 6),
		ringScenario(),
		bucketScenario(),
		streamPushScenario(),
		streamCheckpointScenario(),
		sweepScenario(),
	}
	scs = append(scs, ckptScenarios()...)
	scs = append(scs, wireScenarios()...)
	return scs
}

// Select returns the scenarios whose names match the regular expression
// (every scenario for an empty pattern).
func Select(pattern string) ([]Scenario, error) {
	all := Scenarios()
	if pattern == "" {
		return all, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("perf: bad scenario pattern %q: %w", pattern, err)
	}
	var out []Scenario
	for _, s := range all {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("perf: no scenario matches %q", pattern)
	}
	return out, nil
}

// benchRounds is the arrival-round count of the simulated scenarios: long
// enough to reach steady state, short enough that one op stays well under a
// millisecond at n=8.
const benchRounds = 256

// benchWorkload builds the seeded short/long-delay color mix used by the
// engine and policy scenarios: delay bounds 2^minExp..2^maxExp, moderate
// load, fixed seed so every run measures the identical instance.
func benchWorkload(colors int, minExp, maxExp uint) (*model.Sequence, error) {
	return workload.RandomBatched(workload.RandomConfig{
		Seed:        1,
		Delta:       16,
		Colors:      colors,
		Rounds:      benchRounds,
		MinDelayExp: minExp,
		MaxDelayExp: maxExp,
		Load:        0.6,
	})
}

// cyclePolicy is a near-free policy for the engine-only scenarios: it
// rotates a window of Slots() colors through the universe every 8 rounds, so
// the engine's reconfiguration and execution phases do real work while the
// decision itself costs almost nothing.
type cyclePolicy struct {
	universe []model.Color
	slots    int
	buf      []model.Color
}

func (p *cyclePolicy) Name() string { return "cycle" }
func (p *cyclePolicy) Reset(env sim.Env) {
	p.universe = env.Seq.Colors()
	p.slots = env.Slots()
	p.buf = make([]model.Color, 0, p.slots)
}
func (p *cyclePolicy) DropPhase(sim.View, map[model.Color]int) {}
func (p *cyclePolicy) ArrivalPhase(sim.View, []model.Job)      {}
func (p *cyclePolicy) Target(v sim.View) []model.Color {
	p.buf = p.buf[:0]
	if len(p.universe) == 0 {
		return p.buf
	}
	off := int(v.Round() / 8)
	for i := 0; i < p.slots && i < len(p.universe); i++ {
		p.buf = append(p.buf, p.universe[(off+i)%len(p.universe)])
	}
	return p.buf
}

// runScenario builds a simulation scenario around the given policy factory.
func runScenario(name, doc string, n, colors int, minExp, maxExp uint, mk func() sim.Policy) Scenario {
	return Scenario{
		Name: name,
		Doc:  doc,
		// One op simulates rounds [0, Horizon()]; Horizon is bounded by
		// benchRounds + the largest delay bound, reported exactly below.
		Rounds: 0, // filled by Setup precomputation in Scenarios wrapper below
		Setup: func() (func() error, error) {
			seq, err := benchWorkload(colors, minExp, maxExp)
			if err != nil {
				return nil, err
			}
			env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
			p := mk()
			return func() error {
				res, err := sim.Run(env, p)
				if err != nil {
					return err
				}
				if res.Executed+res.Dropped != seq.NumJobs() {
					return fmt.Errorf("job conservation violated: %d executed + %d dropped != %d jobs",
						res.Executed, res.Dropped, seq.NumJobs())
				}
				return nil
			}, nil
		},
	}
}

func engineScenario(name string, n, colors int, minExp, maxExp uint) Scenario {
	s := runScenario(name, "engine round loop (drop/arrival/reconfigure/execute) under a near-free rotating policy",
		n, colors, minExp, maxExp, func() sim.Policy { return &cyclePolicy{} })
	s.Rounds = scenarioHorizon(colors, minExp, maxExp)
	return s
}

// obsEngineScenario is the instrumented half of the bare-vs-instrumented
// pair: the same engine round loop as engineScenario, with a full Observer
// (scheduler metrics, span tracer, counting event sink) attached. Its figure
// against the bare twin is the all-in observability overhead; the bare
// scenarios' regression gate guards the nil-observer fast path.
func obsEngineScenario(name string, n, colors int, minExp, maxExp uint) Scenario {
	s := Scenario{
		Name:   name,
		Doc:    "engine round loop with the full observability layer attached (metrics + tracer + event sink)",
		Rounds: scenarioHorizon(colors, minExp, maxExp),
		Setup: func() (func() error, error) {
			seq, err := benchWorkload(colors, minExp, maxExp)
			if err != nil {
				return nil, err
			}
			o, err := obs.NewObserver()
			if err != nil {
				return nil, err
			}
			o.Tracer = obs.NewTracer(obs.DefaultTracerCap)
			o.Sink = &obs.CountingSink{}
			env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1, Obs: o}
			p := &cyclePolicy{}
			return func() error {
				res, err := sim.Run(env, p)
				if err != nil {
					return err
				}
				if res.Executed+res.Dropped != seq.NumJobs() {
					return fmt.Errorf("job conservation violated: %d executed + %d dropped != %d jobs",
						res.Executed, res.Dropped, seq.NumJobs())
				}
				return nil
			}, nil
		},
	}
	return s
}

func policyScenario(name string, n, colors int, minExp, maxExp uint) Scenario {
	s := runScenario(name, "full ΔLRU-EDF decision path (tracker bookkeeping, timestamp and EDF ranking) per round",
		n, colors, minExp, maxExp, func() sim.Policy { return core.NewDeltaLRUEDF() })
	s.Rounds = scenarioHorizon(colors, minExp, maxExp)
	return s
}

// scenarioHorizon returns the exact number of simulated rounds of the seeded
// scenario workload (Horizon()+1), so per-round normalization is accurate.
func scenarioHorizon(colors int, minExp, maxExp uint) int64 {
	seq, err := benchWorkload(colors, minExp, maxExp)
	if err != nil {
		// The fixed configurations are statically valid; a failure here is
		// reported by Setup when the scenario actually runs.
		return 1
	}
	return seq.Horizon() + 1
}

const queueOps = 4096

func ringScenario() Scenario {
	return Scenario{
		Name:   "queue/ring",
		Doc:    "FIFO ring buffer push/pop cycles (the per-color pending queues)",
		Rounds: queueOps,
		Setup: func() (func() error, error) {
			job := model.Job{ID: 1, Color: 3, Arrival: 0, Delay: 8}
			var r queue.Ring[model.Job]
			return func() error {
				for i := 0; i < queueOps; i++ {
					r.Push(job)
					if i%4 == 3 {
						for j := 0; j < 4; j++ {
							r.Pop()
						}
					}
				}
				if r.Len() != 0 {
					return fmt.Errorf("ring not drained: %d left", r.Len())
				}
				return nil
			}, nil
		},
	}
}

func bucketScenario() Scenario {
	return Scenario{
		Name:   "queue/bucket",
		Doc:    "monotone bucket-queue push/PopUpTo cycles (the deadline index)",
		Rounds: queueOps,
		Setup: func() (func() error, error) {
			const perRound = 16
			return func() error {
				q := queue.NewBucketQueue[int]()
				popped := 0
				for r := int64(0); r < queueOps/perRound; r++ {
					for i := 0; i < perRound; i++ {
						q.Push(r+4, i)
					}
					popped += len(q.PopUpTo(r, perRound))
				}
				for q.Len() > 0 {
					q.PopMin()
					popped++
				}
				if popped != queueOps {
					return fmt.Errorf("bucket queue lost items: popped %d of %d", popped, queueOps)
				}
				return nil
			}, nil
		},
	}
}

// streamJobs builds the per-round arrivals of the streaming scenarios: a
// rotating color with delay 8, two jobs per round.
func streamJobs(rounds int64) [][]model.Job {
	out := make([][]model.Job, rounds)
	id := int64(0)
	for r := int64(0); r < rounds; r++ {
		for j := 0; j < 2; j++ {
			out[r] = append(out[r], model.Job{ID: id, Color: model.Color(r % 8), Arrival: r, Delay: 8})
			id++
		}
	}
	return out
}

func streamPushScenario() Scenario {
	return Scenario{
		Name:   "stream/push",
		Doc:    "streaming scheduler round loop: Push per round plus final Drain",
		Rounds: benchRounds,
		Setup: func() (func() error, error) {
			arrivals := streamJobs(benchRounds)
			return func() error {
				s, err := stream.New(stream.Config{Delta: 16, Resources: 8})
				if err != nil {
					return err
				}
				for r := int64(0); r < benchRounds; r++ {
					if _, err := s.Push(r, arrivals[r]); err != nil {
						return err
					}
				}
				_, err = s.Drain()
				return err
			}, nil
		},
	}
}

func streamCheckpointScenario() Scenario {
	return Scenario{
		Name:   "stream/checkpoint",
		Doc:    "Snapshot + Restore round-trip of a warmed streaming scheduler (rounds_per_op = 1: figures are per checkpoint)",
		Rounds: 1,
		Setup: func() (func() error, error) {
			s, err := stream.New(stream.Config{Delta: 16, Resources: 8})
			if err != nil {
				return nil, err
			}
			for r, jobs := range streamJobs(benchRounds) {
				if _, err := s.Push(int64(r), jobs); err != nil {
					return nil, err
				}
			}
			return func() error {
				snap, err := s.Snapshot()
				if err != nil {
					return err
				}
				_, err = stream.Restore(snap)
				return err
			}, nil
		},
	}
}

const sweepTasks = 256

func sweepScenario() Scenario {
	return Scenario{
		Name:   "sweep/fanout",
		Doc:    "sweep.Map dispatch overhead over trivial tasks, pinned to one worker for stable figures",
		Rounds: sweepTasks,
		Setup: func() (func() error, error) {
			inputs := sweep.Seeds(sweepTasks)
			return func() error {
				out, err := sweep.Map(1, inputs, func(seed int64) (int64, error) {
					// A tiny deterministic mix so the task body is not
					// optimized away; the figure of interest is dispatch.
					x := uint64(seed)*2654435761 + 1
					for i := 0; i < 32; i++ {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
					}
					return int64(x >> 1), nil
				})
				if err != nil {
					return err
				}
				if len(out) != sweepTasks {
					return fmt.Errorf("sweep returned %d results, want %d", len(out), sweepTasks)
				}
				return nil
			}, nil
		},
	}
}
