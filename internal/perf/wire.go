package perf

import (
	"fmt"

	"rrsched/internal/serve"
)

// wireBatches is the submit-batch size axis of the wire matrix: a lone job
// (framing overhead dominates), a small burst, and a full admission batch
// (payload cost dominates).
var wireBatches = []int{1, 16, 256}

// wireScenarios returns the wire-codec matrix: encode and decode of one
// submit batch in both formats, normalized per job (Rounds = batch size).
// The binary rows use the service's own hot path — a reused destination
// request and DecodeSubmitBinaryInto — so AllocsPerRound on
// wire/binary/decode is the steady-state per-frame allocation figure the
// zero-alloc contract pins.
func wireScenarios() []Scenario {
	var scs []Scenario
	for _, n := range wireBatches {
		scs = append(scs,
			wireJSONEncodeScenario(n),
			wireJSONDecodeScenario(n),
			wireBinaryEncodeScenario(n),
			wireBinaryDecodeScenario(n),
		)
	}
	return scs
}

// wireRequest builds one valid submit batch of n jobs: dense increasing IDs,
// 16 colors round-robin, one shared delay bound (the wire contract requires
// per-color delay consistency within a batch).
func wireRequest(n int) *serve.SubmitRequest {
	jobs := make([]serve.SubmitJob, n)
	for i := range jobs {
		jobs[i] = serve.SubmitJob{ID: int64(i + 1), Color: int32(i % 16), Delay: 64}
	}
	return &serve.SubmitRequest{Schema: serve.WireSchema, Tenant: "bench-tenant", Jobs: jobs}
}

func wireJSONEncodeScenario(n int) Scenario {
	return Scenario{
		Name:   fmt.Sprintf("wire/json/encode/b%d", n),
		Doc:    fmt.Sprintf("encode a %d-job submit batch as rrserve/v1 JSON", n),
		Rounds: int64(n),
		Setup: func() (func() error, error) {
			req := wireRequest(n)
			return func() error {
				_, err := serve.EncodeSubmit(req)
				return err
			}, nil
		},
	}
}

func wireJSONDecodeScenario(n int) Scenario {
	return Scenario{
		Name:   fmt.Sprintf("wire/json/decode/b%d", n),
		Doc:    fmt.Sprintf("decode and validate a %d-job rrserve/v1 JSON submit batch", n),
		Rounds: int64(n),
		Setup: func() (func() error, error) {
			data, err := serve.EncodeSubmit(wireRequest(n))
			if err != nil {
				return nil, err
			}
			return func() error {
				_, err := serve.DecodeSubmit(data)
				return err
			}, nil
		},
	}
}

func wireBinaryEncodeScenario(n int) Scenario {
	return Scenario{
		Name:   fmt.Sprintf("wire/binary/encode/b%d", n),
		Doc:    fmt.Sprintf("encode a %d-job submit batch as an rrserve/v2 frame into a reused buffer", n),
		Rounds: int64(n),
		Setup: func() (func() error, error) {
			req := wireRequest(n)
			// Warm the buffer to its final capacity so the op measures
			// steady-state appends, as the pooled server buffers do.
			buf, err := serve.AppendSubmitBinary(nil, req)
			if err != nil {
				return nil, err
			}
			return func() error {
				var err error
				buf, err = serve.AppendSubmitBinary(buf[:0], req)
				return err
			}, nil
		},
	}
}

func wireBinaryDecodeScenario(n int) Scenario {
	return Scenario{
		Name:   fmt.Sprintf("wire/binary/decode/b%d", n),
		Doc:    fmt.Sprintf("decode and validate a %d-job rrserve/v2 frame into a reused request", n),
		Rounds: int64(n),
		Setup: func() (func() error, error) {
			data, err := serve.EncodeSubmitBinary(wireRequest(n))
			if err != nil {
				return nil, err
			}
			// One persistent destination, as the serve hot path holds one
			// pooled request per in-flight decode. The first decode warms the
			// job slice and the tenant intern table; iterations after that
			// are the zero-alloc steady state.
			dst := serve.AcquireSubmitRequest()
			if err := serve.DecodeSubmitBinaryInto(dst, data); err != nil {
				return nil, err
			}
			return func() error {
				return serve.DecodeSubmitBinaryInto(dst, data)
			}, nil
		},
	}
}
