package perf

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Measure runs one scenario to statistical convergence via testing.Benchmark
// (the op is repeated until the default 1s benchtime is filled) and returns
// its per-round figures. Setup cost is excluded: the op closure is built
// once, before timing starts.
func Measure(s Scenario) (Result, error) {
	op, err := s.Setup()
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %s setup: %w", s.Name, err)
	}
	var opErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				opErr = err
				return
			}
		}
	})
	if opErr != nil {
		return Result{}, fmt.Errorf("perf: scenario %s: %w", s.Name, opErr)
	}
	rounds := float64(s.Rounds)
	return Result{
		Name:           s.Name,
		Iterations:     br.N,
		RoundsPerOp:    s.Rounds,
		NsPerRound:     float64(br.NsPerOp()) / rounds,
		AllocsPerRound: float64(br.AllocsPerOp()) / rounds,
		BytesPerRound:  float64(br.AllocedBytesPerOp()) / rounds,
	}, nil
}

// MeasureQuick runs the scenario op exactly once and derives single-shot
// figures — a smoke measurement for CI: it proves every scenario still runs
// and produces a schema-valid report in a few hundred milliseconds total,
// but the numbers are unaveraged and marked Quick so Compare ignores them.
func MeasureQuick(s Scenario) (Result, error) {
	op, err := s.Setup()
	if err != nil {
		return Result{}, fmt.Errorf("perf: scenario %s setup: %w", s.Name, err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	//lint:ignore determinism benchmark harness: wall-clock timing is the measurement itself, never an input to scheduling decisions
	start := time.Now()
	opErr := op()
	//lint:ignore determinism benchmark harness: wall-clock timing is the measurement itself, never an input to scheduling decisions
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if opErr != nil {
		return Result{}, fmt.Errorf("perf: scenario %s: %w", s.Name, opErr)
	}
	rounds := float64(s.Rounds)
	return Result{
		Name:           s.Name,
		Iterations:     1,
		RoundsPerOp:    s.Rounds,
		Quick:          true,
		NsPerRound:     float64(elapsed.Nanoseconds()) / rounds,
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / rounds,
		BytesPerRound:  float64(after.TotalAlloc-before.TotalAlloc) / rounds,
	}, nil
}
