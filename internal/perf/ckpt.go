package perf

import (
	"encoding/json"
	"fmt"

	"rrsched/internal/ckptstore"
)

// Incremental checkpoint store scenarios: the cost of cutting a shard into
// content-addressed chunks (full cut vs delta cut at a dirty fraction),
// resolving a delta chain back into a payload (the fault-in path, minus disk
// I/O), and the manifest codec round-trip. All figures are pure codec and
// chain costs against the in-memory pool; the disk store adds only the
// atomic-write syscalls on top.

// ckptTenantFrame is a synthetic tenant checkpoint payload of realistic
// shape and size (~8 KiB encoded, the order of a warmed tenant with an
// embedded decision stream): identity, counters, and a state vector whose
// tail the dirty-mutation touches, so deltas are small but not empty.
type ckptTenantFrame struct {
	Name     string  `json:"name"`
	Epoch    int64   `json:"epoch"`
	MaxID    int64   `json:"max_id"`
	Rev      int64   `json:"rev"`
	Snapshot []int64 `json:"snapshot"`
}

// ckptPayload builds the encoded frame of one tenant at one revision.
// Deterministic: the same (tenant, rev) always encodes identically.
func ckptPayload(tenant int, rev int64) ([]byte, error) {
	f := ckptTenantFrame{
		Name:     fmt.Sprintf("bench-%05d", tenant),
		Epoch:    int64(tenant % 7),
		MaxID:    128 + rev,
		Rev:      rev,
		Snapshot: make([]int64, 768),
	}
	for i := range f.Snapshot {
		f.Snapshot[i] = int64(tenant)*1000003 + int64(i)
	}
	// A small tail mutation per revision: the delta stays a few ops.
	f.Snapshot[len(f.Snapshot)-1] += rev
	f.Snapshot[len(f.Snapshot)-2] += rev * 3
	return json.Marshal(f)
}

// ckptScenarios returns the checkpoint-store benchmark rows: cut cost at
// n ∈ {8, 512} tenants (full cut, and delta cut at 1% / 100% dirty),
// fault-in chain resolution, and the manifest codec round-trip.
func ckptScenarios() []Scenario {
	var scs []Scenario
	for _, n := range []int{8, 512} {
		scs = append(scs, ckptFullCutScenario(n))
		for _, dirtyPct := range []int{1, 100} {
			scs = append(scs, ckptDeltaCutScenario(n, dirtyPct))
		}
		scs = append(scs, ckptManifestScenario(n))
	}
	scs = append(scs, ckptFaultInScenario())
	return scs
}

// ckptFullCutScenario measures the legacy-shaped cut: every tenant frame
// encoded as a fresh full chunk into an empty pool, plus the manifest.
func ckptFullCutScenario(n int) Scenario {
	return Scenario{
		Name:   fmt.Sprintf("ckpt/cut/full/n%d", n),
		Doc:    "full checkpoint cut: every tenant frame chunked from scratch plus the manifest encode (figures per tenant)",
		Rounds: int64(n),
		Setup: func() (func() error, error) {
			payloads := make([][]byte, n)
			for i := range payloads {
				p, err := ckptPayload(i, 0)
				if err != nil {
					return nil, err
				}
				payloads[i] = p
			}
			m := &ckptstore.Manifest{Schema: ckptstore.ManifestSchema, Shards: 1, Round: 1,
				Tenants: make([]ckptstore.TenantRef, n)}
			return func() error {
				pool := ckptstore.NewMemStore(0)
				for i, p := range payloads {
					res, err := pool.Put(p, ckptstore.Ref{})
					if err != nil {
						return err
					}
					m.Tenants[i] = ckptstore.TenantRef{
						Name:  fmt.Sprintf("bench-%05d", i),
						Chunk: ckptstore.FormatChunkID(res.Ref.ID),
					}
				}
				_, err := ckptstore.EncodeManifest(m)
				return err
			}, nil
		},
	}
}

// ckptDeltaCutScenario measures the incremental cut: a warmed pool holds
// every tenant's base frame, and one cut re-chunks only the dirty fraction
// (as deltas against the base) plus the full manifest encode — the steady
// state of the serve tier's per-tick checkpoint.
func ckptDeltaCutScenario(n, dirtyPct int) Scenario {
	dirty := n * dirtyPct / 100
	if dirty < 1 {
		dirty = 1
	}
	return Scenario{
		Name:   fmt.Sprintf("ckpt/cut/delta/n%d/dirty%d", n, dirtyPct),
		Doc:    fmt.Sprintf("delta checkpoint cut over a warmed pool, %d%% of tenants dirty (figures per tenant)", dirtyPct),
		Rounds: int64(n),
		Setup: func() (func() error, error) {
			pool := ckptstore.NewMemStore(0)
			base := make([]ckptstore.Ref, n)
			m := &ckptstore.Manifest{Schema: ckptstore.ManifestSchema, Shards: 1, Round: 2,
				Tenants: make([]ckptstore.TenantRef, n)}
			for i := 0; i < n; i++ {
				p, err := ckptPayload(i, 0)
				if err != nil {
					return nil, err
				}
				res, err := pool.Put(p, ckptstore.Ref{})
				if err != nil {
					return nil, err
				}
				base[i] = res.Ref
				m.Tenants[i] = ckptstore.TenantRef{
					Name:  fmt.Sprintf("bench-%05d", i),
					Chunk: ckptstore.FormatChunkID(res.Ref.ID),
				}
			}
			mutated := make([][]byte, dirty)
			for i := range mutated {
				p, err := ckptPayload(i, 1)
				if err != nil {
					return nil, err
				}
				mutated[i] = p
			}
			return func() error {
				for i := 0; i < dirty; i++ {
					res, err := pool.Put(mutated[i], base[i])
					if err != nil {
						return err
					}
					m.Tenants[i].Chunk = ckptstore.FormatChunkID(res.Ref.ID)
					m.Tenants[i].Chain = res.Ref.Chain
				}
				_, err := ckptstore.EncodeManifest(m)
				return err
			}, nil
		},
	}
}

// ckptManifestScenario measures the manifest codec round-trip at n tenants:
// encode, then decode with full validation.
func ckptManifestScenario(n int) Scenario {
	return Scenario{
		Name:   fmt.Sprintf("ckpt/manifest/n%d", n),
		Doc:    "manifest encode + validating decode round-trip (figures per tenant)",
		Rounds: int64(n),
		Setup: func() (func() error, error) {
			pool := ckptstore.NewMemStore(0)
			m := &ckptstore.Manifest{Schema: ckptstore.ManifestSchema, Shards: 1, Round: 1,
				Tenants: make([]ckptstore.TenantRef, n)}
			for i := 0; i < n; i++ {
				p, err := ckptPayload(i, 0)
				if err != nil {
					return nil, err
				}
				res, err := pool.Put(p, ckptstore.Ref{})
				if err != nil {
					return nil, err
				}
				m.Tenants[i] = ckptstore.TenantRef{
					Name:  fmt.Sprintf("bench-%05d", i),
					Chunk: ckptstore.FormatChunkID(res.Ref.ID),
				}
			}
			return func() error {
				data, err := ckptstore.EncodeManifest(m)
				if err != nil {
					return err
				}
				_, err = ckptstore.DecodeManifest(data)
				return err
			}, nil
		},
	}
}

// ckptFaultInScenario measures paging a cold tenant back in: resolving a
// delta chain at the default depth bound back into a payload and decoding
// the frame, which is the whole fault-in minus the single chunk-file read.
func ckptFaultInScenario() Scenario {
	const chain = 4
	return Scenario{
		Name:   fmt.Sprintf("ckpt/faultin/chain%d", chain),
		Doc:    "cold-tenant fault-in: resolve a delta chain and decode the frame (rounds_per_op = 1: figures are per fault-in)",
		Rounds: 1,
		Setup: func() (func() error, error) {
			pool := ckptstore.NewMemStore(chain + 1)
			ref := ckptstore.Ref{}
			for rev := int64(0); rev <= chain; rev++ {
				p, err := ckptPayload(0, rev)
				if err != nil {
					return nil, err
				}
				res, err := pool.Put(p, ref)
				if err != nil {
					return nil, err
				}
				ref = res.Ref
			}
			if ref.Chain != chain {
				return nil, fmt.Errorf("perf: warmed chain depth %d, want %d", ref.Chain, chain)
			}
			return func() error {
				payload, _, err := pool.Resolve(ref.ID)
				if err != nil {
					return err
				}
				var f ckptTenantFrame
				return json.Unmarshal(payload, &f)
			}, nil
		},
	}
}
