// Package stream provides the incremental (truly online) interface to the
// paper's full stack. The batch API (reduce.RunVarBatch) consumes a complete
// Sequence, which is convenient for simulation; stream.Scheduler instead
// accepts requests round by round and emits reconfiguration and execution
// decisions immediately, demonstrating that VarBatch ∘ Distribute ∘ ΔLRU-EDF
// is genuinely causal: every decision depends only on the past.
//
//	s, _ := stream.New(stream.Config{Delta: 4, Resources: 8})
//	for r := int64(0); ; r++ {
//	    dec, _ := s.Push(r, jobsArrivingAt(r))
//	    apply(dec.Reconfigs, dec.Executions)
//	}
//	cost := s.Cost()
//
// Internally the scheduler performs the VarBatch delay (jobs are held until
// the next half-block boundary of their rounded delay bound), the Distribute
// subcolor split (per-batch buckets of at most h jobs), and the ΔLRU-EDF
// round bookkeeping, mirroring the batch pipeline decision for decision.
package stream

import (
	"fmt"
	"sort"

	"rrsched/internal/model"
	"rrsched/internal/queue"
	"rrsched/internal/reduce"
)

// Config parameterizes a streaming scheduler.
type Config struct {
	// Delta is the reconfiguration cost.
	Delta int64
	// Resources is the number of resources n (a positive multiple of 4 for
	// the paper's two-way replication and two-way slot split).
	Resources int
}

// Decision is what the scheduler decided in one round.
type Decision struct {
	Round int64
	// Reconfigs are the resource recolorings performed this round (outer
	// colors; already minimal — physical no-ops are elided).
	Reconfigs []model.Reconfigure
	// Executions are the jobs executed this round, by caller-provided ID.
	Executions []model.Execution
	// Dropped are the IDs of jobs dropped at the start of this round
	// (deadline reached before execution).
	Dropped []int64
}

// Scheduler is an incremental online scheduler. It is not safe for
// concurrent use; decisions are deterministic given the push sequence.
type Scheduler struct {
	cfg   Config
	round int64 // next round to process

	// Outer state.
	pendingByColor map[model.Color]*queue.Ring[model.Job] // outer pending jobs (released or not — execution eligibility checked per job)
	delays         map[model.Color]int64                  // outer delay bounds
	futureReleases map[int64][]model.Job                  // VarBatch-delayed jobs by release round
	locColor       []model.Color                          // physical colors

	// Inner (reduced) state.
	inner        *innerState
	cost         model.Cost
	executed     int
	dropped      int
	pushedJobs   int
	maxScheduled int64          // highest job ID accepted so far (-1 before the first)
	inflight     map[int64]bool // IDs of accepted jobs not yet executed or dropped
}

// New returns a streaming scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("stream: non-positive Delta %d", cfg.Delta)
	}
	if cfg.Resources <= 0 || cfg.Resources%4 != 0 {
		return nil, fmt.Errorf("stream: resources must be a positive multiple of 4, got %d", cfg.Resources)
	}
	s := &Scheduler{
		cfg:            cfg,
		pendingByColor: map[model.Color]*queue.Ring[model.Job]{},
		delays:         map[model.Color]int64{},
		futureReleases: map[int64][]model.Job{},
		locColor:       make([]model.Color, cfg.Resources),
		inner:          newInnerState(cfg),
		maxScheduled:   -1,
		inflight:       map[int64]bool{},
	}
	for i := range s.locColor {
		s.locColor[i] = model.Black
	}
	return s, nil
}

// Cost returns the cost accumulated so far.
func (s *Scheduler) Cost() model.Cost { return s.cost }

// Round returns the next round the scheduler will process. Push to any round
// at or past it fast-forwards the gap, which is what lets a scheduler restored
// from an older checkpoint catch up without an explicit replay loop.
func (s *Scheduler) Round() int64 { return s.round }

// Executed returns the number of jobs executed so far.
func (s *Scheduler) Executed() int { return s.executed }

// Dropped returns the number of jobs dropped so far.
func (s *Scheduler) Dropped() int { return s.dropped }

// Push advances the scheduler to round r (processing any skipped empty
// rounds first) and delivers the round's arrivals. Rounds must be pushed in
// nondecreasing order; jobs must carry arrival == r, a positive delay bound,
// a non-black color consistent with earlier pushes, and unique IDs.
func (s *Scheduler) Push(r int64, jobs []model.Job) (Decision, error) {
	if r < s.round {
		return Decision{}, fmt.Errorf("stream: round %d already processed (next is %d)", r, s.round)
	}
	batchSeen := make(map[int64]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Decision{}, err
		}
		if j.Arrival != r {
			return Decision{}, fmt.Errorf("stream: job %d has arrival %d, pushed in round %d", j.ID, j.Arrival, r)
		}
		if d, ok := s.delays[j.Color]; ok && d != j.Delay {
			return Decision{}, fmt.Errorf("stream: color %v has delay bound %d, job %d has %d", j.Color, d, j.ID, j.Delay)
		}
		// Reject duplicated IDs — a crashed producer re-sending in-flight work
		// would otherwise corrupt the pending queues. (A replay of an already
		// retired round is caught by the round check above.)
		if s.inflight[j.ID] || batchSeen[j.ID] {
			return Decision{}, fmt.Errorf("stream: job id %d already accepted (duplicate push)", j.ID)
		}
		batchSeen[j.ID] = true
	}
	// Process skipped empty rounds so drops and batched bookkeeping land on
	// time.
	for s.round < r {
		if _, err := s.step(s.round, nil); err != nil {
			return Decision{}, err
		}
		s.round++
	}
	dec, err := s.step(r, jobs)
	if err != nil {
		return Decision{}, err
	}
	s.round = r + 1
	return dec, nil
}

// Drain processes rounds until every accepted job has been executed or
// dropped, returning the decisions of those final rounds.
func (s *Scheduler) Drain() ([]Decision, error) {
	var out []Decision
	for s.executed+s.dropped < s.pushedJobs {
		dec, err := s.Push(s.round, nil)
		if err != nil {
			return out, err
		}
		out = append(out, dec)
	}
	return out, nil
}

// step runs one full round: outer drop phase, VarBatch release + Distribute
// split + inner round, then projection of the inner configuration and the
// outer execution phase.
func (s *Scheduler) step(r int64, arrivals []model.Job) (Decision, error) {
	dec := Decision{Round: r}

	// Outer drop phase: drop jobs whose deadline is r. Colors are visited in
	// ascending order so the decision trace is deterministic (and therefore
	// reproducible across checkpoint/restore).
	dropColors := make([]model.Color, 0, len(s.pendingByColor))
	for c := range s.pendingByColor {
		dropColors = append(dropColors, c)
	}
	sort.Slice(dropColors, func(i, j int) bool { return dropColors[i] < dropColors[j] })
	for _, c := range dropColors {
		q := s.pendingByColor[c]
		for q.Len() > 0 && q.Peek().Deadline() <= r {
			j := q.Pop()
			delete(s.inflight, j.ID)
			dec.Dropped = append(dec.Dropped, j.ID)
			s.dropped++
			s.cost.Drop++
		}
	}

	// Outer arrival phase: admit jobs, register delay bounds, and schedule
	// their VarBatch releases.
	for _, j := range arrivals {
		s.delays[j.Color] = j.Delay
		q := s.pendingByColor[j.Color]
		if q == nil {
			q = &queue.Ring[model.Job]{}
			s.pendingByColor[j.Color] = q
		}
		q.Push(j)
		s.inflight[j.ID] = true
		if j.ID > s.maxScheduled {
			s.maxScheduled = j.ID
		}
		s.pushedJobs++
		h := reduce.BatchedDelay(j.Delay)
		release := j.Arrival
		if h < j.Delay {
			release = (j.Arrival/h + 1) * h
		}
		s.futureReleases[release] = append(s.futureReleases[release], j)
	}

	// Inner round: feed this round's releases (as batched inner jobs) and
	// run the full inner simulation (ΔLRU-EDF bookkeeping, placement,
	// execution).
	released := s.futureReleases[r]
	delete(s.futureReleases, r)
	s.inner.round(r, released)

	// Projection (Section 4.1): whenever the inner schedule configures
	// (ℓ, j) on a location, the outer schedule configures ℓ there. Physical
	// no-ops — including subcolor moves (ℓ, 0) -> (ℓ, 1) — are free.
	dec.Reconfigs = s.project(r)

	// Outer execution phase: each location executes the earliest-deadline
	// pending job of its color. Like the batch pipeline's replay, execution
	// uses the job's ORIGINAL window [arrival, deadline): the VarBatch delay
	// constrains only the inner bookkeeping, and executing an already
	// arrived job early is always legal and never worse.
	for loc := 0; loc < s.cfg.Resources; loc++ {
		c := s.locColor[loc]
		if c == model.Black {
			continue
		}
		q := s.pendingByColor[c]
		if q == nil || q.Len() == 0 {
			continue
		}
		j := q.Pop()
		delete(s.inflight, j.ID)
		dec.Executions = append(dec.Executions, model.Execution{Round: r, Resource: loc, JobID: j.ID})
		s.executed++
	}
	return dec, nil
}

// releaseRound is the VarBatch release round of a job: the start of the
// half-block following its arrival (jobs with delay 1 release immediately).
func releaseRound(j model.Job) int64 {
	h := reduce.BatchedDelay(j.Delay)
	if h >= j.Delay {
		return j.Arrival
	}
	return (j.Arrival/h + 1) * h
}

// project realizes the inner location assignment as outer colors: location
// loc wants outerOf(innerColor(loc)); black inner locations leave the outer
// location unchanged (the physical resource keeps its color, as in the
// paper's model).
func (s *Scheduler) project(r int64) []model.Reconfigure {
	var recs []model.Reconfigure
	for loc := 0; loc < s.cfg.Resources; loc++ {
		ic := s.inner.locColor[loc]
		if ic == model.Black {
			continue
		}
		want := s.inner.outerOf(ic)
		if s.locColor[loc] == want {
			continue
		}
		s.locColor[loc] = want
		recs = append(recs, model.Reconfigure{Round: r, Resource: loc, To: want})
		s.cost.Reconfig += s.cfg.Delta
	}
	return recs
}
