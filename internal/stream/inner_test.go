package stream

import (
	"testing"

	"rrsched/internal/model"
)

func TestReleaseRound(t *testing.T) {
	cases := []struct {
		arrival, delay, want int64
	}{
		{0, 8, 4},   // h=4: arrival in halfBlock 0 -> release 4
		{3, 8, 4},   //
		{4, 8, 8},   // halfBlock 1 -> release 8
		{5, 1, 5},   // unit delay: immediate
		{3, 7, 4},   // h = floor-pow2(7)/2 = 2: arrival in [2,4) -> release 4
		{10, 2, 11}, // h=1: release next round
	}
	for _, c := range cases {
		j := model.Job{Arrival: c.arrival, Delay: c.delay}
		if got := releaseRound(j); got != c.want {
			t.Errorf("releaseRound(arrival=%d, D=%d) = %d, want %d", c.arrival, c.delay, got, c.want)
		}
	}
}

func TestInnerSubcolorMapping(t *testing.T) {
	st := newInnerState(Config{Delta: 2, Resources: 8})
	a := st.subcolor(5, 0, 4)
	b := st.subcolor(5, 1, 4)
	c := st.subcolor(7, 0, 2)
	if a == b || a == c || b == c {
		t.Fatalf("subcolors collide: %v %v %v", a, b, c)
	}
	// Stable on re-lookup.
	if st.subcolor(5, 0, 4) != a {
		t.Error("subcolor not stable")
	}
	if st.outerOf(a) != 5 || st.outerOf(b) != 5 || st.outerOf(c) != 7 {
		t.Error("outer mapping wrong")
	}
	if st.tracker.DelayBoundOf(a) != 4 || st.tracker.DelayBoundOf(c) != 2 {
		t.Error("tracker registration wrong")
	}
}

func TestInnerRoundBookkeeping(t *testing.T) {
	st := newInnerState(Config{Delta: 2, Resources: 8})
	// Release a batch of 5 jobs of outer color 0 with D=8 (h=4): buckets 4+1.
	released := make([]model.Job, 5)
	for i := range released {
		released[i] = model.Job{ID: int64(i), Color: 0, Arrival: 0, Delay: 8}
	}
	st.round(4, released) // releases land at round 4 in practice
	v := st.view()
	ic0, _ := st.inner[subKey{outer: 0, j: 0}]
	ic1, _ := st.inner[subKey{outer: 0, j: 1}]
	// The engine executed up to one job per configured location this round;
	// pending = 5 − executed.
	total := v.Pending(ic0) + v.Pending(ic1)
	if total > 5 || total < 0 {
		t.Fatalf("pending total = %d", total)
	}
	if v.Slots() != 4 || v.Resources() != 8 || v.Delta() != 2 {
		t.Error("view dimensions wrong")
	}
	if got := len(v.Universe()); got != 2 {
		t.Errorf("universe = %d", got)
	}
}

func TestInnerPlacePrefersSameColor(t *testing.T) {
	st := newInnerState(Config{Delta: 2, Resources: 4})
	st.place([]model.Color{0})
	locsBefore := append([]int(nil), st.colorLocs[0]...)
	st.place([]model.Color{})  // evict
	st.place([]model.Color{0}) // re-admit: must reuse the same locations
	locsAfter := st.colorLocs[0]
	match := 0
	for _, a := range locsBefore {
		for _, b := range locsAfter {
			if a == b {
				match++
			}
		}
	}
	if match != 2 {
		t.Errorf("re-admission reused %d of 2 locations", match)
	}
}
