package stream

import (
	"testing"
	"testing/quick"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/reduce"
	"rrsched/internal/workload"
)

// pushSequence feeds a whole Sequence through a streaming scheduler and
// returns the scheduler plus a reconstructed model.Schedule for auditing.
func pushSequence(t *testing.T, seq *model.Sequence, n int) (*Scheduler, *model.Schedule) {
	t.Helper()
	s, err := New(Config{Delta: seq.Delta(), Resources: n})
	if err != nil {
		t.Fatal(err)
	}
	sched := model.NewSchedule(n, 1)
	record := func(dec Decision) {
		for _, rc := range dec.Reconfigs {
			sched.AddReconfig(rc.Round, 0, rc.Resource, rc.To)
		}
		for _, e := range dec.Executions {
			sched.AddExec(e.Round, 0, e.Resource, e.JobID)
		}
	}
	// Push through the full horizon (matching the batch engine, which also
	// simulates every round up to the last deadline).
	for r := int64(0); r <= seq.Horizon(); r++ {
		dec, err := s.Push(r, seq.Request(r))
		if err != nil {
			t.Fatal(err)
		}
		record(dec)
	}
	return s, sched
}

func TestStreamMatchesBatchPipeline(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed: seed, Delta: 3, Colors: 6, Rounds: 128,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := reduce.RunVarBatch(seq, 8, core.NewDeltaLRUEDF())
		if err != nil {
			t.Fatal(err)
		}
		s, _ := pushSequence(t, seq, 8)
		if s.Cost() != batch.Cost {
			t.Errorf("seed %d: stream cost %v != batch cost %v", seed, s.Cost(), batch.Cost)
		}
	}
}

func TestStreamScheduleAudits(t *testing.T) {
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 9, Delta: 4, Colors: 8, Rounds: 256,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.6, ZipfS: 1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, sched := pushSequence(t, seq, 8)
	cost, err := model.Audit(seq, sched)
	if err != nil {
		t.Fatalf("streamed schedule illegal: %v", err)
	}
	if cost != s.Cost() {
		t.Errorf("audited %v != scheduler meter %v", cost, s.Cost())
	}
	if s.Executed()+s.Dropped() != seq.NumJobs() {
		t.Errorf("executed %d + dropped %d != %d jobs", s.Executed(), s.Dropped(), seq.NumJobs())
	}
}

// TestStreamMatchesBatchProperty: exact cost agreement on random instances.
func TestStreamMatchesBatchProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed: int64(seedRaw), Delta: 2, Colors: 4, Rounds: 64,
			MinDelayExp: 1, MaxDelayExp: 3, Load: 0.7,
		})
		if err != nil || seq.NumJobs() == 0 {
			return true
		}
		batch, err := reduce.RunVarBatch(seq, 8, core.NewDeltaLRUEDF())
		if err != nil {
			t.Log(err)
			return false
		}
		s, _ := pushSequence(t, seq, 8)
		if s.Cost() != batch.Cost {
			t.Logf("seed %d: stream %v != batch %v", seedRaw, s.Cost(), batch.Cost)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStreamSkippedRounds(t *testing.T) {
	// Pushing round 0 then round 50 directly must process the gap.
	s, err := New(Config{Delta: 2, Resources: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(0, []model.Job{{ID: 0, Color: 0, Arrival: 0, Delay: 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(50, []model.Job{{ID: 1, Color: 0, Arrival: 50, Delay: 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if s.Executed()+s.Dropped() != 2 {
		t.Errorf("accounted %d of 2 jobs", s.Executed()+s.Dropped())
	}
}

func TestStreamRejections(t *testing.T) {
	if _, err := New(Config{Delta: 0, Resources: 4}); err == nil {
		t.Error("Delta 0 accepted")
	}
	if _, err := New(Config{Delta: 1, Resources: 6}); err == nil {
		t.Error("n=6 (not multiple of 4) accepted")
	}
	s, err := New(Config{Delta: 2, Resources: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(3, nil); err == nil {
		t.Error("past round accepted")
	}
	if _, err := s.Push(6, []model.Job{{ID: 9, Color: 0, Arrival: 2, Delay: 2}}); err == nil {
		t.Error("mismatched arrival accepted")
	}
	if _, err := s.Push(7, []model.Job{{ID: 10, Color: 0, Arrival: 7, Delay: 0}}); err == nil {
		t.Error("invalid job accepted")
	}
	if _, err := s.Push(8, []model.Job{{ID: 11, Color: 0, Arrival: 8, Delay: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(9, []model.Job{{ID: 12, Color: 0, Arrival: 9, Delay: 4}}); err == nil {
		t.Error("conflicting delay bound accepted")
	}
}

func TestStreamDecisionsAreCausal(t *testing.T) {
	// The decisions for rounds < r must be identical whether or not jobs
	// arrive at round r: push the same prefix into two schedulers and
	// diverge at the end.
	prefix := func() (*Scheduler, []Decision) {
		s, err := New(Config{Delta: 2, Resources: 8})
		if err != nil {
			t.Fatal(err)
		}
		var decs []Decision
		id := int64(0)
		for r := int64(0); r < 32; r++ {
			var jobs []model.Job
			if r%4 == 0 {
				jobs = append(jobs, model.Job{ID: id, Color: model.Color(r % 3), Arrival: r, Delay: 4})
				id++
			}
			dec, err := s.Push(r, jobs)
			if err != nil {
				t.Fatal(err)
			}
			decs = append(decs, dec)
		}
		return s, decs
	}
	_, a := prefix()
	sB, b := prefix()
	// Diverge: feed a burst into B only.
	burst := make([]model.Job, 10)
	for i := range burst {
		burst[i] = model.Job{ID: 1000 + int64(i), Color: 5, Arrival: 32, Delay: 8}
	}
	if _, err := sB.Push(32, burst); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Reconfigs) != len(b[i].Reconfigs) || len(a[i].Executions) != len(b[i].Executions) {
			t.Fatalf("round %d decisions differ despite identical prefixes", i)
		}
	}
}
