package stream

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rrsched/internal/model"
	"rrsched/internal/workload"
)

func decisionBytes(t *testing.T, decs []Decision) []byte {
	t.Helper()
	b, err := json.Marshal(decs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSnapshotRestoreDecisionIdentical is the kill-and-restore test: a run
// interrupted by Snapshot/Restore at an arbitrary round must produce a
// decision trace byte-identical to the uninterrupted run on the same pushes.
func TestSnapshotRestoreDecisionIdentical(t *testing.T) {
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 7, Delta: 4, Colors: 8, Rounds: 200,
		MinDelayExp: 1, MaxDelayExp: 4, Load: 0.6, ZipfS: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	horizon := seq.Horizon()

	for _, killAt := range []int64{0, 1, 17, 63, 100, horizon - 1} {
		// Uninterrupted run.
		ref, err := New(Config{Delta: seq.Delta(), Resources: 8})
		if err != nil {
			t.Fatal(err)
		}
		var refDecs []Decision
		for r := int64(0); r <= horizon; r++ {
			dec, err := ref.Push(r, seq.Request(r))
			if err != nil {
				t.Fatal(err)
			}
			refDecs = append(refDecs, dec)
		}

		// Interrupted run: push to killAt, snapshot, discard the scheduler
		// ("kill"), restore, and continue.
		a, err := New(Config{Delta: seq.Delta(), Resources: 8})
		if err != nil {
			t.Fatal(err)
		}
		var decs []Decision
		for r := int64(0); r <= killAt; r++ {
			dec, err := a.Push(r, seq.Request(r))
			if err != nil {
				t.Fatal(err)
			}
			decs = append(decs, dec)
		}
		snap, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		a = nil
		b, err := Restore(snap)
		if err != nil {
			t.Fatalf("kill at %d: restore: %v", killAt, err)
		}
		for r := killAt + 1; r <= horizon; r++ {
			dec, err := b.Push(r, seq.Request(r))
			if err != nil {
				t.Fatalf("kill at %d: push round %d: %v", killAt, r, err)
			}
			decs = append(decs, dec)
		}

		if !bytes.Equal(decisionBytes(t, refDecs), decisionBytes(t, decs)) {
			t.Fatalf("kill at %d: resumed decision trace differs from uninterrupted run", killAt)
		}
		if ref.Cost() != b.Cost() {
			t.Fatalf("kill at %d: resumed cost %v != uninterrupted %v", killAt, ref.Cost(), b.Cost())
		}
		if ref.Executed() != b.Executed() || ref.Dropped() != b.Dropped() {
			t.Fatalf("kill at %d: resumed counters (%d,%d) != uninterrupted (%d,%d)",
				killAt, b.Executed(), b.Dropped(), ref.Executed(), ref.Dropped())
		}

		// The final states must also snapshot identically.
		refSnap, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		endSnap, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refSnap, endSnap) {
			t.Fatalf("kill at %d: final snapshots differ", killAt)
		}
	}
}

// TestRestoreAtDeadlineBoundaryDropsIdentical pins the deadline-drop index
// across a checkpoint: an overloaded color whose jobs must expire is pushed,
// the scheduler is killed and restored right around the deadline rounds, and
// the resumed run must drop exactly the same jobs as the uninterrupted one —
// i.e. the restored engine rebuilds its deadline buckets, it does not lose
// or duplicate pending expirations.
func TestRestoreAtDeadlineBoundaryDropsIdentical(t *testing.T) {
	const (
		delta   = 4
		n       = 8
		rounds  = 48
		perPush = 40 // far beyond n per delay window: guaranteed drops
	)
	pushes := make([][]model.Job, rounds)
	id := int64(0)
	for r := int64(0); r < rounds; r += 8 {
		for i := 0; i < perPush; i++ {
			pushes[r] = append(pushes[r], model.Job{ID: id, Color: 1, Arrival: r, Delay: 8})
			id++
		}
	}

	ref, err := New(Config{Delta: delta, Resources: n})
	if err != nil {
		t.Fatal(err)
	}
	var refDecs []Decision
	for r := int64(0); r < rounds; r++ {
		dec, err := ref.Push(r, pushes[r])
		if err != nil {
			t.Fatal(err)
		}
		refDecs = append(refDecs, dec)
	}
	if _, err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
	if ref.Dropped() == 0 {
		t.Fatal("overload scenario dropped nothing; the test exercises no deadlines")
	}

	// Kill/restore straddling the first deadline rounds (jobs of the round-0
	// burst expire at round 8) and a later steady-state boundary.
	for _, killAt := range []int64{6, 7, 8, 9, 23} {
		s, err := New(Config{Delta: delta, Resources: n})
		if err != nil {
			t.Fatal(err)
		}
		var decs []Decision
		for r := int64(0); r <= killAt; r++ {
			dec, err := s.Push(r, pushes[r])
			if err != nil {
				t.Fatal(err)
			}
			decs = append(decs, dec)
		}
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(snap)
		if err != nil {
			t.Fatalf("kill at %d: %v", killAt, err)
		}
		for r := killAt + 1; r < rounds; r++ {
			dec, err := restored.Push(r, pushes[r])
			if err != nil {
				t.Fatalf("kill at %d: push round %d: %v", killAt, r, err)
			}
			decs = append(decs, dec)
		}
		if _, err := restored.Drain(); err != nil {
			t.Fatal(err)
		}
		if restored.Dropped() != ref.Dropped() || restored.Executed() != ref.Executed() {
			t.Errorf("kill at %d: resumed (exec %d, drop %d) != uninterrupted (exec %d, drop %d)",
				killAt, restored.Executed(), restored.Dropped(), ref.Executed(), ref.Dropped())
		}
		if !bytes.Equal(decisionBytes(t, refDecs), decisionBytes(t, decs)) {
			t.Errorf("kill at %d: decision trace differs across the deadline boundary", killAt)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 3, Delta: 3, Colors: 5, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := pushSequence(t, seq, 8)
	a, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two snapshots of the same scheduler differ")
	}
}

func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	s, err := New(Config{Delta: 2, Resources: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(0, []model.Job{{ID: 0, Color: 0, Arrival: 0, Delay: 2}}); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(snap); err != nil {
		t.Fatalf("round-trip of a valid snapshot failed: %v", err)
	}

	corrupt := func(mutate func(map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(snap, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"truncated", snap[:len(snap)/2], "decoding checkpoint"},
		{"not json", []byte("ceci n'est pas un checkpoint"), "decoding checkpoint"},
		{"bad version", corrupt(func(m map[string]any) { m["version"] = 99.0 }), "version"},
		{"bad delta", corrupt(func(m map[string]any) { m["delta"] = -1.0 }), "Delta"},
		{"bad resources", corrupt(func(m map[string]any) { m["resources"] = 3.0 }), "multiple of 4"},
		{"negative round", corrupt(func(m map[string]any) { m["round"] = -5.0 }), "negative round"},
		{"accounting", corrupt(func(m map[string]any) { m["executed"] = 100.0 }), "accounting"},
		{"loc mismatch", corrupt(func(m map[string]any) { m["loc_color"] = []any{} }), "locations"},
		{"no tracker", corrupt(func(m map[string]any) {
			inner := m["inner"].(map[string]any)
			inner["tracker"] = nil
		}), "tracker"},
	}
	for _, c := range cases {
		if _, err := Restore(c.data); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Restore = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestPushRejectsDuplicateAndLateJobs(t *testing.T) {
	s, err := New(Config{Delta: 2, Resources: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(0, []model.Job{
		{ID: 0, Color: 0, Arrival: 0, Delay: 8},
		{ID: 0, Color: 0, Arrival: 0, Delay: 8},
	}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("same-batch duplicate accepted: %v", err)
	}
	if _, err := s.Push(0, []model.Job{{ID: 0, Color: 0, Arrival: 0, Delay: 8}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(1, []model.Job{{ID: 0, Color: 0, Arrival: 1, Delay: 8}}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("in-flight duplicate accepted: %v", err)
	}
	if _, err := s.Push(0, nil); err == nil || !strings.Contains(err.Error(), "already processed") {
		t.Errorf("late push accepted: %v", err)
	}
}
