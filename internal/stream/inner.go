package stream

import (
	"sort"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/queue"
	"rrsched/internal/reduce"
)

// innerState simulates the reduced instance (VarBatch-delayed, Distribute-
// split) round by round: it owns the inner pending queues, the inner
// location assignment (two locations per cached inner color), and the
// ΔLRU-EDF tracker. The outer scheduler projects the inner location colors
// back to outer colors each round.
type innerState struct {
	delta int64
	n     int

	tracker *core.Tracker

	// Subcolor mapping, built lazily as batches arrive.
	toOuter []model.Color
	inner   map[subKey]model.Color

	pending   map[model.Color]*queue.Ring[int64] // inner color -> deadlines
	locColor  []model.Color
	colorLocs map[model.Color][]int
	freeLocs  []int

	now int64
}

type subKey struct {
	outer model.Color
	j     int64
}

func newInnerState(cfg Config) *innerState {
	st := &innerState{
		delta:     cfg.Delta,
		n:         cfg.Resources,
		tracker:   core.NewDynamicTracker(cfg.Delta),
		inner:     map[subKey]model.Color{},
		pending:   map[model.Color]*queue.Ring[int64]{},
		colorLocs: map[model.Color][]int{},
	}
	st.locColor = make([]model.Color, cfg.Resources)
	st.freeLocs = make([]int, cfg.Resources)
	for i := range st.locColor {
		st.locColor[i] = model.Black
		st.freeLocs[i] = cfg.Resources - 1 - i
	}
	return st
}

// outerOf maps an inner color back to its outer color.
func (st *innerState) outerOf(ic model.Color) model.Color {
	return st.toOuter[ic]
}

// subcolor returns (creating if needed) the inner color of (outer, bucket),
// registering it with the tracker under the halved delay bound h.
func (st *innerState) subcolor(outer model.Color, j, h int64) model.Color {
	k := subKey{outer: outer, j: j}
	if ic, ok := st.inner[k]; ok {
		return ic
	}
	ic := model.Color(len(st.toOuter))
	st.inner[k] = ic
	st.toOuter = append(st.toOuter, outer)
	st.tracker.Register(ic, h)
	return ic
}

// round advances the inner simulation one round: drop, arrival (the released
// outer jobs, split into rate-limited subcolors), reconfiguration (ΔLRU-EDF
// target + placement), and execution. It returns nothing; the caller reads
// locColor for the projection.
func (st *innerState) round(r int64, released []model.Job) []model.Color {
	st.now = r

	// Drop phase.
	dropped := map[model.Color]int{}
	for ic, q := range st.pending {
		for q.Len() > 0 && q.Peek() <= r {
			q.Pop()
			dropped[ic]++
		}
	}
	st.tracker.DropPhase(st.view(), dropped)

	// Arrival phase: split the release batch into subcolors with at most h
	// jobs each (h is the inner delay bound of the outer color). Jobs are
	// processed in release order and subcolor ids are created on first
	// appearance — exactly the order reduce.DistributeSequence uses, so the
	// streaming inner instance is identical to the batch pipeline's,
	// including the "consistent order of colors" tie-breaks.
	var arrivals []model.Job
	rank := map[model.Color]int64{}
	for _, j := range released {
		h := reduce.BatchedDelay(j.Delay)
		ic := st.subcolor(j.Color, rank[j.Color]/h, h)
		rank[j.Color]++
		q := st.pending[ic]
		if q == nil {
			q = &queue.Ring[int64]{}
			st.pending[ic] = q
		}
		q.Push(r + h)
		arrivals = append(arrivals, model.Job{Color: ic, Arrival: r, Delay: h})
	}
	st.tracker.ArrivalPhase(st.view(), arrivals)

	// Reconfiguration phase: ΔLRU-EDF target, then minimal placement.
	target := core.ComputeTarget(st.tracker, st.view(), st.n/4)
	st.place(target)

	// Execution phase: each inner location executes one pending job of its
	// color.
	for loc := 0; loc < st.n; loc++ {
		c := st.locColor[loc]
		if c == model.Black {
			continue
		}
		q := st.pending[c]
		if q != nil && q.Len() > 0 {
			q.Pop()
		}
	}
	return target
}

// place realizes the target inner color set with two locations per color,
// mirroring the batch engine's placement (evict in color order, reuse
// still-colored free locations).
func (st *innerState) place(target []model.Color) {
	want := map[model.Color]bool{}
	for _, c := range target {
		want[c] = true
	}
	var evicted []model.Color
	for c := range st.colorLocs {
		if !want[c] {
			evicted = append(evicted, c)
		}
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })
	for _, c := range evicted {
		st.freeLocs = append(st.freeLocs, st.colorLocs[c]...)
		delete(st.colorLocs, c)
	}
	for _, c := range target {
		if _, ok := st.colorLocs[c]; ok {
			continue
		}
		locs := make([]int, 0, 2)
		for i := 0; i < 2; i++ {
			loc := st.takeFree(c)
			st.locColor[loc] = c
			locs = append(locs, loc)
		}
		st.colorLocs[c] = locs
	}
}

func (st *innerState) takeFree(c model.Color) int {
	n := len(st.freeLocs)
	for i := n - 1; i >= 0; i-- {
		if st.locColor[st.freeLocs[i]] == c {
			loc := st.freeLocs[i]
			st.freeLocs[i] = st.freeLocs[n-1]
			st.freeLocs = st.freeLocs[:n-1]
			return loc
		}
	}
	loc := st.freeLocs[n-1]
	st.freeLocs = st.freeLocs[:n-1]
	return loc
}

// view adapts innerState to sim.View for the tracker and target computation.
func (st *innerState) view() *innerView { return &innerView{st: st} }

type innerView struct{ st *innerState }

func (v *innerView) Round() int64   { return v.st.now }
func (v *innerView) Mini() int      { return 0 }
func (v *innerView) Resources() int { return v.st.n }
func (v *innerView) Slots() int     { return v.st.n / 2 }
func (v *innerView) Delta() int64   { return v.st.delta }
func (v *innerView) Pending(c model.Color) int {
	q := v.st.pending[c]
	if q == nil {
		return 0
	}
	return q.Len()
}
func (v *innerView) Cached(c model.Color) bool {
	_, ok := v.st.colorLocs[c]
	return ok
}
func (v *innerView) CachedColors() []model.Color {
	out := make([]model.Color, 0, len(v.st.colorLocs))
	for c := range v.st.colorLocs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
func (v *innerView) DelayBound(c model.Color) int64 {
	if int(c) < len(v.st.toOuter) {
		// The tracker owns the registered delay; reconstruct from the
		// subcolor's outer color is unnecessary — consult the tracker.
		return v.st.tracker.DelayBoundOf(c)
	}
	return 0
}
func (v *innerView) Universe() []model.Color {
	out := make([]model.Color, len(v.st.toOuter))
	for i := range out {
		out[i] = model.Color(i)
	}
	return out
}
