package stream

import (
	"encoding/json"
	"fmt"
	"sort"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/queue"
)

// checkpoint is the JSON image of a Scheduler: every piece of outer and inner
// state, with map contents flattened into sorted slices so equal schedulers
// produce byte-identical snapshots.
type checkpoint struct {
	Version   int   `json:"version"`
	Delta     int64 `json:"delta"`
	Resources int   `json:"resources"`
	Round     int64 `json:"round"`

	Cost         model.Cost `json:"cost"`
	Executed     int        `json:"executed"`
	Dropped      int        `json:"dropped"`
	PushedJobs   int        `json:"pushed_jobs"`
	MaxScheduled int64      `json:"max_scheduled"`

	Delays   []colorDelayCP   `json:"delays,omitempty"`
	Pending  []outerPendingCP `json:"pending,omitempty"`
	Releases []releaseCP      `json:"releases,omitempty"`
	LocColor []model.Color    `json:"loc_color"`

	Inner innerCP `json:"inner"`
}

type colorDelayCP struct {
	Color model.Color `json:"color"`
	Delay int64       `json:"delay"`
}

type jobCP struct {
	ID      int64       `json:"id"`
	Color   model.Color `json:"color"`
	Arrival int64       `json:"arrival"`
	Delay   int64       `json:"delay"`
}

type outerPendingCP struct {
	Color model.Color `json:"color"`
	Jobs  []jobCP     `json:"jobs"`
}

type releaseCP struct {
	Round int64   `json:"round"`
	Jobs  []jobCP `json:"jobs"`
}

type innerCP struct {
	Now       int64                   `json:"now"`
	ToOuter   []model.Color           `json:"to_outer,omitempty"`
	Subcolors []subcolorCP            `json:"subcolors,omitempty"`
	Pending   []innerPendingCP        `json:"pending,omitempty"`
	LocColor  []model.Color           `json:"loc_color"`
	ColorLocs []colorLocsCP           `json:"color_locs,omitempty"`
	FreeLocs  []int                   `json:"free_locs,omitempty"`
	Tracker   *core.TrackerCheckpoint `json:"tracker"`
}

type subcolorCP struct {
	Outer  model.Color `json:"outer"`
	Bucket int64       `json:"bucket"`
	Inner  model.Color `json:"inner"`
}

type innerPendingCP struct {
	Color     model.Color `json:"color"`
	Deadlines []int64     `json:"deadlines"`
}

type colorLocsCP struct {
	Color model.Color `json:"color"`
	Locs  []int       `json:"locs"`
}

const checkpointVersion = 1

func toJobCPs(jobs []model.Job) []jobCP {
	out := make([]jobCP, len(jobs))
	for i, j := range jobs {
		out[i] = jobCP{ID: j.ID, Color: j.Color, Arrival: j.Arrival, Delay: j.Delay}
	}
	return out
}

func fromJobCPs(jobs []jobCP) []model.Job {
	out := make([]model.Job, len(jobs))
	for i, j := range jobs {
		out[i] = model.Job{ID: j.ID, Color: j.Color, Arrival: j.Arrival, Delay: j.Delay}
	}
	return out
}

// Snapshot serializes the scheduler's complete state as JSON. The snapshot is
// deterministic (equal schedulers yield identical bytes) and self-contained:
// Restore on it resumes the run with decisions identical to an uninterrupted
// scheduler fed the same pushes.
func (s *Scheduler) Snapshot() ([]byte, error) {
	tcp, err := s.inner.tracker.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("stream: snapshot: %w", err)
	}
	cp := checkpoint{
		Version:      checkpointVersion,
		Delta:        s.cfg.Delta,
		Resources:    s.cfg.Resources,
		Round:        s.round,
		Cost:         s.cost,
		Executed:     s.executed,
		Dropped:      s.dropped,
		PushedJobs:   s.pushedJobs,
		MaxScheduled: s.maxScheduled,
		LocColor:     s.locColor,
	}
	for c, d := range s.delays {
		cp.Delays = append(cp.Delays, colorDelayCP{Color: c, Delay: d})
	}
	sort.Slice(cp.Delays, func(i, j int) bool { return cp.Delays[i].Color < cp.Delays[j].Color })
	for c, q := range s.pendingByColor {
		if q.Len() == 0 {
			continue
		}
		cp.Pending = append(cp.Pending, outerPendingCP{Color: c, Jobs: toJobCPs(q.Items())})
	}
	sort.Slice(cp.Pending, func(i, j int) bool { return cp.Pending[i].Color < cp.Pending[j].Color })
	for r, jobs := range s.futureReleases {
		cp.Releases = append(cp.Releases, releaseCP{Round: r, Jobs: toJobCPs(jobs)})
	}
	sort.Slice(cp.Releases, func(i, j int) bool { return cp.Releases[i].Round < cp.Releases[j].Round })

	st := s.inner
	cp.Inner = innerCP{
		Now:      st.now,
		ToOuter:  st.toOuter,
		LocColor: st.locColor,
		FreeLocs: st.freeLocs,
		Tracker:  tcp,
	}
	for k, ic := range st.inner {
		cp.Inner.Subcolors = append(cp.Inner.Subcolors, subcolorCP{Outer: k.outer, Bucket: k.j, Inner: ic})
	}
	sort.Slice(cp.Inner.Subcolors, func(i, j int) bool { return cp.Inner.Subcolors[i].Inner < cp.Inner.Subcolors[j].Inner })
	for c, q := range st.pending {
		if q.Len() == 0 {
			continue
		}
		cp.Inner.Pending = append(cp.Inner.Pending, innerPendingCP{Color: c, Deadlines: q.Items()})
	}
	sort.Slice(cp.Inner.Pending, func(i, j int) bool { return cp.Inner.Pending[i].Color < cp.Inner.Pending[j].Color })
	for c, locs := range st.colorLocs {
		cp.Inner.ColorLocs = append(cp.Inner.ColorLocs, colorLocsCP{Color: c, Locs: locs})
	}
	sort.Slice(cp.Inner.ColorLocs, func(i, j int) bool { return cp.Inner.ColorLocs[i].Color < cp.Inner.ColorLocs[j].Color })

	return json.MarshalIndent(cp, "", "  ")
}

// Restore rebuilds a scheduler from a Snapshot. The checkpoint is validated
// field by field — a corrupted or truncated snapshot is rejected with an
// error rather than resumed into an inconsistent run.
func Restore(data []byte) (*Scheduler, error) {
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("stream: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	s, err := New(Config{Delta: cp.Delta, Resources: cp.Resources})
	if err != nil {
		return nil, fmt.Errorf("stream: restoring checkpoint: %w", err)
	}
	if cp.Round < 0 {
		return nil, fmt.Errorf("stream: checkpoint has negative round %d", cp.Round)
	}
	if cp.Executed < 0 || cp.Dropped < 0 || cp.PushedJobs < 0 || cp.Executed+cp.Dropped > cp.PushedJobs {
		return nil, fmt.Errorf("stream: checkpoint job accounting is inconsistent (%d executed, %d dropped, %d pushed)",
			cp.Executed, cp.Dropped, cp.PushedJobs)
	}
	if len(cp.LocColor) != cp.Resources {
		return nil, fmt.Errorf("stream: checkpoint has %d outer locations, want %d", len(cp.LocColor), cp.Resources)
	}
	if len(cp.Inner.LocColor) != cp.Resources {
		return nil, fmt.Errorf("stream: checkpoint has %d inner locations, want %d", len(cp.Inner.LocColor), cp.Resources)
	}
	s.round = cp.Round
	s.cost = cp.Cost
	s.executed = cp.Executed
	s.dropped = cp.Dropped
	s.pushedJobs = cp.PushedJobs
	s.maxScheduled = cp.MaxScheduled
	copy(s.locColor, cp.LocColor)
	for _, d := range cp.Delays {
		if d.Color < 0 || d.Delay <= 0 {
			return nil, fmt.Errorf("stream: checkpoint has invalid delay bound %d for color %v", d.Delay, d.Color)
		}
		s.delays[d.Color] = d.Delay
	}
	for _, p := range cp.Pending {
		if _, ok := s.pendingByColor[p.Color]; ok {
			return nil, fmt.Errorf("stream: checkpoint repeats pending color %v", p.Color)
		}
		q := &queue.Ring[model.Job]{}
		for _, j := range fromJobCPs(p.Jobs) {
			if err := j.Validate(); err != nil {
				return nil, fmt.Errorf("stream: checkpoint pending job: %w", err)
			}
			if s.inflight[j.ID] {
				return nil, fmt.Errorf("stream: checkpoint repeats pending job id %d", j.ID)
			}
			s.inflight[j.ID] = true
			q.Push(j)
		}
		s.pendingByColor[p.Color] = q
	}
	for _, r := range cp.Releases {
		if _, ok := s.futureReleases[r.Round]; ok {
			return nil, fmt.Errorf("stream: checkpoint repeats release round %d", r.Round)
		}
		s.futureReleases[r.Round] = fromJobCPs(r.Jobs)
	}

	st := s.inner
	st.now = cp.Inner.Now
	st.toOuter = append([]model.Color(nil), cp.Inner.ToOuter...)
	copy(st.locColor, cp.Inner.LocColor)
	st.freeLocs = append(st.freeLocs[:0], cp.Inner.FreeLocs...)
	for _, sc := range cp.Inner.Subcolors {
		if sc.Inner < 0 || int(sc.Inner) >= len(st.toOuter) {
			return nil, fmt.Errorf("stream: checkpoint subcolor %v out of range", sc.Inner)
		}
		if st.toOuter[sc.Inner] != sc.Outer {
			return nil, fmt.Errorf("stream: checkpoint subcolor %v maps to outer %v, table says %v",
				sc.Inner, sc.Outer, st.toOuter[sc.Inner])
		}
		k := subKey{outer: sc.Outer, j: sc.Bucket}
		if _, ok := st.inner[k]; ok {
			return nil, fmt.Errorf("stream: checkpoint repeats subcolor key (%v,%d)", sc.Outer, sc.Bucket)
		}
		st.inner[k] = sc.Inner
	}
	if len(st.inner) != len(st.toOuter) {
		return nil, fmt.Errorf("stream: checkpoint has %d subcolor keys for %d inner colors", len(st.inner), len(st.toOuter))
	}
	for _, p := range cp.Inner.Pending {
		if _, ok := st.pending[p.Color]; ok {
			return nil, fmt.Errorf("stream: checkpoint repeats inner pending color %v", p.Color)
		}
		q := &queue.Ring[int64]{}
		for _, d := range p.Deadlines {
			q.Push(d)
		}
		st.pending[p.Color] = q
	}
	seenLoc := make([]bool, cp.Resources)
	for _, cl := range cp.Inner.ColorLocs {
		if _, ok := st.colorLocs[cl.Color]; ok {
			return nil, fmt.Errorf("stream: checkpoint repeats cached color %v", cl.Color)
		}
		for _, loc := range cl.Locs {
			if loc < 0 || loc >= cp.Resources {
				return nil, fmt.Errorf("stream: checkpoint places color %v on location %d of %d", cl.Color, loc, cp.Resources)
			}
			if seenLoc[loc] {
				return nil, fmt.Errorf("stream: checkpoint places two colors on location %d", loc)
			}
			seenLoc[loc] = true
		}
		st.colorLocs[cl.Color] = append([]int(nil), cl.Locs...)
	}
	for _, loc := range st.freeLocs {
		if loc < 0 || loc >= cp.Resources {
			return nil, fmt.Errorf("stream: checkpoint frees location %d of %d", loc, cp.Resources)
		}
		if seenLoc[loc] {
			return nil, fmt.Errorf("stream: checkpoint lists location %d as both cached and free", loc)
		}
		seenLoc[loc] = true
	}
	for loc, used := range seenLoc {
		if !used {
			return nil, fmt.Errorf("stream: checkpoint leaves location %d neither cached nor free", loc)
		}
	}
	tracker, err := core.RestoreTracker(cp.Inner.Tracker)
	if err != nil {
		return nil, fmt.Errorf("stream: restoring checkpoint: %w", err)
	}
	st.tracker = tracker
	for _, sc := range cp.Inner.Subcolors {
		if tracker.DelayBoundOf(sc.Inner) == 0 {
			return nil, fmt.Errorf("stream: checkpoint subcolor %v missing from tracker", sc.Inner)
		}
	}
	return s, nil
}
