package reduce

import (
	"fmt"
	"sort"

	"rrsched/internal/model"
)

// Punctuality classifies one execution of a job with (power-of-two) delay
// bound p relative to the half-block grid of p: the job arrives in
// halfBlock(p, i) and is executed early (same half-block), punctually (the
// next), or late (the one after), per Section 5.2.
type Punctuality int

// Punctuality values.
const (
	Early Punctuality = iota
	Punctual
	Late
)

// ClassifyExecution returns the punctuality of executing job j in round r.
// Jobs with delay bound 1 are always Punctual by convention (they are
// "already batched" in the paper's treatment and pass through VarBatch
// untouched).
func ClassifyExecution(j model.Job, r int64) (Punctuality, error) {
	if r < j.Arrival || r >= j.Deadline() {
		return 0, fmt.Errorf("reduce: round %d outside job %d's window [%d,%d)", r, j.ID, j.Arrival, j.Deadline())
	}
	if j.Delay == 1 {
		return Punctual, nil
	}
	if !model.IsPowerOfTwo(j.Delay) {
		return 0, fmt.Errorf("reduce: punctuality is defined for power-of-two delay bounds, job %d has %d", j.ID, j.Delay)
	}
	h := j.Delay / 2
	switch HalfBlock(j.Delay, r) - HalfBlock(j.Delay, j.Arrival) {
	case 0:
		return Early, nil
	case 1:
		return Punctual, nil
	case 2:
		return Late, nil
	default:
		return 0, fmt.Errorf("reduce: job %d executed %d half-blocks (h=%d) after arrival", j.ID, HalfBlock(j.Delay, r)-HalfBlock(j.Delay, j.Arrival), h)
	}
}

// PunctualTransform implements the constructive content of Lemma 5.3: given
// any uni-speed offline schedule S for σ with m resources and power-of-two
// delay bounds, it builds a *punctual* schedule S′ with 7m resources that
// executes every job S executes, with reconfiguration cost O(cost(S)).
// Resources 7k..7k+6 of S′ serve resource k of S:
//
//	7k+0  special early jobs, shifted +D_ℓ/2 (Lemma 5.1, resource 0)
//	7k+1  nonspecial early jobs, first-free slots in the next half-block
//	7k+2  (Lemma 5.1, resources 1 and 2)
//	7k+3  punctual jobs, verbatim (with S_k's configuration timeline)
//	7k+4  special late jobs, shifted −D_ℓ/2 (Lemma 5.2, mirrored)
//	7k+5  nonspecial late jobs, first-free slots in the previous
//	7k+6  half-block (Lemma 5.2, mirrored)
//
// A job of color ℓ is *special* for the early case when ℓ is configured on
// resource k throughout halfBlock(D_ℓ, i) and halfBlock(D_ℓ, i+1) (and
// symmetrically for the late case); shifting such executions by ±D_ℓ/2 stays
// under the same configuration, so resources 7k+0 and 7k+4 simply copy S_k's
// configuration timeline.
func PunctualTransform(seq *model.Sequence, sched *model.Schedule) (*model.Schedule, error) {
	if sched.Speed != 1 {
		return nil, fmt.Errorf("reduce: PunctualTransform requires a uni-speed schedule")
	}
	if !seq.PowerOfTwoDelays() {
		return nil, fmt.Errorf("reduce: PunctualTransform requires power-of-two delay bounds")
	}
	jobs := make(map[int64]model.Job, seq.NumJobs())
	for _, j := range seq.Jobs() {
		jobs[j.ID] = j
	}

	m := sched.NumResources
	out := model.NewSchedule(7*m, 1)

	// Group the input schedule per resource.
	recsByRes := make([][]model.Reconfigure, m)
	for _, r := range sched.Reconfigs {
		recsByRes[r.Resource] = append(recsByRes[r.Resource], r)
	}
	execsByRes := make([][]model.Execution, m)
	for _, e := range sched.Execs {
		execsByRes[e.Resource] = append(execsByRes[e.Resource], e)
	}
	for k := 0; k < m; k++ {
		if err := punctualizeResource(seq, jobs, recsByRes[k], execsByRes[k], k, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// configTimeline answers "what color does resource k hold in round r" for a
// sorted reconfiguration list.
type configTimeline struct {
	rounds []int64
	colors []model.Color
}

func newConfigTimeline(recs []model.Reconfigure) *configTimeline {
	sorted := make([]model.Reconfigure, len(recs))
	copy(sorted, recs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Round < sorted[j].Round })
	tl := &configTimeline{}
	for _, r := range sorted {
		tl.rounds = append(tl.rounds, r.Round)
		tl.colors = append(tl.colors, r.To)
	}
	return tl
}

func (tl *configTimeline) at(r int64) model.Color {
	idx := sort.Search(len(tl.rounds), func(i int) bool { return tl.rounds[i] > r })
	if idx == 0 {
		return model.Black
	}
	return tl.colors[idx-1]
}

// configuredThroughout reports whether color c holds for all rounds in
// [start, end).
func (tl *configTimeline) configuredThroughout(c model.Color, start, end int64) bool {
	for r := start; r < end; r++ {
		if tl.at(r) != c {
			return false
		}
	}
	return true
}

func punctualizeResource(seq *model.Sequence, jobs map[int64]model.Job,
	recs []model.Reconfigure, execs []model.Execution, k int, out *model.Schedule) error {

	tl := newConfigTimeline(recs)
	base := 7 * k

	// Copy S_k's configuration timeline onto the shift resources (+0, +4)
	// and the punctual resource (+3).
	for _, dst := range []int{base + 0, base + 3, base + 4} {
		prev := model.Black
		for i, r := range tl.rounds {
			if tl.colors[i] == prev {
				continue
			}
			out.AddReconfig(r, 0, dst, tl.colors[i])
			prev = tl.colors[i]
		}
	}

	// Classify executions.
	var earlySpills, lateSpills []spill
	for _, e := range execs {
		j, ok := jobs[e.JobID]
		if !ok {
			return fmt.Errorf("reduce: schedule executes unknown job %d", e.JobID)
		}
		punct, err := ClassifyExecution(j, e.Round)
		if err != nil {
			return err
		}
		h := j.Delay / 2
		switch punct {
		case Punctual:
			out.AddExec(e.Round, 0, base+3, e.JobID)
		case Early:
			// Special iff the color holds throughout the arrival half-block
			// and the next one.
			i := HalfBlock(j.Delay, e.Round)
			s := HalfBlockStart(j.Delay, i)
			if tl.configuredThroughout(j.Color, s, s+j.Delay) {
				out.AddExec(e.Round+h, 0, base+0, e.JobID)
			} else {
				earlySpills = append(earlySpills, spill{job: j, round: e.Round})
			}
		case Late:
			i := HalfBlock(j.Delay, e.Round)
			s := HalfBlockStart(j.Delay, i-1)
			if tl.configuredThroughout(j.Color, s, s+j.Delay) {
				out.AddExec(e.Round-h, 0, base+4, e.JobID)
			} else {
				lateSpills = append(lateSpills, spill{job: j, round: e.Round})
			}
		}
	}

	// Place nonspecial spills greedily in the target half-block on the two
	// helper resources, ascending delay bound then round then color
	// (Lemma 5.1's third step processes delay bounds ascending).
	if err := placeSpills(earlySpills, +1, base+1, base+2, out); err != nil {
		return err
	}
	if err := placeSpills(lateSpills, -1, base+5, base+6, out); err != nil {
		return err
	}
	return nil
}

// spill is a nonspecial early/late execution awaiting re-placement.
type spill struct {
	job   model.Job
	round int64 // original execution round
}

// placeSpills schedules nonspecial executions into the half-block adjacent
// to their original one (dir = +1 for early jobs moving forward, -1 for late
// jobs moving back) on two helper resources, using first-free slots and
// reconfiguring the helper resources as colors change.
func placeSpills(spills []spill, dir int64, resA, resB int, out *model.Schedule) error {
	sort.SliceStable(spills, func(i, j int) bool {
		a, b := spills[i], spills[j]
		if a.job.Delay != b.job.Delay {
			return a.job.Delay < b.job.Delay
		}
		if a.round != b.round {
			return a.round < b.round
		}
		return a.job.Color < b.job.Color
	})
	type helper struct {
		res      int
		occupied map[int64]bool
		color    map[int64]model.Color // desired color per occupied round
	}
	helpers := []*helper{
		{res: resA, occupied: map[int64]bool{}, color: map[int64]model.Color{}},
		{res: resB, occupied: map[int64]bool{}, color: map[int64]model.Color{}},
	}
	for _, sp := range spills {
		h := sp.job.Delay / 2
		i := HalfBlock(sp.job.Delay, sp.round)
		target := i + dir
		start := HalfBlockStart(sp.job.Delay, target)
		end := start + h
		placed := false
		for _, hp := range helpers {
			for r := start; r < end && !placed; r++ {
				if !hp.occupied[r] {
					hp.occupied[r] = true
					hp.color[r] = sp.job.Color
					out.AddExec(r, 0, hp.res, sp.job.ID)
					placed = true
				}
			}
			if placed {
				break
			}
		}
		if !placed {
			return fmt.Errorf("reduce: no free helper slot for job %d in half-block [%d,%d)", sp.job.ID, start, end)
		}
	}
	// Emit helper reconfigurations: walk rounds in order, recolor on change.
	for _, hp := range helpers {
		rounds := make([]int64, 0, len(hp.color))
		for r := range hp.color {
			rounds = append(rounds, r)
		}
		sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
		prev := model.Black
		for _, r := range rounds {
			if hp.color[r] != prev {
				out.AddReconfig(r, 0, hp.res, hp.color[r])
				prev = hp.color[r]
			}
		}
	}
	return nil
}
