package reduce

import (
	"fmt"

	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/sim"
)

// BatchedDelay returns the delay bound a color receives in the batched
// instance VarBatch constructs. For a power-of-two delay bound p > 1 this is
// p/2 (Section 5.1); for an arbitrary delay bound 2^j <= p < 2^(j+1) it is
// 2^(j-1) (Section 5.3); delay bound 1 passes through unchanged (jobs with
// D_ℓ = 1 are already batched).
func BatchedDelay(p int64) int64 {
	if p <= 0 {
		panic("reduce: non-positive delay bound")
	}
	if p == 1 {
		return 1
	}
	return model.FloorPowerOfTwo(p) / 2
}

// VarBatchSequence builds the batched instance σ' from an arbitrary instance
// σ (Section 5.1, step 1): a job of delay bound p arriving in
// halfBlock(h, i) — where h = BatchedDelay(p) — is delayed to the start of
// halfBlock(h, i+1) and its execution is restricted to that half-block, i.e.
// it becomes a job with arrival (i+1)*h and delay bound h. Every job's new
// execution window is contained in its original window, so any schedule for
// σ' is (after identification of jobs) a schedule for σ.
func VarBatchSequence(seq *model.Sequence) (*model.Sequence, error) {
	b := model.NewBuilder(seq.Delta())
	for r := int64(0); r < seq.NumRounds(); r++ {
		for _, job := range seq.Request(r) {
			h := BatchedDelay(job.Delay)
			arrival := r
			if h < job.Delay {
				arrival = (r/h + 1) * h
			}
			b.Add(arrival, job.Color, h, 1)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunVarBatch runs algorithm VarBatch (Section 5.1) on an arbitrary
// instance: delay arrivals to half-block boundaries, then apply Distribute
// with the given inner policy (ΔLRU-EDF for the paper's main result,
// Theorem 3). The final schedule is audited against the ORIGINAL instance;
// it is legal because every batched window is contained in the original
// window, and its drop cost never exceeds the batched schedule's (the outer
// replay sees every job at least as early and keeps it at least as long).
func RunVarBatch(seq *model.Sequence, n int, policy sim.Policy) (*Result, error) {
	return RunVarBatchObserved(seq, n, policy, nil)
}

// RunVarBatchObserved is RunVarBatch with an observer attached to the inner
// Distribute simulation; a nil observer is exactly RunVarBatch.
func RunVarBatchObserved(seq *model.Sequence, n int, policy sim.Policy, o *obs.Observer) (*Result, error) {
	batched, err := VarBatchSequence(seq)
	if err != nil {
		return nil, err
	}
	inner, err := RunDistributeObserved(batched, n, policy, o)
	if err != nil {
		return nil, err
	}
	sched, err := sim.Replay(seq, n, 1, inner.Schedule.Reconfigs)
	if err != nil {
		return nil, err
	}
	cost, err := model.Audit(seq, sched)
	if err != nil {
		return nil, err
	}
	return &Result{
		Policy:   "varbatch(" + policy.Name() + ")",
		Cost:     cost,
		Schedule: sched,
		Inner:    inner.Inner,
		InnerSeq: inner.InnerSeq,
	}, nil
}

// VarBatchPolicy adapts the full reduction stack into a single object with a
// policy-like interface for callers that just want "the paper's online
// algorithm for [Δ | 1 | D_ℓ | 1]". It is not a sim.Policy (the reduction
// changes the instance), so it exposes Run instead.
type VarBatchPolicy struct {
	NewInner func() sim.Policy
	// Obs, when non-nil, instruments the inner simulation of every Run.
	Obs *obs.Observer
}

// Run executes the stack on an arbitrary instance with n resources.
func (p *VarBatchPolicy) Run(seq *model.Sequence, n int) (*Result, error) {
	if p.NewInner == nil {
		return nil, fmt.Errorf("reduce: VarBatchPolicy needs a NewInner factory")
	}
	return RunVarBatchObserved(seq, n, p.NewInner(), p.Obs)
}
