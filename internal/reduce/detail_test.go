package reduce

import (
	"testing"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/workload"
)

// TestDistributeBucketBoundaries pins the exact bucket split: with D=4 and
// batches of 9 jobs, buckets must hold 4/4/1 jobs.
func TestDistributeBucketBoundaries(t *testing.T) {
	seq := model.NewBuilder(2).Add(0, 0, 4, 9).MustBuild()
	inner, m, err := DistributeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumInner() != 3 {
		t.Fatalf("buckets = %d, want 3", m.NumInner())
	}
	counts := map[model.Color]int{}
	for _, j := range inner.Jobs() {
		counts[j.Color]++
	}
	want := []int{4, 4, 1}
	for j, w := range want {
		ic, ok := m.Inner(0, int64(j))
		if !ok {
			t.Fatalf("bucket %d missing", j)
		}
		if counts[ic] != w {
			t.Errorf("bucket %d has %d jobs, want %d", j, counts[ic], w)
		}
	}
	if n := m.Buckets(0); n != 3 {
		t.Errorf("Buckets(0) = %d", n)
	}
	if _, ok := m.Inner(0, 3); ok {
		t.Error("phantom bucket 3 exists")
	}
}

// TestDistributeBucketsStableAcrossBatches: bucket j of a later batch maps
// to the SAME inner color (subcolors are per (color, j), not per batch).
func TestDistributeBucketsStableAcrossBatches(t *testing.T) {
	seq := model.NewBuilder(2).Add(0, 0, 4, 6).Add(4, 0, 4, 7).MustBuild()
	inner, m, err := DistributeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumInner() != 2 {
		t.Fatalf("subcolors = %d, want 2 (max ceil(7/4))", m.NumInner())
	}
	ic0, _ := m.Inner(0, 0)
	// Bucket 0 receives 4 jobs per batch (capped by D).
	perRound := map[int64]int{}
	for _, j := range inner.Jobs() {
		if j.Color == ic0 {
			perRound[j.Arrival]++
		}
	}
	if perRound[0] != 4 || perRound[4] != 4 {
		t.Errorf("bucket 0 per round = %v, want 4 and 4", perRound)
	}
	if !inner.IsRateLimited() {
		t.Error("not rate-limited")
	}
}

// TestPunctualSpecialJobClassification pins the special-job rule of
// Lemma 5.1: with the color configured throughout two consecutive
// half-blocks, early executions shift by +D/2 onto the first transform
// resource; without, they spill to the helper resources.
func TestPunctualSpecialJobClassification(t *testing.T) {
	// D=8, half-blocks of 4. Jobs arrive at round 0 (half-block 0) and are
	// executed early (rounds 0..3) on a resource configured to the color
	// throughout rounds 0..7 => special.
	seq := model.NewBuilder(2).Add(0, 0, 8, 3).MustBuild()
	src := model.NewSchedule(1, 1)
	src.AddReconfig(0, 0, 0, 0)
	src.AddExec(0, 0, 0, 0)
	src.AddExec(1, 0, 0, 1)
	src.AddExec(2, 0, 0, 2)
	out, err := PunctualTransform(seq, src)
	if err != nil {
		t.Fatal(err)
	}
	// All three executions land on resource 0 (7k+0 with k=0) at rounds
	// shifted by +4.
	for _, e := range out.Execs {
		if e.Resource != 0 {
			t.Errorf("special job %d executed on resource %d, want 0", e.JobID, e.Resource)
		}
		if e.Round != int64(e.JobID)+4 {
			t.Errorf("job %d at round %d, want %d", e.JobID, e.Round, e.JobID+4)
		}
	}
	if _, err := model.Audit(seq, out); err != nil {
		t.Fatal(err)
	}
}

func TestPunctualNonspecialSpills(t *testing.T) {
	// The resource switches color at round 2 (inside the arrival
	// half-block), so the early executions are NOT special and must spill to
	// helper resources 1/2 in the next half-block.
	seq := model.NewBuilder(2).Add(0, 0, 8, 2).Add(0, 1, 8, 2).MustBuild()
	src := model.NewSchedule(1, 1)
	src.AddReconfig(0, 0, 0, 0)
	src.AddExec(0, 0, 0, 0)
	src.AddExec(1, 0, 0, 1)
	src.AddReconfig(2, 0, 0, 1)
	src.AddExec(2, 0, 0, 2)
	src.AddExec(3, 0, 0, 3)
	out, err := PunctualTransform(seq, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range out.Execs {
		if e.Resource == 0 {
			t.Errorf("nonspecial job %d landed on the special-shift resource", e.JobID)
		}
		if e.Round < 4 || e.Round >= 8 {
			t.Errorf("job %d at round %d, want within half-block [4,8)", e.JobID, e.Round)
		}
	}
	if got := len(out.ExecutedJobIDs()); got != 4 {
		t.Errorf("executed %d of 4", got)
	}
	if _, err := model.Audit(seq, out); err != nil {
		t.Fatal(err)
	}
}

// TestVarBatchStackOnArbitraryDelays: the full stack handles non-power-of-two
// delay bounds end to end (Section 5.3 rounding).
func TestVarBatchStackOnArbitraryDelays(t *testing.T) {
	b := model.NewBuilder(3)
	delays := []int64{3, 5, 6, 7, 12, 100}
	for i, d := range delays {
		for r := int64(0); r < 96; r += 7 {
			b.Add(r, model.Color(i), d, 1+i%2)
		}
	}
	seq := b.MustBuild()
	if seq.PowerOfTwoDelays() {
		t.Fatal("test wants non-power-of-two delays")
	}
	res, err := RunVarBatch(seq, 8, core.NewDeltaLRUEDF())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := model.Audit(seq, res.Schedule); err != nil || got != res.Cost {
		t.Fatalf("audit: %v %v vs %v", err, got, res.Cost)
	}
}

// TestReductionsPreserveJobConservation across a spread of generators.
func TestReductionsPreserveJobConservation(t *testing.T) {
	gens := []func() (*model.Sequence, error){
		func() (*model.Sequence, error) {
			return workload.RandomGeneral(workload.RandomConfig{
				Seed: 21, Delta: 3, Colors: 5, Rounds: 96, MinDelayExp: 1, MaxDelayExp: 4, Load: 0.7})
		},
		func() (*model.Sequence, error) {
			return workload.Diurnal(workload.DiurnalConfig{
				Seed: 5, Delta: 3, Colors: 5, Period: 64, Days: 2, Delay: 2, PeakLoad: 0.8, TroughFrac: 0.2})
		},
		func() (*model.Sequence, error) {
			return workload.MMPP(workload.MMPPConfig{
				Seed: 5, Delta: 3, Colors: 5, Rounds: 128, MinDelayExp: 1, MaxDelayExp: 3,
				OnLoad: 1.0, OffLoad: 0.1, MeanOn: 16, MeanOff: 16})
		},
	}
	for i, gen := range gens {
		seq, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunVarBatch(seq, 8, core.NewDeltaLRUEDF())
		if err != nil {
			t.Fatalf("gen %d: %v", i, err)
		}
		executed := res.Schedule.NumExecs()
		if executed+int(res.Cost.Drop) != seq.NumJobs() {
			t.Fatalf("gen %d: %d + %d != %d", i, executed, res.Cost.Drop, seq.NumJobs())
		}
	}
}
