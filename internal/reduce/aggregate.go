package reduce

import (
	"fmt"
	"sort"

	"rrsched/internal/model"
)

// Aggregate implements the constructive content of Lemma 4.1 (Section 4.3):
// given a batched instance I with power-of-two delay bounds, its Distribute
// reduction I' (with the subcolor map), and an arbitrary uni-speed schedule
// T for I with m resources, it builds a schedule T' for I' with 3m resources
// that executes exactly as many jobs as T (Lemma 4.5) with reconfiguration
// cost O(reconfig(T)) (Lemma 4.6).
//
// Structure (following the paper, with per-resource bookkeeping):
//
//   - resources 3k, 3k+1, 3k+2 of T' serve resource k of T;
//   - jobs are processed by ascending delay bound, block by block, color by
//     color; every execution of a delay-p job by T lies in the block(p, ·)
//     of its own arrival batch (batched input);
//   - if resource k is (T, p, i, ℓ)-monochromatic (configured to ℓ
//     throughout block(p, i)), its executions of ℓ in the block run
//     contiguously on resource 3k, preferring the subcolor bucket the
//     resource used in the previous block (the paper's label inheritance,
//     which avoids reconfigurations at block boundaries);
//   - otherwise the executions spill into first-free slots on the helper
//     resources 3k+1 and 3k+2 inside the block (the paper's multichromatic
//     triples; two helpers per original resource always have enough free
//     slots because T executes at most one job per round on k).
func Aggregate(seq *model.Sequence, inner *model.Sequence, smap *SubcolorMap, T *model.Schedule) (*model.Schedule, error) {
	if T.Speed != 1 {
		return nil, fmt.Errorf("reduce: Aggregate requires a uni-speed schedule")
	}
	if !seq.IsBatched() || !seq.PowerOfTwoDelays() {
		return nil, fmt.Errorf("reduce: Aggregate requires a batched instance with power-of-two delay bounds")
	}
	jobs := make(map[int64]model.Job, seq.NumJobs())
	for _, j := range seq.Jobs() {
		jobs[j.ID] = j
	}

	// Inner job IDs per (inner color, batch round), in arrival order.
	innerJobs := map[model.Color]map[int64][]int64{}
	for _, j := range inner.Jobs() {
		byRound := innerJobs[j.Color]
		if byRound == nil {
			byRound = map[int64][]int64{}
			innerJobs[j.Color] = byRound
		}
		byRound[j.Arrival] = append(byRound[j.Arrival], j.ID)
	}

	// Count T's executions per (resource, color, block index of the color's
	// delay bound). Batched input: a delay-p job executed in round r arrived
	// at BlockStart(p, Block(p, r)).
	type execKey struct {
		res   int
		color model.Color
		block int64
	}
	counts := map[execKey]int{}
	for _, e := range T.Execs {
		j, ok := jobs[e.JobID]
		if !ok {
			return nil, fmt.Errorf("reduce: schedule executes unknown job %d", e.JobID)
		}
		counts[execKey{res: e.Resource, color: j.Color, block: Block(j.Delay, e.Round)}]++
	}

	// Per-resource configuration timelines of T, to test monochromaticity.
	timelines := make([]*configTimeline, T.NumResources)
	{
		recsByRes := make([][]model.Reconfigure, T.NumResources)
		for _, r := range T.Reconfigs {
			recsByRes[r.Resource] = append(recsByRes[r.Resource], r)
		}
		for k := range timelines {
			timelines[k] = newConfigTimeline(recsByRes[k])
		}
	}

	// Work list ordered by ascending delay bound, block, color, resource.
	type workItem struct {
		delay int64
		block int64
		color model.Color
		res   int
		count int
	}
	var work []workItem
	for k, n := range counts {
		d, _ := seq.DelayBound(k.color)
		work = append(work, workItem{delay: d, block: k.block, color: k.color, res: k.res, count: n})
	}
	sort.Slice(work, func(a, b int) bool {
		x, y := work[a], work[b]
		if x.delay != y.delay {
			return x.delay < y.delay
		}
		if x.block != y.block {
			return x.block < y.block
		}
		if x.color != y.color {
			return x.color < y.color
		}
		return x.res < y.res
	})

	b := &aggregateBuilder{
		inner:     inner,
		smap:      smap,
		innerJobs: innerJobs,
		outRes:    3 * T.NumResources,
		slots:     map[slotKey]placement{},
		inherited: map[inheritKey]int64{},
		used:      map[usedKey]int{},
	}
	for _, w := range work {
		mono := timelines[w.res].configuredThroughout(w.color, BlockStart(w.delay, w.block), BlockStart(w.delay, w.block+1))
		if err := b.place(w.res, w.color, w.delay, w.block, w.count, mono); err != nil {
			return nil, err
		}
	}
	return b.emit(), nil
}

type slotKey struct {
	res   int
	round int64
}

type placement struct {
	color model.Color // inner color
	jobID int64
}

type inheritKey struct {
	res   int
	color model.Color
}

type usedKey struct {
	color model.Color // outer color
	batch int64
	j     int64
}

type aggregateBuilder struct {
	inner     *model.Sequence
	smap      *SubcolorMap
	innerJobs map[model.Color]map[int64][]int64

	outRes    int
	slots     map[slotKey]placement
	inherited map[inheritKey]int64 // preferred bucket per (original resource, outer color)
	used      map[usedKey]int      // jobs consumed per (outer color, batch, bucket)
}

// take consumes one inner job of subcolor (color, j) from the given batch,
// returning its inner color and job ID.
func (b *aggregateBuilder) take(color model.Color, batch, j int64) (model.Color, int64, bool) {
	ic, ok := b.smap.Inner(color, j)
	if !ok {
		return 0, 0, false
	}
	ids := b.innerJobs[ic][batch]
	u := b.used[usedKey{color: color, batch: batch, j: j}]
	if u >= len(ids) {
		return 0, 0, false
	}
	b.used[usedKey{color: color, batch: batch, j: j}] = u + 1
	return ic, ids[u], true
}

// place schedules `count` executions of outer color `color` (delay bound
// `delay`) from the batch at BlockStart(delay, block) onto the T' resources
// of original resource `res`.
func (b *aggregateBuilder) place(res int, color model.Color, delay, block int64, count int, mono bool) error {
	batch := BlockStart(delay, block)
	start, end := batch, BlockStart(delay, block+1)
	if mono {
		// Contiguous run on resource 3res from the block start, preferring
		// the inherited bucket so consecutive monochromatic blocks keep the
		// same subcolor (no boundary reconfiguration).
		bucketOrder := b.bucketOrder(res, color)
		r := start
		for placed := 0; placed < count; placed++ {
			if r >= end {
				return fmt.Errorf("reduce: monochromatic run overflow for color %v block %d", color, block)
			}
			key := slotKey{res: 3 * res, round: r}
			if _, occ := b.slots[key]; occ {
				return fmt.Errorf("reduce: monochromatic slot collision on resource %d round %d", 3*res, r)
			}
			ic, id, ok := b.takeInOrder(color, batch, bucketOrder)
			if !ok {
				return fmt.Errorf("reduce: batch %d of color %v exhausted", batch, color)
			}
			b.slots[key] = placement{color: ic, jobID: id}
			b.rememberBucket(res, color, ic)
			r++
		}
		return nil
	}
	// Multichromatic: first-free helper slots inside the block.
	helpers := []int{3*res + 1, 3*res + 2}
	bucketOrder := b.bucketOrder(res, color)
	for placed := 0; placed < count; placed++ {
		done := false
		for _, hr := range helpers {
			for r := start; r < end && !done; r++ {
				key := slotKey{res: hr, round: r}
				if _, occ := b.slots[key]; occ {
					continue
				}
				ic, id, ok := b.takeInOrder(color, batch, bucketOrder)
				if !ok {
					return fmt.Errorf("reduce: batch %d of color %v exhausted", batch, color)
				}
				b.slots[key] = placement{color: ic, jobID: id}
				done = true
			}
			if done {
				break
			}
		}
		if !done {
			return fmt.Errorf("reduce: no free helper slot for color %v in block [%d,%d)", color, start, end)
		}
	}
	return nil
}

// bucketOrder returns the bucket indices to try: the inherited bucket first,
// then ascending.
func (b *aggregateBuilder) bucketOrder(res int, color model.Color) []int64 {
	n := b.smap.Buckets(color)
	order := make([]int64, 0, n)
	if j, ok := b.inherited[inheritKey{res: res, color: color}]; ok && j < n {
		order = append(order, j)
	}
	for j := int64(0); j < n; j++ {
		if len(order) > 0 && order[0] == j {
			continue
		}
		order = append(order, j)
	}
	return order
}

// takeInOrder consumes a job trying buckets in the given order.
func (b *aggregateBuilder) takeInOrder(color model.Color, batch int64, order []int64) (model.Color, int64, bool) {
	for _, j := range order {
		if ic, id, ok := b.take(color, batch, j); ok {
			return ic, id, ok
		}
	}
	return 0, 0, false
}

func (b *aggregateBuilder) rememberBucket(res int, color model.Color, ic model.Color) {
	// Recover the bucket index of ic by scanning (buckets are few).
	for j := int64(0); ; j++ {
		c, ok := b.smap.Inner(color, j)
		if !ok {
			return
		}
		if c == ic {
			b.inherited[inheritKey{res: res, color: color}] = j
			return
		}
	}
}

// emit walks each T' resource's slots in round order and materializes the
// schedule: a reconfiguration whenever the desired color differs from the
// resource's current color, then the execution.
func (b *aggregateBuilder) emit() *model.Schedule {
	out := model.NewSchedule(b.outRes, 1)
	byRes := make(map[int][]int64)
	//lint:ignore determinism each per-resource bucket is sorted before use below
	for key := range b.slots {
		byRes[key.res] = append(byRes[key.res], key.round)
	}
	resList := make([]int, 0, len(byRes))
	for res := range byRes {
		resList = append(resList, res)
	}
	sort.Ints(resList)
	for _, res := range resList {
		rounds := byRes[res]
		sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
		cur := model.Black
		for _, r := range rounds {
			p := b.slots[slotKey{res: res, round: r}]
			if p.color != cur {
				out.AddReconfig(r, 0, res, p.color)
				cur = p.color
			}
			out.AddExec(r, 0, res, p.jobID)
		}
	}
	return out
}
