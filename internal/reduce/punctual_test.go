package reduce

import (
	"testing"
	"testing/quick"

	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/workload"
)

func TestClassifyExecution(t *testing.T) {
	j := model.Job{ID: 1, Color: 0, Arrival: 4, Delay: 8} // halfBlock(8, ·): h=4, arrival in HB 1
	cases := []struct {
		round int64
		want  Punctuality
	}{
		{4, Early},     // same half-block [4,8)
		{7, Early},     //
		{8, Punctual},  // next half-block [8,12)
		{11, Punctual}, //
	}
	for _, c := range cases {
		got, err := ClassifyExecution(j, c.round)
		if err != nil {
			t.Fatalf("round %d: %v", c.round, err)
		}
		if got != c.want {
			t.Errorf("round %d: %v, want %v", c.round, got, c.want)
		}
	}
	// Late: arrival at 7 (HB 1 = [4,8)), execution at 12..14 is HB 3.
	j2 := model.Job{ID: 2, Color: 0, Arrival: 7, Delay: 8}
	if got, err := ClassifyExecution(j2, 12); err != nil || got != Late {
		t.Errorf("late case: %v, %v", got, err)
	}
	// Out of window.
	if _, err := ClassifyExecution(j, 99); err == nil {
		t.Error("out-of-window execution classified")
	}
	// Unit delay is punctual by convention.
	j3 := model.Job{ID: 3, Color: 0, Arrival: 5, Delay: 1}
	if got, err := ClassifyExecution(j3, 5); err != nil || got != Punctual {
		t.Errorf("unit delay: %v, %v", got, err)
	}
	// Non-power-of-two delay rejected.
	j4 := model.Job{ID: 4, Color: 0, Arrival: 0, Delay: 6}
	if _, err := ClassifyExecution(j4, 0); err == nil {
		t.Error("non-power-of-two delay classified")
	}
}

// isPunctualSchedule checks that every execution is punctual (the defining
// property of Lemma 5.3's output).
func isPunctualSchedule(t *testing.T, seq *model.Sequence, sched *model.Schedule) bool {
	t.Helper()
	jobs := map[int64]model.Job{}
	for _, j := range seq.Jobs() {
		jobs[j.ID] = j
	}
	for _, e := range sched.Execs {
		p, err := ClassifyExecution(jobs[e.JobID], e.Round)
		if err != nil {
			t.Fatalf("classify: %v", err)
		}
		if p != Punctual {
			return false
		}
	}
	return true
}

func punctualCheck(t *testing.T, seq *model.Sequence, m int) {
	t.Helper()
	// Use the offline greedy as the "arbitrary schedule S".
	src := offline.BestGreedy(seq, m)
	out, err := PunctualTransform(seq, src.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	// (0) 7m resources.
	if out.NumResources != 7*m {
		t.Fatalf("resources = %d, want %d", out.NumResources, 7*m)
	}
	// (1) Legal for σ.
	cost, err := model.Audit(seq, out)
	if err != nil {
		t.Fatalf("transformed schedule illegal: %v", err)
	}
	// (2) Executes every job S executes (same drop cost).
	srcIDs := src.Schedule.ExecutedJobIDs()
	outIDs := out.ExecutedJobIDs()
	for id := range srcIDs {
		if !outIDs[id] {
			t.Fatalf("job %d executed by S but not by S'", id)
		}
	}
	// (3) Punctual.
	if !isPunctualSchedule(t, seq, out) {
		t.Fatal("transformed schedule is not punctual")
	}
	// (4) Reconfiguration cost O(cost(S)): generous constant 12 plus the
	// per-resource timeline copies (3 copies of S_k's timeline).
	bound := 12 * (src.Cost.Total() + seq.Delta())
	if cost.Reconfig > bound {
		t.Fatalf("reconfig %d > %d = 12·(cost(S)+Δ)", cost.Reconfig, bound)
	}
}

func TestPunctualTransformOnGreedySchedules(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed: seed, Delta: 3, Colors: 5, Rounds: 96,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		punctualCheck(t, seq, 1)
		punctualCheck(t, seq, 2)
	}
}

func TestPunctualTransformProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: int64(seedRaw), Delta: 2, Colors: 4, Rounds: 64,
			MinDelayExp: 1, MaxDelayExp: 3, Load: 0.7, RateLimited: true,
		})
		if err != nil || seq.NumJobs() == 0 {
			return true
		}
		src := offline.BestGreedy(seq, 2)
		out, err := PunctualTransform(seq, src.Schedule)
		if err != nil {
			t.Log(err)
			return false
		}
		if _, err := model.Audit(seq, out); err != nil {
			t.Log(err)
			return false
		}
		return isPunctualSchedule(t, seq, out) &&
			len(out.ExecutedJobIDs()) >= len(src.Schedule.ExecutedJobIDs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPunctualTransformRejections(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 2, 1).MustBuild()
	if _, err := PunctualTransform(seq, model.NewSchedule(1, 2)); err == nil {
		t.Error("double-speed schedule accepted")
	}
	odd := model.NewBuilder(1).Add(0, 0, 3, 1).MustBuild()
	if _, err := PunctualTransform(odd, model.NewSchedule(1, 1)); err == nil {
		t.Error("non-power-of-two delays accepted")
	}
}

// TestPunctualFeedsVarBatch closes the Theorem 3 loop constructively: a
// punctual schedule for σ induces a schedule for the VarBatch-delayed
// instance σ' with the same executions, which is what Lemma 5.3 feeds into
// Theorem 3.
func TestPunctualFeedsVarBatch(t *testing.T) {
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 11, Delta: 2, Colors: 4, Rounds: 64,
		MinDelayExp: 2, MaxDelayExp: 3, Load: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := offline.BestGreedy(seq, 1)
	out, err := PunctualTransform(seq, src.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	// Every punctual execution of a delay-p job lands inside the execution
	// window [arrival', arrival'+p/2) that VarBatchSequence assigns.
	jobs := map[int64]model.Job{}
	for _, j := range seq.Jobs() {
		jobs[j.ID] = j
	}
	for _, e := range out.Execs {
		j := jobs[e.JobID]
		if j.Delay == 1 {
			continue
		}
		h := j.Delay / 2
		newArrival := (j.Arrival/h + 1) * h
		if e.Round < newArrival || e.Round >= newArrival+h {
			t.Fatalf("job %d executed at %d outside its VarBatch window [%d,%d)",
				e.JobID, e.Round, newArrival, newArrival+h)
		}
	}
}
