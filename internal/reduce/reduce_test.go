package reduce

import (
	"testing"
	"testing/quick"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func TestBlockHelpers(t *testing.T) {
	if Block(4, 0) != 0 || Block(4, 3) != 0 || Block(4, 4) != 1 || Block(4, 11) != 2 {
		t.Error("Block arithmetic broken")
	}
	if BlockStart(4, 2) != 8 {
		t.Error("BlockStart broken")
	}
	if HalfBlock(4, 0) != 0 || HalfBlock(4, 1) != 0 || HalfBlock(4, 2) != 1 || HalfBlock(4, 7) != 3 {
		t.Error("HalfBlock arithmetic broken")
	}
	if HalfBlockStart(4, 3) != 6 {
		t.Error("HalfBlockStart broken")
	}
}

func TestBlockPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Block(0, 1) },
		func() { HalfBlock(3, 1) }, // odd
		func() { HalfBlock(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid block parameters accepted")
				}
			}()
			f()
		}()
	}
}

func TestBatchedDelay(t *testing.T) {
	cases := map[int64]int64{1: 1, 2: 1, 3: 1, 4: 2, 5: 2, 7: 2, 8: 4, 9: 4, 15: 4, 16: 8, 64: 32}
	for in, want := range cases {
		if got := BatchedDelay(in); got != want {
			t.Errorf("BatchedDelay(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestDistributeSequenceSplitsOverRateBatches(t *testing.T) {
	// 10 jobs of color 0 (D=4) in one batch: subcolors of at most 4 jobs.
	seq := model.NewBuilder(2).Add(0, 0, 4, 10).MustBuild()
	inner, m, err := DistributeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !inner.IsRateLimited() {
		t.Fatal("Distribute output is not rate-limited")
	}
	if inner.NumJobs() != 10 {
		t.Errorf("job count changed: %d", inner.NumJobs())
	}
	if m.NumInner() != 3 { // ceil(10/4) = 3 subcolors
		t.Errorf("subcolors = %d, want 3", m.NumInner())
	}
	for i := 0; i < m.NumInner(); i++ {
		if m.Outer(model.Color(i)) != 0 {
			t.Errorf("subcolor %d maps to %v", i, m.Outer(model.Color(i)))
		}
	}
}

func TestDistributeSequencePreservesRateLimited(t *testing.T) {
	// Already rate-limited input: one subcolor per color, identical content.
	seq := model.NewBuilder(2).Add(0, 0, 4, 3).Add(4, 0, 4, 4).MustBuild()
	inner, m, err := DistributeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumInner() != 1 {
		t.Errorf("subcolors = %d, want 1", m.NumInner())
	}
	if inner.NumJobs() != seq.NumJobs() {
		t.Error("job count changed")
	}
}

func TestDistributeSequenceRanksWithinRequest(t *testing.T) {
	// Ranks are per (round, color): a second color must not consume the
	// first color's subcolor budget.
	seq := model.NewBuilder(2).Add(0, 0, 2, 5).Add(0, 1, 2, 5).MustBuild()
	inner, m, err := DistributeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !inner.IsRateLimited() {
		t.Fatal("not rate-limited")
	}
	// Each color needs ceil(5/2) = 3 subcolors.
	if m.NumInner() != 6 {
		t.Errorf("subcolors = %d, want 6", m.NumInner())
	}
}

func TestDistributeRejectsNonBatched(t *testing.T) {
	seq := model.NewBuilder(2).Add(1, 0, 4, 1).MustBuild()
	if _, _, err := DistributeSequence(seq); err == nil {
		t.Fatal("non-batched input accepted")
	}
}

func TestSubcolorMapPanicsOnUnknown(t *testing.T) {
	m := &SubcolorMap{toOuter: []model.Color{0}}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown inner color accepted")
		}
	}()
	m.Outer(5)
}

// TestLemma42OuterCostLeInner: the projected outer cost never exceeds the
// inner cost (Lemma 4.2), across random batched instances.
func TestLemma42OuterCostLeInner(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: int64(seedRaw), Delta: 3, Colors: 5, Rounds: 128,
			MinDelayExp: 1, MaxDelayExp: 3, Load: 1.8, // over-rate
		})
		if err != nil || seq.NumJobs() == 0 {
			return true
		}
		res, err := RunDistribute(seq, 8, core.NewDeltaLRUEDF())
		if err != nil {
			t.Log(err)
			return false
		}
		if res.Cost.Total() > res.Inner.Cost.Total() {
			t.Logf("seed %d: outer %v > inner %v", seedRaw, res.Cost, res.Inner.Cost)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestVarBatchSequenceWindows(t *testing.T) {
	// A job with D=8 arriving at round 5 (halfBlock(4) index 1) moves to
	// round 8 with delay 4: window [8,12) ⊆ [5,13).
	seq := model.NewBuilder(2).Add(5, 0, 8, 1).MustBuild()
	batched, err := VarBatchSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	jobs := batched.Jobs()
	if len(jobs) != 1 {
		t.Fatal("job lost")
	}
	j := jobs[0]
	if j.Arrival != 8 || j.Delay != 4 {
		t.Errorf("job = %+v, want arrival 8 delay 4", j)
	}
	if !batched.IsBatched() {
		t.Error("VarBatch output is not batched")
	}
}

func TestVarBatchSequenceUnitDelayPassthrough(t *testing.T) {
	seq := model.NewBuilder(2).Add(5, 0, 1, 2).MustBuild()
	batched, err := VarBatchSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	j := batched.Jobs()[0]
	if j.Arrival != 5 || j.Delay != 1 {
		t.Errorf("unit-delay job moved: %+v", j)
	}
}

func TestVarBatchSequenceArbitraryDelays(t *testing.T) {
	// D=7 (not a power of two): h = floor-pow2(7)/2 = 2. A job at round 3
	// moves to round 4 with delay 2: window [4,6) ⊆ [3,10).
	seq := model.NewBuilder(2).Add(3, 0, 7, 1).MustBuild()
	batched, err := VarBatchSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	j := batched.Jobs()[0]
	if j.Arrival != 4 || j.Delay != 2 {
		t.Errorf("job = %+v, want arrival 4 delay 2", j)
	}
}

// TestVarBatchWindowContainmentProperty: every transformed job window is
// contained in its original window (the legality foundation of Theorem 3).
func TestVarBatchWindowContainmentProperty(t *testing.T) {
	f := func(arrivalRaw uint16, delayRaw uint8) bool {
		arrival := int64(arrivalRaw % 1000)
		delay := int64(delayRaw)%100 + 1
		seq := model.NewBuilder(2).Add(arrival, 0, delay, 1).MustBuild()
		batched, err := VarBatchSequence(seq)
		if err != nil {
			return false
		}
		j := batched.Jobs()[0]
		orig := seq.Jobs()[0]
		return j.Arrival >= orig.Arrival && j.Deadline() <= orig.Deadline()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestVarBatchOuterDropsLeInner: the final replayed schedule on the original
// instance never drops more than the batched inner run (the outer replay
// sees every job at least as early and keeps it at least as long).
func TestVarBatchOuterDropsLeInner(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed: seed, Delta: 3, Colors: 6, Rounds: 128,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunVarBatch(seq, 8, core.NewDeltaLRUEDF())
		if err != nil {
			t.Fatal(err)
		}
		// res.Inner is the innermost (rate-limited) run whose drop cost
		// upper-bounds the outer's by the two projection steps.
		if res.Cost.Drop > res.Inner.Cost.Drop {
			t.Errorf("seed %d: outer drops %d > inner drops %d",
				seed, res.Cost.Drop, res.Inner.Cost.Drop)
		}
		if res.Cost.Reconfig > res.Inner.Cost.Reconfig {
			t.Errorf("seed %d: outer reconfig %d > inner reconfig %d",
				seed, res.Cost.Reconfig, res.Inner.Cost.Reconfig)
		}
	}
}

// TestProjectReconfigs maps colors and leaves black untouched.
func TestProjectReconfigs(t *testing.T) {
	recs := []model.Reconfigure{
		{Round: 0, Resource: 0, To: 2},
		{Round: 1, Resource: 1, To: model.Black},
	}
	out := ProjectReconfigs(recs, func(c model.Color) model.Color { return c + 10 })
	if out[0].To != 12 {
		t.Errorf("mapped color = %v", out[0].To)
	}
	if out[1].To != model.Black {
		t.Errorf("black mapped to %v", out[1].To)
	}
}

func TestVarBatchPolicyRun(t *testing.T) {
	seq := model.NewBuilder(2).Add(0, 0, 4, 6).Add(3, 1, 8, 6).MustBuild()
	p := &VarBatchPolicy{NewInner: func() sim.Policy { return core.NewDeltaLRUEDF() }}
	res, err := p.Run(seq, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Audit(seq, res.Schedule); err != nil {
		t.Fatal(err)
	}
	bad := &VarBatchPolicy{}
	if _, err := bad.Run(seq, 8); err == nil {
		t.Fatal("nil factory accepted")
	}
}
