package reduce

import (
	"testing"
	"testing/quick"

	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/workload"
)

// aggregateCheck runs the Lemma 4.1 contract checks: T' is legal for I' with
// 3m resources, executes exactly as many jobs as T (Lemma 4.5), and its
// reconfiguration cost is O(cost(T)) (Lemma 4.6, generous constant).
func aggregateCheck(t *testing.T, seq *model.Sequence, m int) {
	t.Helper()
	inner, smap, err := DistributeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	src := offline.BestGreedy(seq, m)
	out, err := Aggregate(seq, inner, smap, src.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumResources != 3*m {
		t.Fatalf("resources = %d, want %d", out.NumResources, 3*m)
	}
	cost, err := model.Audit(inner, out)
	if err != nil {
		t.Fatalf("aggregate schedule illegal for I': %v", err)
	}
	if got, want := out.NumExecs(), src.Schedule.NumExecs(); got != want {
		t.Fatalf("executions: %d, want %d (Lemma 4.5 parity)", got, want)
	}
	bound := 16 * (src.Cost.Total() + seq.Delta())
	if cost.Reconfig > bound {
		t.Fatalf("reconfig %d > %d = 16·(cost(T)+Δ) (Lemma 4.6)", cost.Reconfig, bound)
	}
}

func TestAggregateOnGreedySchedules(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: seed, Delta: 3, Colors: 5, Rounds: 96,
			MinDelayExp: 1, MaxDelayExp: 4, Load: 1.6, // over-rate: buckets matter
		})
		if err != nil {
			t.Fatal(err)
		}
		aggregateCheck(t, seq, 1)
		aggregateCheck(t, seq, 2)
	}
}

func TestAggregateProperty(t *testing.T) {
	f := func(seedRaw uint8) bool {
		seq, err := workload.RandomBatched(workload.RandomConfig{
			Seed: int64(seedRaw), Delta: 2, Colors: 4, Rounds: 64,
			MinDelayExp: 1, MaxDelayExp: 3, Load: 2.2,
		})
		if err != nil || seq.NumJobs() == 0 {
			return true
		}
		inner, smap, err := DistributeSequence(seq)
		if err != nil {
			return false
		}
		src := offline.BestGreedy(seq, 2)
		out, err := Aggregate(seq, inner, smap, src.Schedule)
		if err != nil {
			t.Log(err)
			return false
		}
		if _, err := model.Audit(inner, out); err != nil {
			t.Log(err)
			return false
		}
		return out.NumExecs() == src.Schedule.NumExecs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAggregateLabelInheritance(t *testing.T) {
	// A single color served monochromatically across many blocks: the
	// aggregate schedule should configure (ℓ, 0) once and never reconfigure.
	b := model.NewBuilder(2)
	for r := int64(0); r < 64; r += 4 {
		b.Add(r, 0, 4, 4)
	}
	seq := b.MustBuild()
	inner, smap, err := DistributeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	// T: one resource, configured to color 0 at round 0 forever, executing
	// greedily.
	src := model.NewSchedule(1, 1)
	src.AddReconfig(0, 0, 0, 0)
	for r := int64(0); r < 64; r++ {
		src.AddExec(r, 0, 0, r) // job IDs are dense in arrival order: 4/batch
	}
	if _, err := model.Audit(seq, src); err != nil {
		t.Fatalf("hand schedule invalid: %v", err)
	}
	out, err := Aggregate(seq, inner, smap, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumReconfigs() != 1 {
		t.Errorf("reconfigs = %d, want 1 (label inheritance keeps the subcolor)", out.NumReconfigs())
	}
	if out.NumExecs() != 64 {
		t.Errorf("execs = %d", out.NumExecs())
	}
}

func TestAggregateRejections(t *testing.T) {
	seq := model.NewBuilder(1).Add(0, 0, 2, 1).MustBuild()
	inner, smap, err := DistributeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Aggregate(seq, inner, smap, model.NewSchedule(1, 2)); err == nil {
		t.Error("double-speed schedule accepted")
	}
	nonBatched := model.NewBuilder(1).Add(1, 0, 2, 1).MustBuild()
	if _, err := Aggregate(nonBatched, inner, smap, model.NewSchedule(1, 1)); err == nil {
		t.Error("non-batched instance accepted")
	}
}
