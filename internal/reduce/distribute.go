package reduce

import (
	"fmt"

	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/sim"
)

// SubcolorMap records the color translation of a Distribute reduction:
// inner color id -> the outer color it was split from, and back.
type SubcolorMap struct {
	toOuter []model.Color          // indexed by inner color id
	toInner map[subKey]model.Color // (outer color, bucket) -> inner color
}

type subKey struct {
	outer model.Color
	j     int64
}

// Outer returns the outer color an inner color projects to.
func (m *SubcolorMap) Outer(inner model.Color) model.Color {
	if inner < 0 || int(inner) >= len(m.toOuter) {
		panic(fmt.Sprintf("reduce: unknown inner color %v", inner))
	}
	return m.toOuter[inner]
}

// Inner returns the inner color of subcolor (outer, j), if it exists.
func (m *SubcolorMap) Inner(outer model.Color, j int64) (model.Color, bool) {
	c, ok := m.toInner[subKey{outer: outer, j: j}]
	return c, ok
}

// Buckets returns the number of subcolors outer was split into.
func (m *SubcolorMap) Buckets(outer model.Color) int64 {
	var n int64
	for { // bucket indices are dense from 0 (j = rank/D per request)
		if _, ok := m.toInner[subKey{outer: outer, j: n}]; !ok {
			return n
		}
		n++
	}
}

// NumInner returns the number of inner colors.
func (m *SubcolorMap) NumInner() int { return len(m.toOuter) }

// DistributeSequence builds the rate-limited instance I' from a batched
// instance I (Section 4.1, step 1): each color ℓ is split into subcolors
// (ℓ, j); the job with rank r within a request is assigned subcolor
// j = floor(r / D_ℓ), so at most D_ℓ jobs of each subcolor arrive per batch.
// Subcolors keep the delay bound D_ℓ. The returned sequence is always
// rate-limited.
func DistributeSequence(seq *model.Sequence) (*model.Sequence, *SubcolorMap, error) {
	if !seq.IsBatched() {
		return nil, nil, fmt.Errorf("reduce: Distribute requires a batched input sequence")
	}
	innerOf := make(map[subKey]model.Color)
	var toOuter []model.Color
	b := model.NewBuilder(seq.Delta())
	for r := int64(0); r < seq.NumRounds(); r++ {
		rank := make(map[model.Color]int64)
		for _, job := range seq.Request(r) {
			j := rank[job.Color] / job.Delay
			rank[job.Color]++
			k := subKey{outer: job.Color, j: j}
			inner, ok := innerOf[k]
			if !ok {
				inner = model.Color(len(toOuter))
				innerOf[k] = inner
				toOuter = append(toOuter, job.Color)
			}
			b.Add(r, inner, job.Delay, 1)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return out, &SubcolorMap{toOuter: toOuter, toInner: innerOf}, nil
}

// Result is the outcome of a reduction run: the audited outer schedule and
// cost on the original instance, plus the inner simulation for diagnostics.
type Result struct {
	Policy   string
	Cost     model.Cost
	Schedule *model.Schedule
	Inner    *sim.Result
	// InnerSeq is the reduced instance the inner policy ran on.
	InnerSeq *model.Sequence
}

// ProjectReconfigs maps inner reconfiguration records onto outer colors.
func ProjectReconfigs(recs []model.Reconfigure, mapColor func(model.Color) model.Color) []model.Reconfigure {
	out := make([]model.Reconfigure, len(recs))
	for i, r := range recs {
		out[i] = r
		if r.To != model.Black {
			out[i].To = mapColor(r.To)
		}
	}
	return out
}

// RunDistribute runs algorithm Distribute (Section 4.1) on a batched
// instance: build I', run the inner policy (ΔLRU-EDF in the paper) on I'
// with n resources, and project the resulting configurations back — whenever
// the inner schedule configures (ℓ, j), the outer schedule configures ℓ, and
// executions are re-derived greedily (interchangeable within a color). The
// outer cost never exceeds the inner cost (Lemma 4.2).
func RunDistribute(seq *model.Sequence, n int, policy sim.Policy) (*Result, error) {
	return RunDistributeObserved(seq, n, policy, nil)
}

// RunDistributeObserved is RunDistribute with an observer attached to the
// inner simulation (the only part of the reduction that runs the engine).
// The outer replay and audit are pure bookkeeping and are not instrumented.
// A nil observer is exactly RunDistribute.
func RunDistributeObserved(seq *model.Sequence, n int, policy sim.Policy, o *obs.Observer) (*Result, error) {
	innerSeq, m, err := DistributeSequence(seq)
	if err != nil {
		return nil, err
	}
	inner, err := sim.Run(sim.Env{Seq: innerSeq, Resources: n, Replication: 2, Speed: 1, Obs: o}, policy)
	if err != nil {
		return nil, err
	}
	outerRecs := ProjectReconfigs(inner.Schedule.Reconfigs, m.Outer)
	sched, err := sim.Replay(seq, n, 1, outerRecs)
	if err != nil {
		return nil, err
	}
	cost, err := model.Audit(seq, sched)
	if err != nil {
		return nil, err
	}
	return &Result{
		Policy:   "distribute(" + policy.Name() + ")",
		Cost:     cost,
		Schedule: sched,
		Inner:    inner,
		InnerSeq: innerSeq,
	}, nil
}
