// Package reduce implements the paper's reduction layers: Distribute
// (Section 4) reduces batched instances to rate-limited batched instances by
// splitting each color into subcolors with at most D_ℓ jobs per batch, and
// VarBatch (Section 5) reduces arbitrary instances to batched instances by
// delaying each job to the next half-block boundary of its (power-of-two
// rounded) delay bound. Both wrap an inner policy for the reduced instance
// and project its configuration timeline back onto the original instance,
// deriving executions with sim.Replay.
package reduce

// Block returns the index i such that round r lies in block(p, i), the p
// rounds starting from round i*p (Section 3.3).
func Block(p, r int64) int64 {
	if p <= 0 {
		panic("reduce: non-positive block size")
	}
	return r / p
}

// BlockStart returns the first round of block(p, i).
func BlockStart(p, i int64) int64 { return i * p }

// HalfBlock returns the index i such that round r lies in halfBlock(p, i),
// the p/2 rounds starting from round i*p/2 (Section 5.1). p must be an even
// positive number.
func HalfBlock(p, r int64) int64 {
	if p <= 0 || p%2 != 0 {
		panic("reduce: half-blocks need a positive even delay bound")
	}
	return r / (p / 2)
}

// HalfBlockStart returns the first round of halfBlock(p, i).
func HalfBlockStart(p, i int64) int64 { return i * (p / 2) }
