package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestJobDeadline(t *testing.T) {
	cases := []struct {
		job  Job
		want int64
	}{
		{Job{Arrival: 0, Delay: 1}, 1},
		{Job{Arrival: 5, Delay: 8}, 13},
		{Job{Arrival: 100, Delay: 1}, 101},
	}
	for _, c := range cases {
		if got := c.job.Deadline(); got != c.want {
			t.Errorf("Deadline(%+v) = %d, want %d", c.job, got, c.want)
		}
	}
}

func TestJobDeadlineProperty(t *testing.T) {
	f := func(arrival int32, delayRaw uint8) bool {
		a := int64(arrival)
		if a < 0 {
			a = -a
		}
		d := int64(delayRaw)%64 + 1
		j := Job{Arrival: a, Delay: d}
		// A job can execute in exactly d rounds: [arrival, deadline).
		return j.Deadline()-j.Arrival == d && j.Deadline() > j.Arrival
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJobValidate(t *testing.T) {
	valid := Job{ID: 1, Color: 0, Arrival: 0, Delay: 1}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		job  Job
		want string
	}{
		{"black color", Job{Color: Black, Delay: 1}, "black"},
		{"negative color", Job{Color: -7, Delay: 1}, "negative color"},
		{"negative arrival", Job{Color: 0, Arrival: -1, Delay: 1}, "negative arrival"},
		{"zero delay", Job{Color: 0, Delay: 0}, "delay bound"},
		{"negative delay", Job{Color: 0, Delay: -3}, "delay bound"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.job.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted an invalid job", c.job)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestColorString(t *testing.T) {
	if got := Black.String(); got != "black" {
		t.Errorf("Black.String() = %q", got)
	}
	if got := Color(3).String(); got != "c3" {
		t.Errorf("Color(3).String() = %q", got)
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, v := range []int64{1, 2, 4, 8, 1024, 1 << 40} {
		if !IsPowerOfTwo(v) {
			t.Errorf("IsPowerOfTwo(%d) = false", v)
		}
	}
	for _, v := range []int64{0, -1, -2, 3, 5, 6, 7, 9, 1000} {
		if IsPowerOfTwo(v) {
			t.Errorf("IsPowerOfTwo(%d) = true", v)
		}
	}
}

func TestFloorPowerOfTwo(t *testing.T) {
	cases := map[int64]int64{1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 7: 4, 8: 8, 9: 8, 1023: 512, 1024: 1024}
	for in, want := range cases {
		if got := FloorPowerOfTwo(in); got != want {
			t.Errorf("FloorPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFloorPowerOfTwoPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FloorPowerOfTwo(0) did not panic")
		}
	}()
	FloorPowerOfTwo(0)
}

func TestFloorPowerOfTwoProperty(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)%1_000_000 + 1
		p := FloorPowerOfTwo(v)
		return IsPowerOfTwo(p) && p <= v && 2*p > v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
