package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestScheduleRoundTrip(t *testing.T) {
	s := NewSchedule(3, 2)
	s.AddReconfig(0, 0, 0, 4)
	s.AddReconfig(2, 1, 1, Black)
	s.AddExec(0, 0, 0, 17)
	s.AddExec(5, 1, 2, 18)
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumResources != 3 || back.Speed != 2 {
		t.Errorf("header = %d/%d", back.NumResources, back.Speed)
	}
	if len(back.Reconfigs) != 2 || back.Reconfigs[1].To != Black {
		t.Errorf("reconfigs = %+v", back.Reconfigs)
	}
	if len(back.Execs) != 2 || back.Execs[1].JobID != 18 {
		t.Errorf("execs = %+v", back.Execs)
	}
}

func TestScheduleRoundTripAuditEquivalence(t *testing.T) {
	seq := twoJobSeq()
	s := NewSchedule(2, 1)
	s.AddReconfig(0, 0, 0, 0)
	s.AddExec(0, 0, 0, 0)
	s.AddExec(1, 0, 0, 1)
	s.AddReconfig(2, 0, 1, 1)
	s.AddExec(2, 0, 1, 2)
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := MustAudit(seq, s)
	b := MustAudit(seq, back)
	if a != b {
		t.Errorf("audit changed across serialization: %v vs %v", a, b)
	}
}

func TestReadScheduleErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"resources":0,"speed":1}`,
		`{"resources":1,"speed":-1}`,
	}
	for i, c := range cases {
		if _, err := ReadSchedule(strings.NewReader(c)); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
	// Missing speed defaults to 1.
	s, err := ReadSchedule(strings.NewReader(`{"resources":2}`))
	if err != nil || s.Speed != 1 {
		t.Errorf("default speed: %v %v", s, err)
	}
}
