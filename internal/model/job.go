// Package model defines the problem model for reconfigurable resource
// scheduling with variable delay bounds: unit jobs with per-color delay
// bounds, request sequences, schedules, cost accounting, and schedule audits.
//
// The model follows Section 2 of Plaxton, Sun, Tiwari, and Vin,
// "Reconfigurable Resource Scheduling with Variable Delay Bounds":
// each round consists of a drop phase, an arrival phase, a reconfiguration
// phase, and an execution phase. Jobs are unit sized, must run on a resource
// configured to their color, and are dropped at unit cost when their deadline
// round is reached. Reconfiguring a resource costs Delta.
package model

import "fmt"

// Color identifies a job category. Resources are configured to exactly one
// color at a time. The zero value is a valid color; Black is the
// distinguished initial color of every resource and never a job color.
type Color int32

// Black is the initial color of every resource. No job may be black.
const Black Color = -1

// String renders the color for diagnostics.
func (c Color) String() string {
	if c == Black {
		return "black"
	}
	return fmt.Sprintf("c%d", int32(c))
}

// Job is a unit job: it occupies one resource for one execution slot.
// Delay is the per-color delay bound D_ℓ; a job arriving in round r must be
// executed in some round in [r, r+Delay) or it is dropped at unit cost in the
// drop phase of round r+Delay.
type Job struct {
	// ID is unique within a Sequence and identifies the job in schedules
	// and audits.
	ID int64
	// Color is the job's category; never Black.
	Color Color
	// Arrival is the round in whose arrival phase the job appears.
	Arrival int64
	// Delay is the delay bound of the job's color (D_ℓ).
	Delay int64
}

// Deadline returns the round in whose drop phase the job is dropped if it has
// not been executed. The job may execute in rounds [Arrival, Deadline()).
func (j Job) Deadline() int64 { return j.Arrival + j.Delay }

// Validate reports whether the job is well formed.
func (j Job) Validate() error {
	if j.Color == Black {
		return fmt.Errorf("model: job %d has the black color", j.ID)
	}
	if j.Color < 0 {
		return fmt.Errorf("model: job %d has negative color %d", j.ID, j.Color)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("model: job %d has negative arrival %d", j.ID, j.Arrival)
	}
	if j.Delay <= 0 {
		return fmt.Errorf("model: job %d has non-positive delay bound %d", j.ID, j.Delay)
	}
	return nil
}
