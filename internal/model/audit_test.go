package model

import (
	"strings"
	"testing"
)

// twoJobSeq: 2 jobs of color 0 (D=4) at round 0, 1 job of color 1 (D=2) at
// round 2, Δ=3.
func twoJobSeq() *Sequence {
	return NewBuilder(3).Add(0, 0, 4, 2).Add(2, 1, 2, 1).MustBuild()
}

func TestAuditHappyPath(t *testing.T) {
	seq := twoJobSeq()
	s := NewSchedule(2, 1)
	s.AddReconfig(0, 0, 0, 0) // resource 0 -> color 0
	s.AddExec(0, 0, 0, 0)     // job 0 in round 0
	s.AddExec(1, 0, 0, 1)     // job 1 in round 1
	s.AddReconfig(2, 0, 1, 1) // resource 1 -> color 1
	s.AddExec(2, 0, 1, 2)     // job 2 in round 2
	cost, err := Audit(seq, s)
	if err != nil {
		t.Fatal(err)
	}
	want := Cost{Reconfig: 6, Drop: 0}
	if cost != want {
		t.Errorf("cost = %v, want %v", cost, want)
	}
}

func TestAuditDropsUnexecuted(t *testing.T) {
	seq := twoJobSeq()
	s := NewSchedule(1, 1)
	cost, err := Audit(seq, s)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Drop != 3 || cost.Reconfig != 0 {
		t.Errorf("cost = %v, want 3 drops", cost)
	}
}

func TestAuditViolations(t *testing.T) {
	seq := twoJobSeq()
	cases := []struct {
		name  string
		build func() *Schedule
		want  string
	}{
		{"wrong color", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 0, 0, 1) // color 1
			s.AddExec(0, 0, 0, 0)     // job 0 is color 0
			return s
		}, "configured"},
		{"unconfigured resource", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddExec(0, 0, 0, 0)
			return s
		}, "configured"},
		{"before arrival", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 0, 0, 1)
			s.AddExec(0, 0, 0, 2) // job 2 arrives in round 2
			return s
		}, "outside window"},
		{"after deadline", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 0, 0, 0)
			s.AddExec(4, 0, 0, 0) // color 0 deadline is round 4
			return s
		}, "outside window"},
		{"double execution", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 0, 0, 0)
			s.AddExec(0, 0, 0, 0)
			s.AddExec(1, 0, 0, 0)
			return s
		}, "twice"},
		{"slot reuse", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 0, 0, 0)
			s.AddExec(0, 0, 0, 0)
			s.AddExec(0, 0, 0, 1)
			return s
		}, "two executions"},
		{"unknown job", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 0, 0, 0)
			s.AddExec(0, 0, 0, 42)
			return s
		}, "unknown job"},
		{"no-op reconfig", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 0, 0, 0)
			s.AddReconfig(1, 0, 0, 0)
			return s
		}, "no-op"},
		{"bad resource", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 0, 5, 0)
			return s
		}, "resource"},
		{"bad mini", func() *Schedule {
			s := NewSchedule(1, 1)
			s.AddReconfig(0, 1, 0, 0) // mini 1 with speed 1
			return s
		}, "mini-round"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Audit(seq, c.build())
			if err == nil {
				t.Fatal("Audit accepted an illegal schedule")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestAuditDoubleSpeed(t *testing.T) {
	// With speed 2 a single resource can execute two jobs per round.
	seq := NewBuilder(1).Add(0, 0, 1, 2).MustBuild() // both must run in round 0
	s := NewSchedule(1, 2)
	s.AddReconfig(0, 0, 0, 0)
	s.AddExec(0, 0, 0, 0)
	s.AddExec(0, 1, 0, 1)
	cost, err := Audit(seq, s)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Drop != 0 {
		t.Errorf("double-speed schedule dropped %d jobs", cost.Drop)
	}
}

func TestAuditReconfigAfterExecutionSameMini(t *testing.T) {
	// A reconfiguration in (round, mini) applies before executions of that
	// (round, mini): executing the OLD color in the same mini must fail.
	seq := twoJobSeq()
	s := NewSchedule(1, 1)
	s.AddReconfig(0, 0, 0, 0)
	s.AddExec(0, 0, 0, 0)
	s.AddReconfig(2, 0, 0, 1)
	s.AddExec(2, 0, 0, 1) // job 1 is color 0; resource is color 1 in round 2
	if _, err := Audit(seq, s); err == nil {
		t.Fatal("execution of pre-reconfiguration color accepted")
	}
}

func TestMustAuditPanics(t *testing.T) {
	seq := twoJobSeq()
	s := NewSchedule(1, 1)
	s.AddExec(0, 0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAudit did not panic")
		}
	}()
	MustAudit(seq, s)
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{Reconfig: 3, Drop: 4}
	b := Cost{Reconfig: 1, Drop: 2}
	if a.Total() != 7 {
		t.Errorf("Total = %d", a.Total())
	}
	if got := a.Add(b); got != (Cost{Reconfig: 4, Drop: 6}) {
		t.Errorf("Add = %v", got)
	}
	if !strings.Contains(a.String(), "total=7") {
		t.Errorf("String = %q", a.String())
	}
}

func TestScheduleAccessors(t *testing.T) {
	s := NewSchedule(2, 1)
	s.AddReconfig(0, 0, 0, 3)
	s.AddExec(0, 0, 0, 7)
	if s.NumReconfigs() != 1 || s.NumExecs() != 1 {
		t.Errorf("counts = %d, %d", s.NumReconfigs(), s.NumExecs())
	}
	if ids := s.ExecutedJobIDs(); !ids[7] || len(ids) != 1 {
		t.Errorf("ExecutedJobIDs = %v", ids)
	}
}

func TestNewSchedulePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSchedule(0, 1) },
		func() { NewSchedule(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("NewSchedule accepted invalid parameters")
				}
			}()
			f()
		}()
	}
}
