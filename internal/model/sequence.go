package model

import (
	"fmt"
	"sort"
)

// Sequence is an input instance: a request sequence together with the
// per-color delay bounds and the reconfiguration cost Delta. Request i is the
// (possibly empty) set of jobs arriving in round i.
//
// Invariants (enforced by the Builder and checked by Validate):
//   - every job of color ℓ carries the same delay bound D_ℓ,
//   - job IDs are unique and dense in [0, NumJobs()),
//   - arrivals lie in [0, NumRounds()).
type Sequence struct {
	delta    int64
	requests [][]Job         // indexed by round
	delays   map[Color]int64 // D_ℓ per color
	numJobs  int
	horizon  int64 // first round by which every job has been dropped or could have run
}

// Delta returns the reconfiguration cost.
func (s *Sequence) Delta() int64 { return s.delta }

// NumRounds returns the number of arrival rounds (the length of the request
// sequence). Jobs may still be pending after the last arrival round; see
// Horizon.
func (s *Sequence) NumRounds() int64 { return int64(len(s.requests)) }

// Horizon returns the first round h such that every job's deadline is <= h.
// Simulating rounds [0, h] processes every drop; no work remains afterwards.
func (s *Sequence) Horizon() int64 { return s.horizon }

// NumJobs returns the total number of jobs in the sequence.
func (s *Sequence) NumJobs() int { return s.numJobs }

// Request returns the jobs arriving in round r. The returned slice must not
// be modified. Rounds beyond NumRounds return nil.
func (s *Sequence) Request(r int64) []Job {
	if r < 0 || r >= int64(len(s.requests)) {
		return nil
	}
	return s.requests[r]
}

// DelayBound returns the delay bound D_ℓ of color c and whether the color
// appears in the sequence.
func (s *Sequence) DelayBound(c Color) (int64, bool) {
	d, ok := s.delays[c]
	return d, ok
}

// Colors returns the colors appearing in the sequence in ascending order.
func (s *Sequence) Colors() []Color {
	out := make([]Color, 0, len(s.delays))
	for c := range s.delays {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// JobsOfColor returns the number of jobs of color c.
func (s *Sequence) JobsOfColor(c Color) int {
	n := 0
	for _, req := range s.requests {
		for _, j := range req {
			if j.Color == c {
				n++
			}
		}
	}
	return n
}

// Jobs returns all jobs in arrival order (by round, then by position within
// the request). The slice is freshly allocated.
func (s *Sequence) Jobs() []Job {
	out := make([]Job, 0, s.numJobs)
	for _, req := range s.requests {
		out = append(out, req...)
	}
	return out
}

// JobByID returns the job with the given ID.
func (s *Sequence) JobByID(id int64) (Job, bool) {
	for _, req := range s.requests {
		for _, j := range req {
			if j.ID == id {
				return j, true
			}
		}
	}
	return Job{}, false
}

// IsBatched reports whether every job of every color ℓ arrives at an integral
// multiple of D_ℓ (the batch field equals D_ℓ in the paper's notation).
func (s *Sequence) IsBatched() bool {
	for r, req := range s.requests {
		for _, j := range req {
			if int64(r)%j.Delay != 0 {
				return false
			}
		}
	}
	return true
}

// IsRateLimited reports whether the sequence is batched and, additionally, at
// most D_ℓ jobs of color ℓ arrive at each integral multiple of D_ℓ.
func (s *Sequence) IsRateLimited() bool {
	if !s.IsBatched() {
		return false
	}
	for _, req := range s.requests {
		perColor := map[Color]int64{}
		for _, j := range req {
			perColor[j.Color]++
		}
		for c, n := range perColor {
			if n > s.delays[c] {
				return false
			}
		}
	}
	return true
}

// PowerOfTwoDelays reports whether every delay bound is a power of two.
func (s *Sequence) PowerOfTwoDelays() bool {
	for _, d := range s.delays {
		if !IsPowerOfTwo(d) {
			return false
		}
	}
	return true
}

// Validate checks all sequence invariants. A sequence produced by a Builder
// always validates; Validate exists for sequences decoded from traces.
func (s *Sequence) Validate() error {
	if s.delta <= 0 {
		return fmt.Errorf("model: non-positive reconfiguration cost %d", s.delta)
	}
	seen := make(map[int64]bool, s.numJobs)
	count := 0
	for r, req := range s.requests {
		for _, j := range req {
			if err := j.Validate(); err != nil {
				return err
			}
			if j.Arrival != int64(r) {
				return fmt.Errorf("model: job %d in request %d has arrival %d", j.ID, r, j.Arrival)
			}
			if d, ok := s.delays[j.Color]; !ok || d != j.Delay {
				return fmt.Errorf("model: job %d of color %v has delay %d, want per-color bound %d", j.ID, j.Color, j.Delay, d)
			}
			if seen[j.ID] {
				return fmt.Errorf("model: duplicate job id %d", j.ID)
			}
			seen[j.ID] = true
			count++
		}
	}
	if count != s.numJobs {
		return fmt.Errorf("model: job count mismatch: counted %d, recorded %d", count, s.numJobs)
	}
	return nil
}

// IsPowerOfTwo reports whether v is a positive power of two.
func IsPowerOfTwo(v int64) bool { return v > 0 && v&(v-1) == 0 }

// FloorPowerOfTwo returns the largest power of two that is <= v; v must be
// positive.
func FloorPowerOfTwo(v int64) int64 {
	if v <= 0 {
		panic("model: FloorPowerOfTwo of non-positive value")
	}
	p := int64(1)
	for p<<1 > 0 && p<<1 <= v {
		p <<= 1
	}
	return p
}

// Builder incrementally constructs a Sequence. Jobs are assigned dense IDs in
// the order they are added. The zero Builder is not ready: use NewBuilder.
type Builder struct {
	delta    int64
	requests [][]Job
	delays   map[Color]int64
	nextID   int64
	err      error
}

// NewBuilder returns a Builder for a sequence with reconfiguration cost delta.
func NewBuilder(delta int64) *Builder {
	return &Builder{delta: delta, delays: make(map[Color]int64)}
}

// Add appends count jobs of the given color and delay bound arriving in the
// given round. The first Add for a color fixes its delay bound; later Adds
// must agree. Errors are deferred to Build.
func (b *Builder) Add(round int64, c Color, delay int64, count int) *Builder {
	if b.err != nil {
		return b
	}
	if round < 0 {
		b.err = fmt.Errorf("model: negative round %d", round)
		return b
	}
	if c < 0 {
		b.err = fmt.Errorf("model: invalid job color %v", c)
		return b
	}
	if delay <= 0 {
		b.err = fmt.Errorf("model: non-positive delay %d for color %v", delay, c)
		return b
	}
	if count < 0 {
		b.err = fmt.Errorf("model: negative job count %d", count)
		return b
	}
	if d, ok := b.delays[c]; ok && d != delay {
		b.err = fmt.Errorf("model: color %v has delay bound %d, cannot add jobs with delay %d", c, d, delay)
		return b
	}
	b.delays[c] = delay
	for int64(len(b.requests)) <= round {
		b.requests = append(b.requests, nil)
	}
	for i := 0; i < count; i++ {
		b.requests[round] = append(b.requests[round], Job{ID: b.nextID, Color: c, Arrival: round, Delay: delay})
		b.nextID++
	}
	return b
}

// Build finalizes the sequence. It returns the first error recorded by Add.
func (b *Builder) Build() (*Sequence, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.delta <= 0 {
		return nil, fmt.Errorf("model: non-positive reconfiguration cost %d", b.delta)
	}
	s := &Sequence{
		delta:    b.delta,
		requests: b.requests,
		delays:   b.delays,
		numJobs:  int(b.nextID),
	}
	for _, req := range b.requests {
		for _, j := range req {
			if j.Deadline() > s.horizon {
				s.horizon = j.Deadline()
			}
		}
	}
	return s, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// with statically valid inputs. User-reachable paths (the cmd tools, trace
// readers, and the experiment harness) use Build and propagate the error.
func (b *Builder) MustBuild() *Sequence {
	s, err := b.Build()
	if err != nil {
		panic(fmt.Errorf("model: build failed: %w", err))
	}
	return s
}
