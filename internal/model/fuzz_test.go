package model

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSchedule hardens the schedule parser: arbitrary bytes must either
// fail cleanly or produce a schedule that Audit can process (accept or
// reject) without panicking.
func FuzzReadSchedule(f *testing.F) {
	good := NewSchedule(2, 1)
	good.AddReconfig(0, 0, 0, 0)
	good.AddExec(0, 0, 0, 0)
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"resources":1,"speed":1,"reconfigs":[{"round":0,"resource":0,"to":0}]}`)
	f.Add(`{"resources":1,"speed":2,"execs":[{"round":5,"mini":1,"resource":0,"job":3}]}`)
	f.Add(`{"resources":0}`)
	f.Add(`nonsense`)
	f.Add(`{"resources":1,"reconfigs":[{"round":-1,"resource":9,"to":-5}]}`)
	// Outage serialization and hardening corners: legal outages, inverted and
	// out-of-range intervals, wrong resources, oversized declarations.
	faulty := NewSchedule(2, 1)
	faulty.AddOutage(0, 1, 3)
	faulty.AddReconfig(3, 0, 0, 0)
	faulty.AddExec(3, 0, 0, 1)
	buf.Reset()
	if err := WriteSchedule(&buf, faulty); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"resources":2,"outages":[{"resource":0,"start":1,"end":3}]}`)
	f.Add(`{"resources":2,"outages":[{"resource":0,"start":3,"end":1}]}`)
	f.Add(`{"resources":2,"outages":[{"resource":5,"start":0,"end":1}]}`)
	f.Add(`{"resources":2,"outages":[{"resource":0,"start":-1,"end":2}]}`)
	f.Add(`{"resources":2,"outages":[{"resource":0,"start":0,"end":1099511627777}]}`)
	f.Add(`{"resources":2097152}`)
	f.Add(`{"resources":1,"speed":99}`)
	f.Add(`{"resources":1,"execs":[{"round":1099511627777,"resource":0,"job":0}]}`)
	f.Add(`{"resources":1,"execs":[{"round":0,"resource":0,"job":-7}]}`)

	seq := NewBuilder(2).Add(0, 0, 4, 2).MustBuild()
	f.Fuzz(func(t *testing.T, data string) {
		sched, err := ReadSchedule(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted schedules must survive a write/read round trip.
		var rt bytes.Buffer
		if err := WriteSchedule(&rt, sched); err != nil {
			t.Fatalf("write-back of accepted schedule failed: %v", err)
		}
		if _, err := ReadSchedule(&rt); err != nil {
			t.Fatalf("round trip of accepted schedule rejected: %v", err)
		}
		// Audit must terminate with a verdict, never panic.
		if cost, err := Audit(seq, sched); err == nil {
			if cost.Reconfig < 0 || cost.Drop < 0 {
				t.Fatalf("negative cost %v from input %q", cost, data)
			}
		}
	})
}

// FuzzBuilderAdd hardens the sequence builder against arbitrary argument
// streams: Build either fails or yields a valid sequence.
func FuzzBuilderAdd(f *testing.F) {
	f.Add(int64(0), int32(0), int64(2), 3, int64(4), int32(1), int64(4), 2)
	f.Add(int64(-1), int32(0), int64(1), 1, int64(0), int32(-2), int64(0), -1)
	f.Fuzz(func(t *testing.T, r1 int64, c1 int32, d1 int64, n1 int, r2 int64, c2 int32, d2 int64, n2 int) {
		b := NewBuilder(2)
		b.Add(r1, Color(c1), d1, n1)
		b.Add(r2, Color(c2), d2, n2)
		seq, err := b.Build()
		if err != nil {
			return
		}
		if verr := seq.Validate(); verr != nil {
			t.Fatalf("builder produced invalid sequence: %v", verr)
		}
	})
}
