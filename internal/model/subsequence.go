package model

// Filter returns the subsequence of s containing exactly the jobs for which
// keep returns true, preserving arrival rounds, per-color delay bounds, and
// Delta. Job IDs are freshly assigned (dense), as in any Sequence.
//
// Filtering is the analysis's main surgical tool: Theorem 1 splits an input
// into the jobs of sub-Δ colors and the rest; Lemma 3.10 extracts the
// eligible jobs; Lemma 3.6 states that dropping jobs never increases OPT's
// drop cost. The corresponding tests exercise those statements through
// Filter.
func (s *Sequence) Filter(keep func(Job) bool) *Sequence {
	b := NewBuilder(s.delta)
	for r := int64(0); r < s.NumRounds(); r++ {
		for _, j := range s.Request(r) {
			if keep(j) {
				b.Add(r, j.Color, j.Delay, 1)
			}
		}
	}
	return b.MustBuild()
}

// FilterColors returns the subsequence with only the given colors.
func (s *Sequence) FilterColors(colors ...Color) *Sequence {
	set := make(map[Color]bool, len(colors))
	for _, c := range colors {
		set[c] = true
	}
	return s.Filter(func(j Job) bool { return set[j.Color] })
}

// SplitByColorVolume splits s into (alpha, beta) where alpha holds the jobs
// of colors with fewer than threshold jobs in s and beta the rest — the
// decomposition used in the proof of Theorem 1 with threshold Δ.
func (s *Sequence) SplitByColorVolume(threshold int64) (alpha, beta *Sequence) {
	small := make(map[Color]bool)
	for _, c := range s.Colors() {
		if int64(s.JobsOfColor(c)) < threshold {
			small[c] = true
		}
	}
	alpha = s.Filter(func(j Job) bool { return small[j.Color] })
	beta = s.Filter(func(j Job) bool { return !small[j.Color] })
	return alpha, beta
}

// Canonical returns a sequence with the same jobs but canonical job IDs:
// round-major, ascending color within each round. The JSON trace format
// groups jobs by (round, color) and reassigns IDs in this order on load, so
// a schedule recorded against a canonical sequence stays valid across a
// trace round trip.
func (s *Sequence) Canonical() *Sequence {
	b := NewBuilder(s.delta)
	for r := int64(0); r < s.NumRounds(); r++ {
		counts := map[Color]int{}
		for _, j := range s.Request(r) {
			counts[j.Color]++
		}
		colors := make([]Color, 0, len(counts))
		//lint:ignore determinism colors are sorted by sortColors right below
		for c := range counts {
			colors = append(colors, c)
		}
		sortColors(colors)
		for _, c := range colors {
			d, _ := s.DelayBound(c)
			b.Add(r, c, d, counts[c])
		}
	}
	return b.MustBuild()
}

func sortColors(colors []Color) {
	for i := 1; i < len(colors); i++ {
		for j := i; j > 0 && colors[j] < colors[j-1]; j-- {
			colors[j], colors[j-1] = colors[j-1], colors[j]
		}
	}
}

// Truncate returns the prefix of s containing only jobs arriving before
// round cut.
func (s *Sequence) Truncate(cut int64) *Sequence {
	return s.Filter(func(j Job) bool { return j.Arrival < cut })
}

// Concat appends the arrivals of other, shifted by offset rounds, to a copy
// of s. Colors shared between the two sequences must agree on delay bounds;
// Concat panics otherwise (the Builder's invariant).
func (s *Sequence) Concat(other *Sequence, offset int64) *Sequence {
	b := NewBuilder(s.delta)
	for r := int64(0); r < s.NumRounds(); r++ {
		for _, j := range s.Request(r) {
			b.Add(r, j.Color, j.Delay, 1)
		}
	}
	for r := int64(0); r < other.NumRounds(); r++ {
		for _, j := range other.Request(r) {
			b.Add(r+offset, j.Color, j.Delay, 1)
		}
	}
	return b.MustBuild()
}
