package model

import (
	"fmt"
	"sort"
)

// Audit replays a schedule against a sequence and independently verifies its
// legality, then re-derives its cost. It checks that
//
//   - events are ordered by (round, mini-round),
//   - every executed job exists, is executed at most once, on a resource
//     configured to the job's color at that instant, and strictly within
//     [arrival, deadline),
//   - at most one execution per (resource, round, mini-round),
//   - executions in an (round, mini) slot happen at or after the job's
//     arrival phase (arrival round allowed, since arrivals precede
//     executions within a round),
//   - no execution or reconfiguration lands on a resource while it is down
//     (within one of the schedule's recorded outages), and a resource's
//     configuration is wiped to black when an outage begins.
//
// The returned cost charges Delta per reconfiguration record and 1 per job
// never executed. Audit is the single source of truth for costs: engines and
// offline solvers are validated against it in tests.
func Audit(seq *Sequence, sched *Schedule) (Cost, error) {
	if sched.NumResources <= 0 {
		return Cost{}, fmt.Errorf("model: audit: schedule has no resources")
	}
	if sched.Speed < 1 {
		return Cost{}, fmt.Errorf("model: audit: invalid speed %d", sched.Speed)
	}

	// Index jobs by ID.
	jobs := make(map[int64]Job, seq.NumJobs())
	for _, j := range seq.Jobs() {
		jobs[j.ID] = j
	}

	// Validate the outage records: in range, well-ordered, and non-overlapping
	// per resource.
	byResource := make(map[int][]Outage, len(sched.Outages))
	for i, o := range sched.Outages {
		if o.Resource < 0 || o.Resource >= sched.NumResources {
			return Cost{}, fmt.Errorf("model: audit: outage %d targets resource %d of %d", i, o.Resource, sched.NumResources)
		}
		if o.Start < 0 || o.End <= o.Start {
			return Cost{}, fmt.Errorf("model: audit: outage %d has invalid interval [%d,%d)", i, o.Start, o.End)
		}
		byResource[o.Resource] = append(byResource[o.Resource], o)
	}
	for r, outs := range byResource {
		sort.Slice(outs, func(i, j int) bool { return outs[i].Start < outs[j].Start })
		for i := 1; i < len(outs); i++ {
			if outs[i].Start < outs[i-1].End {
				return Cost{}, fmt.Errorf("model: audit: overlapping outages on resource %d: [%d,%d) and [%d,%d)",
					r, outs[i-1].Start, outs[i-1].End, outs[i].Start, outs[i].End)
			}
		}
	}

	// Merge outage transitions, reconfigurations, and executions into a
	// single timeline keyed by (round, mini, phase). Fault transitions happen
	// at the start of a round (mini -1), repairs before crashes so adjacent
	// outages compose; reconfigurations precede executions within a mini.
	type event struct {
		round int64
		mini  int
		kind  int // 0 = repair, 1 = crash, 2 = reconfig, 3 = exec
		idx   int
	}
	events := make([]event, 0, len(sched.Reconfigs)+len(sched.Execs)+2*len(sched.Outages))
	for i, o := range sched.Outages {
		events = append(events, event{round: o.Start, mini: -1, kind: 1, idx: i})
		events = append(events, event{round: o.End, mini: -1, kind: 0, idx: i})
	}
	for i, r := range sched.Reconfigs {
		if r.Resource < 0 || r.Resource >= sched.NumResources {
			return Cost{}, fmt.Errorf("model: audit: reconfig %d targets resource %d of %d", i, r.Resource, sched.NumResources)
		}
		if r.Mini < 0 || r.Mini >= sched.Speed {
			return Cost{}, fmt.Errorf("model: audit: reconfig %d has mini-round %d with speed %d", i, r.Mini, sched.Speed)
		}
		if r.Round < 0 {
			return Cost{}, fmt.Errorf("model: audit: reconfig %d in negative round", i)
		}
		events = append(events, event{round: r.Round, mini: r.Mini, kind: 2, idx: i})
	}
	for i, e := range sched.Execs {
		if e.Resource < 0 || e.Resource >= sched.NumResources {
			return Cost{}, fmt.Errorf("model: audit: exec %d targets resource %d of %d", i, e.Resource, sched.NumResources)
		}
		if e.Mini < 0 || e.Mini >= sched.Speed {
			return Cost{}, fmt.Errorf("model: audit: exec %d has mini-round %d with speed %d", i, e.Mini, sched.Speed)
		}
		events = append(events, event{round: e.Round, mini: e.Mini, kind: 3, idx: i})
	}
	sort.SliceStable(events, func(a, b int) bool {
		ea, eb := events[a], events[b]
		if ea.round != eb.round {
			return ea.round < eb.round
		}
		if ea.mini != eb.mini {
			return ea.mini < eb.mini
		}
		return ea.kind < eb.kind
	})

	config := make([]Color, sched.NumResources)
	for i := range config {
		config[i] = Black
	}
	down := make([]bool, sched.NumResources)
	executed := make(map[int64]bool, len(sched.Execs))
	type slot struct {
		round    int64
		mini     int
		resource int
	}
	usedSlot := make(map[slot]bool, len(sched.Execs))

	var cost Cost
	for _, ev := range events {
		switch ev.kind {
		case 0: // repair: the resource returns, blank (its color was wiped at crash)
			down[sched.Outages[ev.idx].Resource] = false
			continue
		case 1: // crash: the resource goes down and loses its configuration
			o := sched.Outages[ev.idx]
			down[o.Resource] = true
			config[o.Resource] = Black
			continue
		case 2:
			r := sched.Reconfigs[ev.idx]
			if down[r.Resource] {
				return Cost{}, fmt.Errorf("model: audit: reconfiguration of down resource %d in round %d", r.Resource, r.Round)
			}
			if config[r.Resource] == r.To {
				return Cost{}, fmt.Errorf("model: audit: no-op reconfiguration of resource %d to %v in round %d", r.Resource, r.To, r.Round)
			}
			config[r.Resource] = r.To
			cost.Reconfig += seq.Delta()
			continue
		}
		e := sched.Execs[ev.idx]
		if down[e.Resource] {
			return Cost{}, fmt.Errorf("model: audit: execution of job %d on down resource %d in round %d", e.JobID, e.Resource, e.Round)
		}
		j, ok := jobs[e.JobID]
		if !ok {
			return Cost{}, fmt.Errorf("model: audit: execution of unknown job %d", e.JobID)
		}
		if executed[e.JobID] {
			return Cost{}, fmt.Errorf("model: audit: job %d executed twice", e.JobID)
		}
		executed[e.JobID] = true
		if config[e.Resource] != j.Color {
			return Cost{}, fmt.Errorf("model: audit: job %d (color %v) executed on resource %d configured %v in round %d",
				e.JobID, j.Color, e.Resource, config[e.Resource], e.Round)
		}
		if e.Round < j.Arrival || e.Round >= j.Deadline() {
			return Cost{}, fmt.Errorf("model: audit: job %d executed in round %d outside window [%d,%d)",
				e.JobID, e.Round, j.Arrival, j.Deadline())
		}
		sl := slot{round: e.Round, mini: e.Mini, resource: e.Resource}
		if usedSlot[sl] {
			return Cost{}, fmt.Errorf("model: audit: two executions on resource %d in round %d mini %d", e.Resource, e.Round, e.Mini)
		}
		usedSlot[sl] = true
	}

	cost.Drop = int64(seq.NumJobs() - len(executed))
	return cost, nil
}

// MustAudit is Audit but panics on a legality violation. It is a helper for
// tests and generators with statically legal schedules; user-reachable paths
// (the cmd tools and the experiment harness) use Audit and propagate the
// error.
func MustAudit(seq *Sequence, sched *Schedule) Cost {
	c, err := Audit(seq, sched)
	if err != nil {
		panic(fmt.Errorf("model: audit failed: %w", err))
	}
	return c
}
