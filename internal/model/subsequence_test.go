package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleSeq() *Sequence {
	return NewBuilder(3).
		Add(0, 0, 2, 2).
		Add(0, 1, 4, 5).
		Add(2, 0, 2, 1).
		Add(4, 2, 4, 1).
		MustBuild()
}

func TestFilterColors(t *testing.T) {
	s := sampleSeq()
	sub := s.FilterColors(0)
	if sub.NumJobs() != 3 {
		t.Errorf("jobs = %d", sub.NumJobs())
	}
	if len(sub.Colors()) != 1 || sub.Colors()[0] != 0 {
		t.Errorf("colors = %v", sub.Colors())
	}
	if d, ok := sub.DelayBound(0); !ok || d != 2 {
		t.Errorf("delay = %d, %v", d, ok)
	}
	if sub.Delta() != s.Delta() {
		t.Error("delta changed")
	}
}

func TestSplitByColorVolume(t *testing.T) {
	s := sampleSeq()
	alpha, beta := s.SplitByColorVolume(3) // colors with < 3 jobs -> alpha
	// color 0 has 3 jobs (beta), color 1 has 5 (beta), color 2 has 1 (alpha)
	if alpha.NumJobs() != 1 || beta.NumJobs() != 8 {
		t.Errorf("alpha/beta = %d/%d", alpha.NumJobs(), beta.NumJobs())
	}
	if alpha.NumJobs()+beta.NumJobs() != s.NumJobs() {
		t.Error("split lost jobs")
	}
}

func TestTruncate(t *testing.T) {
	s := sampleSeq()
	pre := s.Truncate(2)
	if pre.NumJobs() != 7 { // rounds 0 only: 2 + 5
		t.Errorf("jobs = %d", pre.NumJobs())
	}
}

func TestConcat(t *testing.T) {
	a := NewBuilder(2).Add(0, 0, 2, 1).MustBuild()
	b := NewBuilder(2).Add(0, 0, 2, 2).Add(2, 1, 4, 1).MustBuild()
	c := a.Concat(b, 4)
	if c.NumJobs() != 4 {
		t.Errorf("jobs = %d", c.NumJobs())
	}
	if len(c.Request(4)) != 2 || len(c.Request(6)) != 1 {
		t.Errorf("shifted arrivals wrong: %d @4, %d @6", len(c.Request(4)), len(c.Request(6)))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcatDelayConflictPanics(t *testing.T) {
	a := NewBuilder(2).Add(0, 0, 2, 1).MustBuild()
	b := NewBuilder(2).Add(0, 0, 4, 1).MustBuild() // color 0 with different delay
	defer func() {
		if recover() == nil {
			t.Fatal("delay conflict not caught")
		}
	}()
	a.Concat(b, 0)
}

// TestFilterPartitionProperty: Filter(p) and Filter(!p) partition the jobs,
// and both validate.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(2)
		for i := 0; i < 25; i++ {
			c := Color(rng.Intn(4))
			b.Add(int64(rng.Intn(20)), c, int64(1)<<uint(int(c)%3), rng.Intn(3))
		}
		s := b.MustBuild()
		pred := func(j Job) bool { return j.Color%2 == 0 }
		yes := s.Filter(pred)
		no := s.Filter(func(j Job) bool { return !pred(j) })
		return yes.Validate() == nil && no.Validate() == nil &&
			yes.NumJobs()+no.NumJobs() == s.NumJobs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalStableUnderTraceOrder(t *testing.T) {
	// Build a sequence with interleaved colors in one round; Canonical must
	// reassign IDs round-major, color-ascending, and be idempotent.
	s := NewBuilder(2).
		Add(0, 2, 4, 1).
		Add(0, 0, 2, 2).
		Add(0, 1, 4, 1).
		Add(2, 0, 2, 1).
		MustBuild()
	c := s.Canonical()
	if c.NumJobs() != s.NumJobs() {
		t.Fatal("canonicalization lost jobs")
	}
	jobs := c.Request(0)
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Color < jobs[i-1].Color {
			t.Fatalf("round 0 not color-sorted: %v", jobs)
		}
	}
	c2 := c.Canonical()
	ja, jb := c.Jobs(), c2.Jobs()
	for i := range ja {
		if ja[i] != jb[i] {
			t.Fatalf("Canonical not idempotent at job %d: %+v vs %+v", i, ja[i], jb[i])
		}
	}
}
