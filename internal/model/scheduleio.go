package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// scheduleJSON is the on-disk representation of a Schedule.
type scheduleJSON struct {
	Resources int               `json:"resources"`
	Speed     int               `json:"speed"`
	Reconfigs []reconfigureJSON `json:"reconfigs"`
	Execs     []executionJSON   `json:"execs"`
}

type reconfigureJSON struct {
	Round    int64 `json:"round"`
	Mini     int   `json:"mini,omitempty"`
	Resource int   `json:"resource"`
	To       int32 `json:"to"`
}

type executionJSON struct {
	Round    int64 `json:"round"`
	Mini     int   `json:"mini,omitempty"`
	Resource int   `json:"resource"`
	JobID    int64 `json:"job"`
}

// WriteSchedule serializes a schedule as indented JSON. Together with the
// workload trace format this makes every experiment's output replayable and
// re-auditable out of process.
func WriteSchedule(w io.Writer, s *Schedule) error {
	out := scheduleJSON{Resources: s.NumResources, Speed: s.Speed}
	for _, r := range s.Reconfigs {
		out.Reconfigs = append(out.Reconfigs, reconfigureJSON{Round: r.Round, Mini: r.Mini, Resource: r.Resource, To: int32(r.To)})
	}
	for _, e := range s.Execs {
		out.Execs = append(out.Execs, executionJSON{Round: e.Round, Mini: e.Mini, Resource: e.Resource, JobID: e.JobID})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadSchedule parses a JSON schedule.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	var in scheduleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding schedule: %w", err)
	}
	if in.Resources <= 0 {
		return nil, fmt.Errorf("model: schedule declares %d resources", in.Resources)
	}
	if in.Speed == 0 {
		in.Speed = 1
	}
	if in.Speed < 1 {
		return nil, fmt.Errorf("model: schedule declares speed %d", in.Speed)
	}
	s := NewSchedule(in.Resources, in.Speed)
	for _, r := range in.Reconfigs {
		s.AddReconfig(r.Round, r.Mini, r.Resource, Color(r.To))
	}
	for _, e := range in.Execs {
		s.AddExec(e.Round, e.Mini, e.Resource, e.JobID)
	}
	return s, nil
}
