package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// Hard ceilings for decoded schedules. Schedules beyond these sizes are not
// produced by any generator in this repository; rejecting them up front keeps
// a corrupted or hostile file from driving huge allocations downstream.
const (
	maxScheduleResources = 1 << 20
	maxScheduleSpeed     = 16
	maxScheduleRound     = int64(1) << 40
)

// scheduleJSON is the on-disk representation of a Schedule.
type scheduleJSON struct {
	Resources int               `json:"resources"`
	Speed     int               `json:"speed"`
	Reconfigs []reconfigureJSON `json:"reconfigs"`
	Execs     []executionJSON   `json:"execs"`
	Outages   []outageJSON      `json:"outages,omitempty"`
}

type reconfigureJSON struct {
	Round    int64 `json:"round"`
	Mini     int   `json:"mini,omitempty"`
	Resource int   `json:"resource"`
	To       int32 `json:"to"`
}

type executionJSON struct {
	Round    int64 `json:"round"`
	Mini     int   `json:"mini,omitempty"`
	Resource int   `json:"resource"`
	JobID    int64 `json:"job"`
}

type outageJSON struct {
	Resource int   `json:"resource"`
	Start    int64 `json:"start"`
	End      int64 `json:"end"`
}

// WriteSchedule serializes a schedule as indented JSON. Together with the
// workload trace format this makes every experiment's output replayable and
// re-auditable out of process.
func WriteSchedule(w io.Writer, s *Schedule) error {
	out := scheduleJSON{Resources: s.NumResources, Speed: s.Speed}
	for _, r := range s.Reconfigs {
		out.Reconfigs = append(out.Reconfigs, reconfigureJSON{Round: r.Round, Mini: r.Mini, Resource: r.Resource, To: int32(r.To)})
	}
	for _, e := range s.Execs {
		out.Execs = append(out.Execs, executionJSON{Round: e.Round, Mini: e.Mini, Resource: e.Resource, JobID: e.JobID})
	}
	for _, o := range s.Outages {
		out.Outages = append(out.Outages, outageJSON{Resource: o.Resource, Start: o.Start, End: o.End})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadSchedule parses a JSON schedule. Malformed input — out-of-range
// resources, negative rounds, unknown (sub-black) colors, absurd sizes — is
// rejected with an error rather than deferred to a downstream panic.
func ReadSchedule(r io.Reader) (*Schedule, error) {
	var in scheduleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding schedule: %w", err)
	}
	if in.Resources <= 0 {
		return nil, fmt.Errorf("model: schedule declares %d resources", in.Resources)
	}
	if in.Resources > maxScheduleResources {
		return nil, fmt.Errorf("model: schedule declares %d resources (limit %d)", in.Resources, maxScheduleResources)
	}
	if in.Speed == 0 {
		in.Speed = 1
	}
	if in.Speed < 1 || in.Speed > maxScheduleSpeed {
		return nil, fmt.Errorf("model: schedule declares speed %d (want 1..%d)", in.Speed, maxScheduleSpeed)
	}
	s := NewSchedule(in.Resources, in.Speed)
	for i, r := range in.Reconfigs {
		if r.Round < 0 || r.Round > maxScheduleRound {
			return nil, fmt.Errorf("model: reconfig %d has round %d out of range", i, r.Round)
		}
		if r.Resource < 0 || r.Resource >= in.Resources {
			return nil, fmt.Errorf("model: reconfig %d targets resource %d of %d", i, r.Resource, in.Resources)
		}
		if r.Mini < 0 || r.Mini >= in.Speed {
			return nil, fmt.Errorf("model: reconfig %d has mini-round %d with speed %d", i, r.Mini, in.Speed)
		}
		if Color(r.To) < Black {
			return nil, fmt.Errorf("model: reconfig %d recolors to unknown color %d", i, r.To)
		}
		s.AddReconfig(r.Round, r.Mini, r.Resource, Color(r.To))
	}
	for i, e := range in.Execs {
		if e.Round < 0 || e.Round > maxScheduleRound {
			return nil, fmt.Errorf("model: exec %d has round %d out of range", i, e.Round)
		}
		if e.Resource < 0 || e.Resource >= in.Resources {
			return nil, fmt.Errorf("model: exec %d targets resource %d of %d", i, e.Resource, in.Resources)
		}
		if e.Mini < 0 || e.Mini >= in.Speed {
			return nil, fmt.Errorf("model: exec %d has mini-round %d with speed %d", i, e.Mini, in.Speed)
		}
		if e.JobID < 0 {
			return nil, fmt.Errorf("model: exec %d has negative job id %d", i, e.JobID)
		}
		s.AddExec(e.Round, e.Mini, e.Resource, e.JobID)
	}
	for i, o := range in.Outages {
		if o.Resource < 0 || o.Resource >= in.Resources {
			return nil, fmt.Errorf("model: outage %d targets resource %d of %d", i, o.Resource, in.Resources)
		}
		if o.Start < 0 || o.End <= o.Start || o.End > maxScheduleRound {
			return nil, fmt.Errorf("model: outage %d has invalid interval [%d,%d)", i, o.Start, o.End)
		}
		s.AddOutage(o.Resource, o.Start, o.End)
	}
	return s, nil
}
