package model

import "fmt"

// Cost aggregates the two cost components of a schedule.
type Cost struct {
	Reconfig int64 // total reconfiguration cost (Delta per resource recolor)
	Drop     int64 // total drop cost (1 per dropped job)
}

// Total returns Reconfig + Drop.
func (c Cost) Total() int64 { return c.Reconfig + c.Drop }

// Add returns the component-wise sum of c and o.
func (c Cost) Add(o Cost) Cost {
	return Cost{Reconfig: c.Reconfig + o.Reconfig, Drop: c.Drop + o.Drop}
}

// String renders the cost for diagnostics.
func (c Cost) String() string {
	return fmt.Sprintf("cost{reconfig=%d drop=%d total=%d}", c.Reconfig, c.Drop, c.Total())
}

// Reconfigure records a single resource recoloring in a schedule. It takes
// effect in the given mini-round of the given round, before executions of
// that mini-round.
type Reconfigure struct {
	Round    int64
	Mini     int   // mini-round index within the round (0 for uni-speed)
	Resource int   // resource index
	To       Color // new color
}

// Execution records one job execution.
type Execution struct {
	Round    int64
	Mini     int
	Resource int
	JobID    int64
}

// Outage records a resource failure: the resource is down during rounds
// [Start, End). A down resource executes nothing and may not be
// reconfigured, and its configured color is wiped when the outage begins
// (on repair it restarts black). Schedules produced under a fault plan
// carry their outages so audits and replays can verify that no decision
// touched a dead resource.
type Outage struct {
	Resource int
	Start    int64 // first down round
	End      int64 // first up round after the outage (exclusive)
}

// Schedule is a complete record of the decisions of an algorithm on a
// sequence: every reconfiguration and every job execution, in order. Costs
// are re-derivable from the record (see Audit), which makes schedules the
// common currency between online policies, reductions, and offline solvers.
type Schedule struct {
	NumResources int
	Speed        int // mini-rounds per round: 1 (uni-speed) or 2 (double-speed)
	Reconfigs    []Reconfigure
	Execs        []Execution
	// Outages are the resource downtimes the schedule was produced under
	// (empty for fault-free runs). Audit enforces that no reconfiguration or
	// execution lands on a down resource.
	Outages []Outage
}

// NewSchedule returns an empty schedule for n resources at the given speed.
func NewSchedule(n, speed int) *Schedule {
	if n <= 0 {
		panic("model: schedule needs at least one resource")
	}
	if speed < 1 {
		panic("model: schedule speed must be >= 1")
	}
	return &Schedule{NumResources: n, Speed: speed}
}

// AddReconfig appends a reconfiguration record.
func (s *Schedule) AddReconfig(round int64, mini, resource int, to Color) {
	s.Reconfigs = append(s.Reconfigs, Reconfigure{Round: round, Mini: mini, Resource: resource, To: to})
}

// AddExec appends an execution record.
func (s *Schedule) AddExec(round int64, mini, resource int, jobID int64) {
	s.Execs = append(s.Execs, Execution{Round: round, Mini: mini, Resource: resource, JobID: jobID})
}

// AddOutage appends an outage record: resource is down during [start, end).
func (s *Schedule) AddOutage(resource int, start, end int64) {
	s.Outages = append(s.Outages, Outage{Resource: resource, Start: start, End: end})
}

// NumReconfigs returns the number of recorded reconfigurations.
func (s *Schedule) NumReconfigs() int { return len(s.Reconfigs) }

// NumExecs returns the number of recorded executions.
func (s *Schedule) NumExecs() int { return len(s.Execs) }

// ExecutedJobIDs returns the set of executed job IDs.
func (s *Schedule) ExecutedJobIDs() map[int64]bool {
	out := make(map[int64]bool, len(s.Execs))
	for _, e := range s.Execs {
		out[e.JobID] = true
	}
	return out
}
