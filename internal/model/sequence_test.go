package model

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	seq := NewBuilder(4).
		Add(0, 0, 2, 3).
		Add(2, 0, 2, 1).
		Add(0, 1, 4, 2).
		MustBuild()
	if seq.Delta() != 4 {
		t.Errorf("Delta = %d", seq.Delta())
	}
	if seq.NumJobs() != 6 {
		t.Errorf("NumJobs = %d", seq.NumJobs())
	}
	if seq.NumRounds() != 3 {
		t.Errorf("NumRounds = %d", seq.NumRounds())
	}
	if seq.Horizon() != 4 {
		t.Errorf("Horizon = %d, want 4 (color 0 at round 2 has deadline 4; color 1 deadline 4)", seq.Horizon())
	}
	if d, ok := seq.DelayBound(0); !ok || d != 2 {
		t.Errorf("DelayBound(0) = %d, %v", d, ok)
	}
	if _, ok := seq.DelayBound(9); ok {
		t.Error("DelayBound(9) should not exist")
	}
	if got := seq.Colors(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Colors = %v", got)
	}
	if got := seq.JobsOfColor(0); got != 4 {
		t.Errorf("JobsOfColor(0) = %d", got)
	}
	if err := seq.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderJobIDsDense(t *testing.T) {
	seq := NewBuilder(1).Add(0, 0, 1, 5).Add(1, 1, 2, 5).MustBuild()
	seen := map[int64]bool{}
	for _, j := range seq.Jobs() {
		seen[j.ID] = true
	}
	for id := int64(0); id < 10; id++ {
		if !seen[id] {
			t.Errorf("missing dense job id %d", id)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Sequence, error)
		want  string
	}{
		{"negative round", func() (*Sequence, error) { return NewBuilder(1).Add(-1, 0, 1, 1).Build() }, "negative round"},
		{"bad color", func() (*Sequence, error) { return NewBuilder(1).Add(0, -2, 1, 1).Build() }, "invalid job color"},
		{"bad delay", func() (*Sequence, error) { return NewBuilder(1).Add(0, 0, 0, 1).Build() }, "non-positive delay"},
		{"negative count", func() (*Sequence, error) { return NewBuilder(1).Add(0, 0, 1, -1).Build() }, "negative job count"},
		{"delay conflict", func() (*Sequence, error) { return NewBuilder(1).Add(0, 0, 2, 1).Add(2, 0, 4, 1).Build() }, "delay bound"},
		{"bad delta", func() (*Sequence, error) { return NewBuilder(0).Add(0, 0, 1, 1).Build() }, "reconfiguration cost"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build()
			if err == nil {
				t.Fatal("Build accepted an invalid input")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder(1).Add(-1, 0, 1, 1)
	b.Add(0, 0, 1, 1) // after an error, further Adds are ignored
	if _, err := b.Build(); err == nil {
		t.Fatal("sticky error lost")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid input")
		}
	}()
	NewBuilder(1).Add(-1, 0, 1, 1).MustBuild()
}

func TestIsBatched(t *testing.T) {
	batched := NewBuilder(1).Add(0, 0, 4, 1).Add(4, 0, 4, 2).Add(8, 0, 4, 1).MustBuild()
	if !batched.IsBatched() {
		t.Error("batched sequence reported non-batched")
	}
	general := NewBuilder(1).Add(3, 0, 4, 1).MustBuild()
	if general.IsBatched() {
		t.Error("job at round 3 with D=4 reported batched")
	}
	// D=1 jobs are batched at every round.
	unit := NewBuilder(1).Add(3, 0, 1, 1).Add(7, 0, 1, 1).MustBuild()
	if !unit.IsBatched() {
		t.Error("unit delay jobs should always be batched")
	}
}

func TestIsRateLimited(t *testing.T) {
	ok := NewBuilder(1).Add(0, 0, 4, 4).Add(4, 0, 4, 3).MustBuild()
	if !ok.IsRateLimited() {
		t.Error("batch of size <= D reported over-rate")
	}
	over := NewBuilder(1).Add(0, 0, 4, 5).MustBuild()
	if over.IsRateLimited() {
		t.Error("batch of size 5 > D=4 reported rate-limited")
	}
	nonBatched := NewBuilder(1).Add(1, 0, 4, 1).MustBuild()
	if nonBatched.IsRateLimited() {
		t.Error("non-batched sequence cannot be rate-limited")
	}
}

func TestPowerOfTwoDelays(t *testing.T) {
	yes := NewBuilder(1).Add(0, 0, 4, 1).Add(0, 1, 1, 1).MustBuild()
	if !yes.PowerOfTwoDelays() {
		t.Error("power-of-two delays not detected")
	}
	no := NewBuilder(1).Add(0, 0, 3, 1).MustBuild()
	if no.PowerOfTwoDelays() {
		t.Error("delay 3 reported as power of two")
	}
}

func TestRequestOutOfRange(t *testing.T) {
	seq := NewBuilder(1).Add(0, 0, 1, 1).MustBuild()
	if seq.Request(-1) != nil || seq.Request(99) != nil {
		t.Error("out-of-range requests should be nil")
	}
}

func TestJobByID(t *testing.T) {
	seq := NewBuilder(1).Add(0, 0, 2, 2).Add(3, 1, 1, 1).MustBuild()
	j, ok := seq.JobByID(2)
	if !ok || j.Color != 1 || j.Arrival != 3 {
		t.Errorf("JobByID(2) = %+v, %v", j, ok)
	}
	if _, ok := seq.JobByID(99); ok {
		t.Error("JobByID(99) found a ghost job")
	}
}

// TestSequenceInvariantsProperty: any sequence built from random Add calls
// validates, reports consistent job counts, and has Horizon >= every
// deadline.
func TestSequenceInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(int64(rng.Intn(10)) + 1)
		total := 0
		for i := 0; i < 30; i++ {
			c := Color(rng.Intn(5))
			d := int64(1) << uint(c%4) // delay fixed per color
			n := rng.Intn(4)
			b.Add(int64(rng.Intn(50)), c, d, n)
			total += n
		}
		seq, err := b.Build()
		if err != nil {
			return false
		}
		if seq.Validate() != nil || seq.NumJobs() != total {
			return false
		}
		for _, j := range seq.Jobs() {
			if j.Deadline() > seq.Horizon() {
				return false
			}
		}
		sum := 0
		for _, c := range seq.Colors() {
			sum += seq.JobsOfColor(c)
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
