package paging

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUBasics(t *testing.T) {
	l := &LRU{}
	l.Reset(2)
	if !l.Access(1) || !l.Access(2) {
		t.Fatal("cold misses not faults")
	}
	if l.Access(1) {
		t.Fatal("hit reported as fault")
	}
	if !l.Access(3) { // evicts 2 (LRU)
		t.Fatal("capacity miss not a fault")
	}
	if l.Access(1) {
		t.Fatal("1 was evicted but should be resident")
	}
	if !l.Access(2) {
		t.Fatal("2 should have been evicted")
	}
}

func TestFIFOBasics(t *testing.T) {
	f := &FIFO{}
	f.Reset(2)
	f.Access(1)
	f.Access(2)
	f.Access(1)       // hit, does not refresh
	if !f.Access(3) { // evicts 1 (oldest resident)
		t.Fatal("miss not a fault")
	}
	if !f.Access(1) {
		t.Fatal("1 should have been evicted by FIFO")
	}
}

func TestBeladySimple(t *testing.T) {
	// k=1, trace a b a: OPT faults 3 times (every switch).
	if got := BeladyFaults(1, []Page{0, 1, 0}); got != 3 {
		t.Errorf("Belady = %d, want 3", got)
	}
	// k=2, trace a b a b: 2 cold faults only.
	if got := BeladyFaults(2, []Page{0, 1, 0, 1}); got != 2 {
		t.Errorf("Belady = %d, want 2", got)
	}
	// Belady evicts the page used farthest in the future.
	// k=2, trace: a b c b a — evict a when c arrives? next use of a is 4,
	// next use of b is 3, so evict a; faults: a, b, c, a = 4.
	if got := BeladyFaults(2, []Page{0, 1, 2, 1, 0}); got != 4 {
		t.Errorf("Belady = %d, want 4", got)
	}
}

// TestBeladyLowerBoundsProperty: OPT never faults more than LRU or FIFO on
// random traces (necessary condition for optimality).
func TestBeladyLowerBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]Page, 200)
		for i := range trace {
			trace[i] = Page(rng.Intn(12))
		}
		k := 2 + rng.Intn(5)
		opt := BeladyFaults(k, trace)
		return opt <= RunTrace(&LRU{}, k, trace) && opt <= RunTrace(&FIFO{}, k, trace)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBeladyOptimalSmall: on tiny traces Belady matches exhaustive search.
func TestBeladyOptimalSmall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]Page, 8)
		for i := range trace {
			trace[i] = Page(rng.Intn(4))
		}
		k := 2
		return BeladyFaults(k, trace) == bruteOPT(k, trace)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// bruteOPT explores all eviction choices.
func bruteOPT(k int, trace []Page) int {
	var rec func(i int, cache map[Page]bool) int
	rec = func(i int, cache map[Page]bool) int {
		if i == len(trace) {
			return 0
		}
		p := trace[i]
		if cache[p] {
			return rec(i+1, cache)
		}
		if len(cache) < k {
			cache[p] = true
			r := rec(i+1, cache)
			delete(cache, p)
			return 1 + r
		}
		best := len(trace) + 1
		for victim := range cache {
			delete(cache, victim)
			cache[p] = true
			if r := rec(i+1, cache); r < best {
				best = r
			}
			delete(cache, p)
			cache[victim] = true
		}
		return 1 + best
	}
	return bruteHelper(rec, trace)
}

func bruteHelper(rec func(int, map[Page]bool) int, trace []Page) int {
	return rec(0, map[Page]bool{})
}

// TestSleatorTarjanRatio: on the adversary trace LRU(k) faults every
// request while OPT(k) faults about once per k — the classic k-competitive
// lower bound.
func TestSleatorTarjanRatio(t *testing.T) {
	for _, k := range []int{3, 5, 8} {
		trace := SleatorTarjanTrace(k, 5000)
		lru := RunTrace(&LRU{}, k, trace)
		opt := BeladyFaults(k, trace)
		if lru != len(trace) {
			t.Errorf("k=%d: LRU faulted %d of %d (adversary should force every request)", k, lru, len(trace))
		}
		ratio := float64(lru) / float64(opt)
		if ratio < float64(k)*0.8 {
			t.Errorf("k=%d: ratio %.2f, want about %d", k, ratio, k)
		}
	}
}

// TestAugmentationHelps: LRU with cache 2k on the k-adversary trace holds
// all k+1 pages and stops faulting — the resource augmentation phenomenon
// the paper's framework generalizes.
func TestAugmentationHelps(t *testing.T) {
	k := 6
	trace := SleatorTarjanTrace(k, 5000)
	faults := RunTrace(&LRU{}, 2*k, trace)
	if faults != k+1 {
		t.Errorf("LRU(2k) faults = %d, want %d cold faults only", faults, k+1)
	}
}

func TestZipfTrace(t *testing.T) {
	trace, err := ZipfTrace(1, 64, 1000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 1000 {
		t.Fatalf("len = %d", len(trace))
	}
	counts := map[Page]int{}
	for _, p := range trace {
		if p < 0 || p >= 64 {
			t.Fatalf("page %d out of range", p)
		}
		counts[p]++
	}
	if counts[0] <= counts[40] {
		t.Error("zipf skew missing: page 0 not hotter than page 40")
	}
	if _, err := ZipfTrace(1, 64, 10, 0.5); err == nil {
		t.Error("s <= 1 accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	if (&LRU{}).Name() != "lru" || (&FIFO{}).Name() != "fifo" {
		t.Error("policy names changed")
	}
}

func TestResetClearsState(t *testing.T) {
	l := &LRU{}
	l.Reset(2)
	l.Access(1)
	l.Reset(2)
	if !l.Access(1) {
		t.Error("Reset kept residency")
	}
	f := &FIFO{}
	f.Reset(2)
	f.Access(1)
	f.Reset(2)
	if !f.Access(1) {
		t.Error("FIFO Reset kept residency")
	}
}
