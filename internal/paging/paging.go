// Package paging implements the classic disk paging problem, which the paper
// identifies as the special case of reconfigurable resource scheduling with
// unit delay bound, unit reconfiguration cost, infinite drop cost, and
// single-job requests (Sleator and Tarjan 1985). It provides LRU and FIFO
// online policies, Belady's offline optimum (longest forward distance), and
// the Sleator–Tarjan adversary, and is used by experiment E12 to demonstrate
// the resource-competitiveness phenomenon in its original habitat.
package paging

import (
	"fmt"
	"math/rand"
)

// Page identifies a page.
type Page int32

// Policy is an online paging policy with a cache of capacity k.
type Policy interface {
	Name() string
	Reset(k int)
	// Access serves a request for page p and reports whether it was a fault.
	Access(p Page) bool
}

// RunTrace plays a request trace through a policy and returns the number of
// faults.
func RunTrace(p Policy, k int, trace []Page) int {
	p.Reset(k)
	faults := 0
	for _, pg := range trace {
		if p.Access(pg) {
			faults++
		}
	}
	return faults
}

// LRU evicts the least recently used page.
type LRU struct {
	k    int
	tick int64
	last map[Page]int64
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

// Reset implements Policy.
func (l *LRU) Reset(k int) {
	l.k = k
	l.tick = 0
	l.last = make(map[Page]int64, k)
}

// Access implements Policy.
func (l *LRU) Access(p Page) bool {
	l.tick++
	if _, ok := l.last[p]; ok {
		l.last[p] = l.tick
		return false
	}
	if len(l.last) >= l.k {
		var victim Page
		oldest := int64(1<<62 - 1)
		for pg, t := range l.last {
			if t < oldest || (t == oldest && pg < victim) {
				oldest = t
				victim = pg
			}
		}
		delete(l.last, victim)
	}
	l.last[p] = l.tick
	return true
}

// FIFO evicts the page resident longest.
type FIFO struct {
	k     int
	queue []Page
	in    map[Page]bool
}

// Name implements Policy.
func (f *FIFO) Name() string { return "fifo" }

// Reset implements Policy.
func (f *FIFO) Reset(k int) {
	f.k = k
	f.queue = f.queue[:0]
	f.in = make(map[Page]bool, k)
}

// Access implements Policy.
func (f *FIFO) Access(p Page) bool {
	if f.in[p] {
		return false
	}
	if len(f.queue) >= f.k {
		victim := f.queue[0]
		f.queue = f.queue[1:]
		delete(f.in, victim)
	}
	f.queue = append(f.queue, p)
	f.in[p] = true
	return true
}

// BeladyFaults computes the offline optimal fault count for a trace with
// cache size k (evict the page whose next use is farthest in the future).
func BeladyFaults(k int, trace []Page) int {
	// next[i] = index of the next occurrence of trace[i] after i.
	next := make([]int, len(trace))
	lastSeen := map[Page]int{}
	for i := len(trace) - 1; i >= 0; i-- {
		if j, ok := lastSeen[trace[i]]; ok {
			next[i] = j
		} else {
			next[i] = len(trace)
		}
		lastSeen[trace[i]] = i
	}
	cache := map[Page]int{} // page -> next use index
	faults := 0
	for i, p := range trace {
		if _, ok := cache[p]; ok {
			cache[p] = next[i]
			continue
		}
		faults++
		if len(cache) >= k {
			var victim Page
			farthest := -1
			for pg, nu := range cache {
				if nu > farthest || (nu == farthest && pg < victim) {
					farthest = nu
					victim = pg
				}
			}
			delete(cache, victim)
		}
		cache[p] = next[i]
	}
	return faults
}

// SleatorTarjanTrace builds the classic lower-bound trace for a
// deterministic policy with cache size k: requests cycle over k+1 pages,
// always requesting the page the online policy does not hold. Against LRU it
// forces a fault on every request, while OPT faults only once per k
// requests.
func SleatorTarjanTrace(k, length int) []Page {
	trace := make([]Page, 0, length)
	// LRU on pages 0..k cycles deterministically; the adversary requests
	// pages round-robin which is exactly the page LRU just evicted.
	for i := 0; i < length; i++ {
		trace = append(trace, Page(i%(k+1)))
	}
	return trace
}

// ZipfTrace builds a Zipf-skewed random trace over numPages pages.
func ZipfTrace(seed int64, numPages, length int, s float64) ([]Page, error) {
	if s <= 1 {
		return nil, fmt.Errorf("paging: zipf parameter must exceed 1, got %v", s)
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(numPages-1))
	trace := make([]Page, length)
	for i := range trace {
		trace[i] = Page(z.Uint64())
	}
	return trace, nil
}
