package paging

import "math/rand"

// Marker is the classic randomized marking algorithm: on a fault it evicts
// a uniformly random unmarked page; when all resident pages are marked, a
// new phase begins and all marks clear. Against an oblivious adversary it is
// O(log k)-competitive — exponentially better than any deterministic policy,
// which the Sleator–Tarjan bound pins at k. Included as the randomized
// counterpoint for experiment E12's deterministic story.
type Marker struct {
	k      int
	rng    *rand.Rand
	seed   int64
	marked map[Page]bool
	cache  map[Page]bool
}

// NewMarker returns a Marker with the given PRNG seed (deterministic runs).
func NewMarker(seed int64) *Marker { return &Marker{seed: seed} }

// Name implements Policy.
func (m *Marker) Name() string { return "marker" }

// Reset implements Policy.
func (m *Marker) Reset(k int) {
	m.k = k
	m.rng = rand.New(rand.NewSource(m.seed))
	m.marked = make(map[Page]bool, k)
	m.cache = make(map[Page]bool, k)
}

// Access implements Policy.
func (m *Marker) Access(p Page) bool {
	if m.cache[p] {
		m.marked[p] = true
		return false
	}
	if len(m.cache) >= m.k {
		// New phase when every resident page is marked.
		if len(m.marked) >= len(m.cache) {
			m.marked = make(map[Page]bool, m.k)
		}
		victim, ok := m.randomUnmarked()
		if !ok {
			// All marked (can only happen transiently with k changing);
			// start a fresh phase and retry.
			m.marked = make(map[Page]bool, m.k)
			victim, _ = m.randomUnmarked()
		}
		delete(m.cache, victim)
		delete(m.marked, victim)
	}
	m.cache[p] = true
	m.marked[p] = true
	return true
}

// randomUnmarked picks a uniformly random unmarked resident page. Iteration
// order over maps is randomized by the runtime but not seeded; to keep runs
// reproducible the candidates are collected and indexed with the policy's
// own PRNG.
func (m *Marker) randomUnmarked() (Page, bool) {
	var cands []Page
	//lint:ignore determinism cands are selection-sorted right below
	for p := range m.cache {
		if !m.marked[p] {
			cands = append(cands, p)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	// Sort-free determinism: selection sorts the small candidate set.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j] < cands[j-1]; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	return cands[m.rng.Intn(len(cands))], true
}

var _ Policy = (*Marker)(nil)
