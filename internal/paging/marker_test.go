package paging

import (
	"math/rand"
	"testing"
)

func TestMarkerBasics(t *testing.T) {
	m := NewMarker(1)
	m.Reset(2)
	if !m.Access(1) || !m.Access(2) {
		t.Fatal("cold misses not faults")
	}
	if m.Access(1) {
		t.Fatal("hit reported as fault")
	}
	if !m.Access(3) {
		t.Fatal("capacity miss not a fault")
	}
}

func TestMarkerNeverFaultsOnResident(t *testing.T) {
	m := NewMarker(2)
	m.Reset(4)
	rng := rand.New(rand.NewSource(3))
	resident := map[Page]bool{}
	for i := 0; i < 2000; i++ {
		p := Page(rng.Intn(10))
		fault := m.Access(p)
		if resident[p] && fault {
			// The page may have been evicted since; rebuild the resident
			// set from scratch via the policy's behavior: a fault on a page
			// we believed resident means it was evicted, which is fine.
			// What is NOT fine is a fault immediately after an access.
			t.Log("page evicted between accesses (expected occasionally)")
		}
		resident[p] = true
		if fault && m.Access(p) {
			t.Fatal("fault immediately after bringing the page in")
		}
	}
}

func TestMarkerDeterministicBySeed(t *testing.T) {
	trace, err := ZipfTrace(5, 64, 3000, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	a := RunTrace(NewMarker(9), 8, trace)
	b := RunTrace(NewMarker(9), 8, trace)
	if a != b {
		t.Fatalf("same seed, different fault counts: %d vs %d", a, b)
	}
}

func TestMarkerBeatsDeterministicOnAdversary(t *testing.T) {
	// On the Sleator–Tarjan trace (built for deterministic policies) Marker
	// faults like Θ(log k / k) of the requests in expectation, far below
	// LRU's 100%.
	k := 8
	trace := SleatorTarjanTrace(k, 20000)
	lru := RunTrace(&LRU{}, k, trace)
	marker := RunTrace(NewMarker(42), k, trace)
	if marker >= lru/2 {
		t.Errorf("marker faults %d not well below LRU faults %d", marker, lru)
	}
	opt := BeladyFaults(k, trace)
	if marker < opt {
		t.Errorf("marker faults %d below OPT %d: impossible", marker, opt)
	}
}

func TestMarkerAtLeastOPTOnZipf(t *testing.T) {
	trace, err := ZipfTrace(7, 128, 5000, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{4, 16} {
		opt := BeladyFaults(k, trace)
		marker := RunTrace(NewMarker(1), k, trace)
		if marker < opt {
			t.Errorf("k=%d: marker %d < OPT %d", k, marker, opt)
		}
		if marker > 4*opt {
			t.Errorf("k=%d: marker %d > 4x OPT %d on a benign trace", k, marker, opt)
		}
	}
}
