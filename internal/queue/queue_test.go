package queue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestHeapBasics(t *testing.T) {
	h := NewHeap[int](intLess)
	if h.Len() != 0 {
		t.Fatalf("empty heap Len = %d", h.Len())
	}
	for _, v := range []int{5, 1, 4, 1, 3} {
		h.Push(v)
	}
	if h.Peek() != 1 {
		t.Errorf("Peek = %d", h.Peek())
	}
	got := []int{}
	for h.Len() > 0 {
		got = append(got, h.Pop())
	}
	want := []int{1, 1, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestHeapPanics(t *testing.T) {
	h := NewHeap[int](intLess)
	for _, f := range []func(){func() { h.Pop() }, func() { h.Peek() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty-heap operation did not panic")
				}
			}()
			f()
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("NewHeap(nil) did not panic")
		}
	}()
	NewHeap[int](nil)
}

// TestHeapSortsProperty: popping everything yields a sorted permutation of
// the input (property-based).
func TestHeapSortsProperty(t *testing.T) {
	f := func(vals []int16) bool {
		h := NewHeap[int](intLess)
		in := make([]int, len(vals))
		for i, v := range vals {
			in[i] = int(v)
			h.Push(int(v))
		}
		sort.Ints(in)
		for _, want := range in {
			if h.Pop() != want {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexedHeapBasics(t *testing.T) {
	h := NewIndexedHeap[string, int](intLess)
	h.Push("a", 3)
	h.Push("b", 1)
	h.Push("c", 2)
	if k, p := h.Peek(); k != "b" || p != 1 {
		t.Errorf("Peek = %s,%d", k, p)
	}
	if !h.Contains("a") || h.Contains("z") {
		t.Error("Contains wrong")
	}
	if p, ok := h.Priority("c"); !ok || p != 2 {
		t.Errorf("Priority(c) = %d,%v", p, ok)
	}
	// Decrease key.
	h.Push("a", 0)
	if k, _ := h.Peek(); k != "a" {
		t.Errorf("after decrease-key Peek = %s", k)
	}
	// Increase key.
	h.Push("a", 10)
	if k, _ := h.Peek(); k != "b" {
		t.Errorf("after increase-key Peek = %s", k)
	}
	if !h.Remove("b") || h.Remove("b") {
		t.Error("Remove wrong")
	}
	order := []string{}
	for h.Len() > 0 {
		k, _ := h.Pop()
		order = append(order, k)
	}
	if len(order) != 2 || order[0] != "c" || order[1] != "a" {
		t.Errorf("pop order = %v", order)
	}
}

// TestIndexedHeapMatchesSortProperty: a random op sequence ends with pops in
// priority order, matching a map-based model.
func TestIndexedHeapMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewIndexedHeap[int, int](intLess)
		ref := map[int]int{}
		for i := 0; i < 200; i++ {
			k := rng.Intn(30)
			switch rng.Intn(3) {
			case 0, 1: // push/update
				p := rng.Intn(100)
				h.Push(k, p)
				ref[k] = p
			case 2:
				want := false
				if _, ok := ref[k]; ok {
					want = true
					delete(ref, k)
				}
				if h.Remove(k) != want {
					return false
				}
			}
			if h.Len() != len(ref) {
				return false
			}
		}
		// Drain: priorities must come out nondecreasing and match ref.
		prev := -1
		for h.Len() > 0 {
			k, p := h.Pop()
			if p < prev || ref[k] != p {
				return false
			}
			delete(ref, k)
			prev = p
		}
		return len(ref) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRingFIFO(t *testing.T) {
	var r Ring[int]
	if r.Len() != 0 {
		t.Fatal("fresh ring non-empty")
	}
	for i := 0; i < 20; i++ {
		r.Push(i)
	}
	if r.Peek() != 0 {
		t.Errorf("Peek = %d", r.Peek())
	}
	for i := 0; i < 20; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
}

func TestRingInterleaved(t *testing.T) {
	var r Ring[int]
	next, expect := 0, 0
	for i := 0; i < 1000; i++ {
		if i%3 != 0 {
			r.Push(next)
			next++
		} else if r.Len() > 0 {
			if got := r.Pop(); got != expect {
				t.Fatalf("Pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != expect {
			t.Fatalf("drain Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("lost items: %d != %d", expect, next)
	}
}

func TestRingClearAndDrain(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	got := r.Drain()
	if len(got) != 5 || got[0] != 0 || got[4] != 4 {
		t.Errorf("Drain = %v", got)
	}
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	r.Clear()
	if r.Len() != 0 {
		t.Errorf("after Clear Len = %d", r.Len())
	}
	r.Push(42)
	if r.Pop() != 42 {
		t.Error("ring unusable after Clear")
	}
}

func TestRingPanics(t *testing.T) {
	var r Ring[int]
	for _, f := range []func(){func() { r.Pop() }, func() { r.Peek() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty-ring operation did not panic")
				}
			}()
			f()
		}()
	}
}

// TestRingMatchesSliceProperty: the ring behaves exactly like a slice-based
// FIFO under random operations.
func TestRingMatchesSliceProperty(t *testing.T) {
	f := func(ops []bool) bool {
		var r Ring[int]
		var ref []int
		next := 0
		for _, push := range ops {
			if push || len(ref) == 0 {
				r.Push(next)
				ref = append(ref, next)
				next++
			} else {
				if r.Pop() != ref[0] {
					return false
				}
				ref = ref[1:]
			}
			if r.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketQueueBasics(t *testing.T) {
	q := NewBucketQueue[string]()
	if q.Len() != 0 {
		t.Fatal("fresh queue non-empty")
	}
	q.Push(5, "e")
	q.Push(3, "c")
	q.Push(5, "e2")
	q.Push(9, "i")
	if k, ok := q.MinKey(); !ok || k != 3 {
		t.Errorf("MinKey = %d %v", k, ok)
	}
	k, v := q.PopMin()
	if k != 3 || v != "c" {
		t.Errorf("PopMin = %d %q", k, v)
	}
	// PopMin does not certify a floor: re-pushing key 3 is legal.
	q.Push(3, "late-ok")
	got := []int64{}
	for q.Len() > 0 {
		k, _ := q.PopMin()
		got = append(got, k)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("pop keys not monotone: %v", got)
		}
	}
}

func TestBucketQueuePanics(t *testing.T) {
	q := NewBucketQueue[int]()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PopMin on empty did not panic")
			}
		}()
		q.PopMin()
	}()
	q.Push(5, 1)
	q.PopMin()
	// PopMin does not certify anything: pushing an earlier key is legal.
	q.Push(2, 2)
	q.PopMin()
	// PopUpTo certifies its bound: keys <= 7 are finished afterwards.
	q.Push(9, 3)
	q.PopUpTo(7, 100)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("push below certified floor did not panic")
			}
		}()
		q.Push(6, 4)
	}()
}

func TestBucketQueuePopUpTo(t *testing.T) {
	q := NewBucketQueue[int]()
	for i := 0; i < 10; i++ {
		q.Push(int64(i%3), i)
	}
	// Pop everything with key <= 1, capped at 4.
	got := q.PopUpTo(1, 4)
	if len(got) != 4 {
		t.Fatalf("popped %d, want 4", len(got))
	}
	rest := q.PopUpTo(1, 100)
	// keys 0,1 have ceil(10/3 accounting): keys 0:4 items(0,3,6,9) 1:3 items, total 7; popped 4 then 3.
	if len(rest) != 3 {
		t.Fatalf("rest = %d, want 3", len(rest))
	}
	if q.Len() != 3 {
		t.Fatalf("remaining = %d, want 3 (key 2)", q.Len())
	}
	if got := q.PopUpTo(1, 10); len(got) != 0 {
		t.Fatalf("key-2 items popped at bound 1: %v", got)
	}
	if got := q.PopUpTo(2, 10); len(got) != 3 {
		t.Fatalf("final pop = %d", len(got))
	}
}

// TestBucketQueueMatchesHeapProperty: on monotone random workloads the
// bucket queue pops the same key sequence as a binary heap.
func TestBucketQueueMatchesHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bq := NewBucketQueue[int]()
		h := NewHeap[int64](func(a, b int64) bool { return a < b })
		for i := 0; i < 300; i++ {
			if rng.Intn(3) != 0 || bq.Len() == 0 {
				key := int64(rng.Intn(50))
				bq.Push(key, i)
				h.Push(key)
			} else {
				k, _ := bq.PopMin()
				if hk := h.Pop(); hk != k {
					return false
				}
			}
		}
		for bq.Len() > 0 {
			k, _ := bq.PopMin()
			if h.Pop() != k {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
