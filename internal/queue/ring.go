package queue

// Ring is a growable FIFO ring buffer. The zero value is ready to use.
// Per-color pending-job queues are Rings: jobs of one color in a batched
// instance share a deadline, so FIFO order is deadline order.
type Ring[T any] struct {
	buf   []T
	head  int
	count int
}

// Len returns the number of queued items.
func (r *Ring[T]) Len() int { return r.count }

// Push appends an item at the tail.
func (r *Ring[T]) Push(v T) {
	if r.count == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
}

// Pop removes and returns the head item. It panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.count == 0 {
		panic("queue: Pop on empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return v
}

// Peek returns the head item without removing it. It panics on an empty ring.
func (r *Ring[T]) Peek() T {
	if r.count == 0 {
		panic("queue: Peek on empty ring")
	}
	return r.buf[r.head]
}

// Clear removes all items, retaining capacity.
func (r *Ring[T]) Clear() {
	var zero T
	for i := 0; i < r.count; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head = 0
	r.count = 0
}

// Items returns the queued items in FIFO order without removing them; the
// checkpoint machinery uses it to serialize queues non-destructively.
func (r *Ring[T]) Items() []T {
	out := make([]T, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Drain removes all items and returns them in FIFO order.
func (r *Ring[T]) Drain() []T {
	out := make([]T, 0, r.count)
	for r.count > 0 {
		out = append(out, r.Pop())
	}
	return out
}

func (r *Ring[T]) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	buf := make([]T, newCap)
	for i := 0; i < r.count; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
