// Package queue provides the small container substrates the schedulers are
// built on: a generic binary heap, an indexed (addressable) priority queue
// with decrease/increase-key, and a growable FIFO ring buffer. Everything is
// allocation-conscious and stdlib only.
package queue

// Heap is a generic binary min-heap ordered by the provided less function.
// The zero value is not usable; construct with NewHeap.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	if less == nil {
		panic("queue: nil less function")
	}
	return &Heap[T]{less: less}
}

// Len returns the number of items in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts an item.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum item without removing it. It panics on an empty
// heap.
func (h *Heap[T]) Peek() T {
	if len(h.items) == 0 {
		panic("queue: Peek on empty heap")
	}
	return h.items[0]
}

// Pop removes and returns the minimum item. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	if len(h.items) == 0 {
		panic("queue: Pop on empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
