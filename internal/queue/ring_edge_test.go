package queue

import "testing"

// TestRingEdgeCases is the table-driven edge matrix for the FIFO ring: empty
// pops, wraparound exactly at the initial capacity, growth while the window
// is wrapped, and capacity retention across Clear.
func TestRingEdgeCases(t *testing.T) {
	// The zero ring grows to this capacity on first push (see grow).
	const initialCap = 8

	cases := []struct {
		name string
		run  func(t *testing.T, r *Ring[int])
	}{
		{"pop empty panics", func(t *testing.T, r *Ring[int]) {
			defer func() {
				if recover() == nil {
					t.Error("Pop on empty ring did not panic")
				}
			}()
			r.Pop()
		}},
		{"peek empty panics", func(t *testing.T, r *Ring[int]) {
			defer func() {
				if recover() == nil {
					t.Error("Peek on empty ring did not panic")
				}
			}()
			r.Peek()
		}},
		{"pop after drain panics", func(t *testing.T, r *Ring[int]) {
			r.Push(1)
			r.Drain()
			defer func() {
				if recover() == nil {
					t.Error("Pop after Drain did not panic")
				}
			}()
			r.Pop()
		}},
		{"wraparound at capacity", func(t *testing.T, r *Ring[int]) {
			// Advance head so the next fill wraps: push/pop half a window,
			// then fill to exactly the initial capacity without growing.
			for i := 0; i < initialCap/2; i++ {
				r.Push(-1)
			}
			for i := 0; i < initialCap/2; i++ {
				r.Pop()
			}
			for i := 0; i < initialCap; i++ {
				r.Push(i)
			}
			if r.Len() != initialCap {
				t.Fatalf("len = %d, want %d", r.Len(), initialCap)
			}
			for i := 0; i < initialCap; i++ {
				if got := r.Pop(); got != i {
					t.Fatalf("wrapped pop %d = %d, want %d", i, got, i)
				}
			}
		}},
		{"growth while wrapped", func(t *testing.T, r *Ring[int]) {
			// Leave the head mid-buffer, fill past capacity so grow() must
			// linearize a wrapped window.
			for i := 0; i < 5; i++ {
				r.Push(-1)
			}
			for i := 0; i < 5; i++ {
				r.Pop()
			}
			const n = 3 * initialCap
			for i := 0; i < n; i++ {
				r.Push(i)
			}
			if got := r.Items(); len(got) != n {
				t.Fatalf("items = %d, want %d", len(got), n)
			}
			for i := 0; i < n; i++ {
				if got := r.Pop(); got != i {
					t.Fatalf("pop %d = %d after growth, want %d", i, got, i)
				}
			}
		}},
		{"clear retains capacity and resets order", func(t *testing.T, r *Ring[int]) {
			for i := 0; i < initialCap; i++ {
				r.Push(i)
			}
			r.Clear()
			if r.Len() != 0 {
				t.Fatalf("len after Clear = %d", r.Len())
			}
			r.Push(42)
			if got := r.Peek(); got != 42 {
				t.Fatalf("peek after Clear = %d, want 42", got)
			}
		}},
		{"items is non-destructive on wrapped window", func(t *testing.T, r *Ring[int]) {
			for i := 0; i < 6; i++ {
				r.Push(-1)
			}
			for i := 0; i < 6; i++ {
				r.Pop()
			}
			for i := 0; i < 4; i++ {
				r.Push(i)
			}
			a, b := r.Items(), r.Items()
			if len(a) != 4 || len(b) != 4 {
				t.Fatalf("items lengths %d, %d; want 4", len(a), len(b))
			}
			for i := range a {
				if a[i] != i || b[i] != i {
					t.Fatalf("items changed between calls: %v vs %v", a, b)
				}
			}
			if r.Len() != 4 {
				t.Fatalf("Items drained the ring: len %d", r.Len())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r Ring[int]
			tc.run(t, &r)
		})
	}
}
