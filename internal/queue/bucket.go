package queue

// BucketQueue is a monotone priority queue over int64 keys (a calendar
// queue). Monotonicity here follows the scheduling discipline, where time
// only moves forward: PopUpTo(bound, ...) certifies that every key <= bound
// is finished (the drop phase of round bound), and later pushes below that
// bound panic. PopMin (the execution phase) does NOT advance the floor —
// later arrivals may legitimately carry earlier deadlines than previously
// executed jobs. For the simulator's workloads (deadlines within a bounded
// window of the current round) operations are amortized O(1), versus
// O(log n) for the binary heap.
type BucketQueue[T any] struct {
	buckets map[int64][]T
	front   int64 // smallest key that may still be present (scan pointer)
	floor   int64 // keys <= floor-1 are certified finished: pushes below floor panic
	count   int
	started bool
	popped  bool
}

// NewBucketQueue returns an empty monotone queue.
func NewBucketQueue[T any]() *BucketQueue[T] {
	return &BucketQueue[T]{buckets: make(map[int64][]T)}
}

// Len returns the number of queued items.
func (q *BucketQueue[T]) Len() int { return q.count }

// Push inserts v with the given key. Keys below the certified floor (set by
// PopUpTo) panic: the queue is monotone (time only moves forward).
func (q *BucketQueue[T]) Push(key int64, v T) {
	if q.popped && key < q.floor {
		panic("queue: BucketQueue push below the monotone front")
	}
	if !q.started || key < q.front {
		q.front = key
		q.started = true
	}
	q.buckets[key] = append(q.buckets[key], v)
	q.count++
}

// PopMin removes and returns an item with the smallest key. It panics on an
// empty queue.
func (q *BucketQueue[T]) PopMin() (int64, T) {
	if q.count == 0 {
		panic("queue: PopMin on empty bucket queue")
	}
	for {
		if items, ok := q.buckets[q.front]; ok && len(items) > 0 {
			v := items[len(items)-1]
			if len(items) == 1 {
				delete(q.buckets, q.front)
			} else {
				q.buckets[q.front] = items[:len(items)-1]
			}
			q.count--
			return q.front, v
		}
		q.front++
	}
}

// PopUpTo removes and returns up to max items with key <= bound, in
// nondecreasing key order. When it exhausts all such items (rather than
// stopping at max) it certifies the bound: the monotone floor advances to
// bound+1 and later pushes below it panic.
func (q *BucketQueue[T]) PopUpTo(bound int64, max int) []T {
	var out []T
	defer func() {
		if len(out) < max && bound+1 > q.floor {
			q.floor, q.popped = bound+1, true
		}
	}()
	for q.count > 0 && len(out) < max {
		if items, ok := q.buckets[q.front]; ok && len(items) > 0 {
			if q.front > bound {
				return out
			}
			v := items[len(items)-1]
			if len(items) == 1 {
				delete(q.buckets, q.front)
			} else {
				q.buckets[q.front] = items[:len(items)-1]
			}
			q.count--
			out = append(out, v)
			continue
		}
		if q.front > bound {
			return out
		}
		q.front++
	}
	return out
}

// MinKey returns the smallest live key (ok == false when empty).
func (q *BucketQueue[T]) MinKey() (int64, bool) {
	if q.count == 0 {
		return 0, false
	}
	f := q.front
	for {
		if items, ok := q.buckets[f]; ok && len(items) > 0 {
			return f, true
		}
		f++
	}
}
