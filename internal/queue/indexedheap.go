package queue

// IndexedHeap is a binary min-heap whose entries are addressable by a
// comparable key. It supports O(log n) insert, remove-by-key, and
// reprioritize-by-key, which is what the schedulers need to keep per-color
// rankings current as deadlines and idleness flip.
type IndexedHeap[K comparable, P any] struct {
	keys []K
	prio []P
	pos  map[K]int
	less func(a, b P) bool
}

// NewIndexedHeap returns an empty indexed heap ordered by less on priorities.
func NewIndexedHeap[K comparable, P any](less func(a, b P) bool) *IndexedHeap[K, P] {
	if less == nil {
		panic("queue: nil less function")
	}
	return &IndexedHeap[K, P]{pos: make(map[K]int), less: less}
}

// Len returns the number of entries.
func (h *IndexedHeap[K, P]) Len() int { return len(h.keys) }

// Contains reports whether key is present.
func (h *IndexedHeap[K, P]) Contains(key K) bool {
	_, ok := h.pos[key]
	return ok
}

// Priority returns the priority of key and whether it is present.
func (h *IndexedHeap[K, P]) Priority(key K) (P, bool) {
	i, ok := h.pos[key]
	if !ok {
		var zero P
		return zero, false
	}
	return h.prio[i], true
}

// Push inserts key with the given priority, or updates its priority if the
// key is already present.
func (h *IndexedHeap[K, P]) Push(key K, p P) {
	if i, ok := h.pos[key]; ok {
		h.prio[i] = p
		h.fix(i)
		return
	}
	h.keys = append(h.keys, key)
	h.prio = append(h.prio, p)
	h.pos[key] = len(h.keys) - 1
	h.up(len(h.keys) - 1)
}

// Peek returns the minimum key and priority without removing them. It panics
// on an empty heap.
func (h *IndexedHeap[K, P]) Peek() (K, P) {
	if len(h.keys) == 0 {
		panic("queue: Peek on empty indexed heap")
	}
	return h.keys[0], h.prio[0]
}

// Pop removes and returns the minimum key and priority. It panics on an
// empty heap.
func (h *IndexedHeap[K, P]) Pop() (K, P) {
	k, p := h.Peek()
	h.removeAt(0)
	return k, p
}

// Remove deletes key and reports whether it was present.
func (h *IndexedHeap[K, P]) Remove(key K) bool {
	i, ok := h.pos[key]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

func (h *IndexedHeap[K, P]) removeAt(i int) {
	last := len(h.keys) - 1
	delete(h.pos, h.keys[i])
	if i != last {
		h.keys[i] = h.keys[last]
		h.prio[i] = h.prio[last]
		h.pos[h.keys[i]] = i
	}
	h.keys = h.keys[:last]
	h.prio = h.prio[:last]
	if i < last {
		h.fix(i)
	}
}

func (h *IndexedHeap[K, P]) fix(i int) {
	if !h.up(i) {
		h.down(i)
	}
}

func (h *IndexedHeap[K, P]) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.prio[i], h.prio[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (h *IndexedHeap[K, P]) down(i int) {
	n := len(h.keys)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.prio[right], h.prio[left]) {
			smallest = right
		}
		if !h.less(h.prio[smallest], h.prio[i]) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *IndexedHeap[K, P]) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.pos[h.keys[i]] = i
	h.pos[h.keys[j]] = j
}
