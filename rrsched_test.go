package rrsched_test

import (
	"testing"

	"rrsched"
	"rrsched/internal/workload"
)

func buildGeneral(t *testing.T, seed int64) *rrsched.Sequence {
	t.Helper()
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: seed, Delta: 3, Colors: 5, Rounds: 96,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestScheduleEndToEnd(t *testing.T) {
	seq := buildGeneral(t, 1)
	res, err := rrsched.Schedule(seq, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "varbatch(dlru-edf)" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
	cost, err := rrsched.Audit(seq, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if cost != res.Cost {
		t.Errorf("audit %v != reported %v", cost, res.Cost)
	}
}

func TestScheduleBatched(t *testing.T) {
	seq := rrsched.NewBuilder(2).
		Add(0, 0, 4, 6).
		Add(4, 1, 4, 6).
		MustBuild()
	res, err := rrsched.ScheduleBatched(seq, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rrsched.Audit(seq, res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleBatchedRejectsGeneral(t *testing.T) {
	seq := rrsched.NewBuilder(2).Add(1, 0, 4, 1).MustBuild()
	if _, err := rrsched.ScheduleBatched(seq, 8); err == nil {
		t.Fatal("non-batched input accepted by ScheduleBatched")
	}
}

func TestRunPolicyFacade(t *testing.T) {
	seq := rrsched.NewBuilder(2).Add(0, 0, 4, 8).Add(0, 1, 2, 2).MustBuild()
	for _, p := range []rrsched.Policy{
		rrsched.NewDeltaLRUEDF(), rrsched.NewDeltaLRU(), rrsched.NewEDF(),
	} {
		res, err := rrsched.RunPolicy(seq, 8, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Cost.Total() < 0 {
			t.Fatalf("%s: negative cost", p.Name())
		}
	}
}

func TestOfflineFacade(t *testing.T) {
	seq := rrsched.NewBuilder(2).Add(0, 0, 2, 4).Add(0, 1, 2, 4).MustBuild()
	lb, ub := rrsched.OfflineBracket(seq, 1)
	if lb > ub {
		t.Fatalf("LB %d > UB %d", lb, ub)
	}
	opt, err := rrsched.ExactOPT(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lb > opt || opt > ub {
		t.Fatalf("bracket violated: %d <= %d <= %d", lb, opt, ub)
	}
	if got := rrsched.OfflineLowerBound(seq, 1); got != lb {
		t.Errorf("OfflineLowerBound = %d, bracket LB = %d", got, lb)
	}
}

func TestScheduleInvalidResources(t *testing.T) {
	seq := buildGeneral(t, 2)
	if _, err := rrsched.Schedule(seq, 0); err == nil {
		t.Fatal("0 resources accepted")
	}
	if _, err := rrsched.Schedule(seq, 3); err == nil {
		t.Fatal("n not a multiple of replication accepted")
	}
}

func TestBlackConstant(t *testing.T) {
	if rrsched.Black != rrsched.Color(-1) {
		t.Error("Black changed")
	}
}

func TestNegativeResourcesRejected(t *testing.T) {
	seq := buildGeneral(t, 3)
	if _, err := rrsched.Schedule(seq, -4); err == nil {
		t.Error("negative resource count accepted")
	}
}
