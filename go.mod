module rrsched

go 1.22
