// Paging: the classic disk paging problem is the special case of
// reconfigurable resource scheduling with unit delay bound, unit
// reconfiguration cost, and infinite drop cost (Sleator–Tarjan 1985). This
// example replays the classic results the paper's framework generalizes:
// every deterministic policy is at best k-competitive, randomization
// (Marker) breaks that barrier, and resource augmentation (a 2x cache)
// collapses the ratio — the same mechanism Theorems 1–3 use.
package main

import (
	"fmt"
	"log"

	"rrsched/internal/paging"
)

func main() {
	const length = 30000
	fmt.Println("Sleator–Tarjan adversary trace (k+1 pages, cyclic):")
	fmt.Printf("%-4s %10s %10s %10s %10s %10s %12s\n",
		"k", "LRU(k)", "FIFO(k)", "Marker(k)", "OPT(k)", "LRU(2k)", "LRU(k)/OPT")
	for _, k := range []int{4, 8, 16, 32} {
		trace := paging.SleatorTarjanTrace(k, length)
		lru := paging.RunTrace(&paging.LRU{}, k, trace)
		fifo := paging.RunTrace(&paging.FIFO{}, k, trace)
		marker := paging.RunTrace(paging.NewMarker(42), k, trace)
		opt := paging.BeladyFaults(k, trace)
		lru2 := paging.RunTrace(&paging.LRU{}, 2*k, trace)
		fmt.Printf("%-4d %10d %10d %10d %10d %10d %12.2f\n",
			k, lru, fifo, marker, opt, lru2, float64(lru)/float64(opt))
	}

	fmt.Println("\nZipf trace (256 pages, skew 1.2):")
	trace, err := paging.ZipfTrace(7, 256, length, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-4s %10s %10s %10s %10s %10s\n", "k", "LRU", "FIFO", "Marker", "OPT", "LRU/OPT")
	for _, k := range []int{8, 16, 32} {
		lru := paging.RunTrace(&paging.LRU{}, k, trace)
		fifo := paging.RunTrace(&paging.FIFO{}, k, trace)
		marker := paging.RunTrace(paging.NewMarker(42), k, trace)
		opt := paging.BeladyFaults(k, trace)
		fmt.Printf("%-4d %10d %10d %10d %10d %10.2f\n",
			k, lru, fifo, marker, opt, float64(lru)/float64(opt))
	}
	fmt.Println("\nTakeaways: deterministic ratio ≈ k on the adversary (the ST lower")
	fmt.Println("bound); Marker's randomization escapes it; doubling the cache —")
	fmt.Println("resource augmentation — reduces LRU to a handful of cold faults.")
}
