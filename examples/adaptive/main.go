// Adaptive: a day in a shared cluster. Per-service load follows a diurnal
// sinusoid with rotating peaks, and the ARC-style adaptive variant of
// ΔLRU-EDF tunes its recency/deadline slot split online. The example prints
// the cost comparison against the fixed splits and the adaptation trace
// (how the LRU quota moved across the day), plus a schedule analysis of the
// winner.
package main

import (
	"fmt"
	"log"

	"rrsched/internal/core"
	"rrsched/internal/introspect"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func main() {
	seq, err := workload.Diurnal(workload.DiurnalConfig{
		Seed: 4, Delta: 8, Colors: 12,
		Period: 1024, Days: 3, Delay: 4,
		PeakLoad: 0.9, TroughFrac: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := 16
	env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
	fmt.Printf("diurnal cluster: %d services, %d jobs over 3 days, %d processors, Δ=%d\n\n",
		12, seq.NumJobs(), n, seq.Delta())

	fmt.Printf("%-28s %10s %8s %8s\n", "policy", "reconfig", "drop", "total")
	type runResult struct {
		name string
		res  *sim.Result
	}
	var runs []runResult
	for _, r := range []struct {
		name string
		p    sim.Policy
	}{
		{"dlru-edf (half/half)", core.NewDeltaLRUEDF()},
		{"dlru-edf (all LRU)", core.NewDeltaLRUEDF(core.WithLRUSlots(n / 2))},
		{"edf (all EDF)", core.NewEDF()},
		{"adaptive-dlru-edf", core.NewAdaptive()},
	} {
		res := sim.MustRun(env, r.p)
		fmt.Printf("%-28s %10d %8d %8d\n", r.name, res.Cost.Reconfig, res.Cost.Drop, res.Cost.Total())
		runs = append(runs, runResult{name: r.name, res: res})
		if ad, ok := r.p.(*core.AdaptiveDeltaLRUEDF); ok {
			hist := ad.QuotaHistory()
			fmt.Printf("%-28s quota trace (per %d-round window): %v\n", "", 4*seq.Delta(), compress(hist))
		}
	}

	// Analyze the adaptive schedule: utilization and thrashing profile.
	last := runs[len(runs)-1]
	rep, err := introspect.Analyze(seq, last.res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s analysis:\n  %s\n", last.name, rep.Summary())
	fmt.Println("  most reconfigured services:")
	for _, s := range rep.TopReconfigured(3) {
		fmt.Printf("    %-6v reconfigs=%-4d executed=%-5d dropped=%d\n",
			s.Color, s.Reconfigs, s.Executed, s.Dropped)
	}
}

// compress shortens a run-length-encodable int slice for display.
func compress(vals []int) []int {
	if len(vals) <= 24 {
		return vals
	}
	out := make([]int, 0, 24)
	step := len(vals) / 24
	for i := 0; i < len(vals); i += step {
		out = append(out, vals[i])
	}
	return out
}
