// Datacenter: a shared hosting center whose service mix shifts over time
// (the paper's Chandra/Chase motivation). Processors are reallocated between
// services as phases change; the example shows how the stack's cost tracks
// phase changes, and how the offline bracket pins the achievable cost.
package main

import (
	"fmt"
	"log"

	"rrsched"
	"rrsched/internal/baseline"
	"rrsched/internal/obs"
	"rrsched/internal/offline"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func main() {
	seq, err := workload.PhaseShift(workload.PhaseShiftConfig{
		Seed: 7, Delta: 8, Colors: 16,
		PhaseLen: 256, Phases: 6, ActivePerPhase: 4,
		Delay: 8, Load: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	servers := 16
	fmt.Printf("datacenter: %d services, %d requests over %d phases, %d servers, Δ=%d\n",
		len(seq.Colors()), seq.NumJobs(), 6, servers, seq.Delta())

	stack, err := rrsched.Schedule(seq, servers)
	if err != nil {
		log.Fatal(err)
	}
	// The workload is batched (arrivals at multiples of the delay bound), so
	// the Distribute layer alone also applies; compare both.
	batched, err := rrsched.ScheduleBatched(seq, servers)
	if err != nil {
		log.Fatal(err)
	}
	// Instrument the baseline run with the observability layer instead of
	// deriving stats from the schedule by hand: scheduler metrics and a
	// structured event stream come straight from the engine.
	o, err := obs.NewObserver()
	if err != nil {
		log.Fatal(err)
	}
	events := &obs.CountingSink{}
	o.Sink = events
	env := sim.Env{Seq: seq, Resources: servers, Replication: 2, Speed: 1, Obs: o}
	mp := sim.MustRun(env, &baseline.MostPending{Margin: 2})

	lb, ub := rrsched.OfflineBracket(seq, servers/8)
	fmt.Printf("\n%-26s %10s %8s %8s\n", "algorithm", "reconfig", "drop", "total")
	row := func(name string, c rrsched.Cost) {
		fmt.Printf("%-26s %10d %8d %8d\n", name, c.Reconfig, c.Drop, c.Total())
	}
	row(stack.Algorithm, stack.Cost)
	row(batched.Algorithm, batched.Cost)
	row("most-pending(margin=2)", mp.Cost)
	fmt.Printf("\noffline bracket at m=%d: LB=%d UB=%d\n", servers/8, lb, ub)
	fmt.Printf("stack ratio vs LB: %.2f\n", float64(stack.Cost.Total())/float64(maxi(lb, 1)))

	// Ideal per-phase behavior: roughly ActivePerPhase reconfigured colors
	// per phase change. Print the reconfiguration budget a phase-aware
	// oracle would spend.
	oracle := offline.BestGreedy(seq, servers/8)
	fmt.Printf("best offline heuristic (m=%d): window=%d cost=%d\n",
		servers/8, oracle.Window, oracle.Cost.Total())

	// Metrics snapshot of the instrumented baseline run.
	snap := o.Metrics.Snapshot()
	rounds, _ := snap.Counter(obs.MetricRounds)
	reconfigs, _ := snap.Counter(obs.MetricReconfigs)
	dropped, _ := snap.Counter(obs.MetricDropped)
	executed, _ := snap.Counter(obs.MetricExecuted)
	fmt.Printf("\nmost-pending run, from the metrics registry:\n")
	fmt.Printf("  rounds=%d reconfigs=%d executed=%d dropped=%d events=%d\n",
		rounds, reconfigs, executed, dropped, events.Count())
	if age, ok := snap.Histogram(obs.MetricPendingAge); ok && age.Count > 0 {
		fmt.Printf("  mean wait before execution: %.1f rounds\n", float64(age.Sum)/float64(age.Count))
	}
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
