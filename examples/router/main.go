// Router: a multi-service software router on a multi-core network processor
// (the paper's motivating application, cf. Kokku et al. and Srinivasan et
// al.). Each packet class has a QoS delay tolerance; cores must be
// reconfigured between packet-processing services at a context-switch cost.
// The example compares the paper's stack against greedy baselines under
// bursty, skewed traffic and prints a per-class drop breakdown.
package main

import (
	"fmt"
	"log"

	"rrsched"
	"rrsched/internal/baseline"
	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func main() {
	// 12 packet classes: 4 voice-like (delay 2), 4 video-like (delay 8),
	// 4 bulk (delay 64). Zipf-skewed load, bursty arrivals.
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 42, Delta: 6, Colors: 12, Rounds: 1024,
		MinDelayExp: 1, MaxDelayExp: 6, Load: 0.45, ZipfS: 1.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	cores := 16
	fmt.Printf("router: %d packet classes, %d packets, %d cores, context-switch cost Δ=%d\n",
		len(seq.Colors()), seq.NumJobs(), cores, seq.Delta())

	stack, err := rrsched.Schedule(seq, cores)
	if err != nil {
		log.Fatal(err)
	}
	report("varbatch(dlru-edf)", seq, stack.Cost)

	env := sim.Env{Seq: seq, Resources: cores, Replication: 2, Speed: 1}
	for _, p := range []sim.Policy{&baseline.MostPending{}, &baseline.ColorEDF{}, &baseline.Static{}} {
		res, err := sim.Run(env, p)
		if err != nil {
			log.Fatal(err)
		}
		report(p.Name(), seq, res.Cost)
	}
	lb := offline.LowerBound(seq, cores/8)
	fmt.Printf("\ncertified offline lower bound (m=%d): %d\n", cores/8, lb)

	// Per-class SLO report for the stack: drops by delay class.
	drops := dropsByDelay(seq, stack.Schedule)
	fmt.Println("\nstack drop rate by delay tolerance:")
	for _, d := range []int64{2, 4, 8, 16, 32, 64} {
		if tot := totalsByDelay(seq)[d]; tot > 0 {
			fmt.Printf("  D=%-3d %5d packets, dropped %4d (%.1f%%)\n",
				d, tot, drops[d], 100*float64(drops[d])/float64(tot))
		}
	}

	// Policies that ignore recency thrash: count distinct reconfigurations.
	fmt.Printf("\nreconfigurations: stack=%d most-pending=%d\n",
		stack.Schedule.NumReconfigs(),
		sim.MustRun(env, &baseline.MostPending{}).Schedule.NumReconfigs())
}

func report(name string, seq *model.Sequence, c model.Cost) {
	fmt.Printf("%-20s reconfig=%-6d drop=%-6d total=%-6d (drop rate %.1f%%)\n",
		name, c.Reconfig, c.Drop, c.Total(), 100*float64(c.Drop)/float64(seq.NumJobs()))
}

func dropsByDelay(seq *model.Sequence, sched *model.Schedule) map[int64]int {
	executed := sched.ExecutedJobIDs()
	out := map[int64]int{}
	for _, j := range seq.Jobs() {
		if !executed[j.ID] {
			out[j.Delay]++
		}
	}
	return out
}

func totalsByDelay(seq *model.Sequence) map[int64]int {
	out := map[int64]int{}
	for _, j := range seq.Jobs() {
		out[j.Delay]++
	}
	return out
}
