// Background: the introduction's motivating dilemma. Background jobs have
// deadlines far in the future; short-term jobs arrive in intermittent
// bursts. Using idle cycles for background work aggressively causes
// thrashing (reconfiguration churn) or short-term drops; hoarding idle
// cycles causes underutilization (background drops). The example runs the
// pure policies and the combination side by side and prints the
// thrashing/underutilization decomposition.
package main

import (
	"fmt"
	"log"

	"rrsched/internal/baseline"
	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/reduce"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func main() {
	seq, err := workload.BackgroundShortTerm(workload.BackgroundConfig{
		Seed: 3, Delta: 8,
		ShortColors: 4, ShortDelay: 8,
		BackgroundColors: 2, BackgroundDelay: 512,
		Rounds: 2048, BurstProb: 0.4, BackgroundJobs: 384,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := 8
	fmt.Printf("scenario: %d short-term colors (D=8, bursty) + 2 background colors (D=512), %d jobs, n=%d, Δ=%d\n\n",
		4, seq.NumJobs(), n, seq.Delta())

	env := sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}
	fmt.Printf("%-24s %9s %7s %7s  %s\n", "policy", "reconfig", "drop", "total", "failure mode")
	show := func(name string, c model.Cost, note string) {
		fmt.Printf("%-24s %9d %7d %7d  %s\n", name, c.Reconfig, c.Drop, c.Total(), note)
	}

	lru := sim.MustRun(env, core.NewDeltaLRU())
	show("dlru (recency only)", lru.Cost, diagnose(seq, lru.Cost))

	edfRes := sim.MustRun(env, core.NewEDF())
	show("edf (deadline only)", edfRes.Cost, diagnose(seq, edfRes.Cost))

	ce := sim.MustRun(env, &baseline.ColorEDF{})
	show("color-edf (no counters)", ce.Cost, diagnose(seq, ce.Cost))

	combo := sim.MustRun(env, core.NewDeltaLRUEDF())
	show("dlru-edf (combination)", combo.Cost, diagnose(seq, combo.Cost))

	stack, err := reduce.RunDistribute(seq, n, core.NewDeltaLRUEDF())
	if err != nil {
		log.Fatal(err)
	}
	show("distribute(dlru-edf)", stack.Cost, diagnose(seq, stack.Cost))

	// Where do the drops land? Background drops = underutilization.
	fmt.Println("\ndrop location (background vs short-term):")
	for _, entry := range []struct {
		name string
		res  *sim.Result
	}{
		{"dlru", lru},
		{"edf", edfRes},
		{"dlru-edf", combo},
	} {
		name, res := entry.name, entry.res
		var bg, st int
		for c, k := range res.DropsByColor {
			if d, _ := seq.DelayBound(c); d > 8 {
				bg += k
			} else {
				st += k
			}
		}
		fmt.Printf("  %-10s background=%-6d short-term=%d\n", name, bg, st)
	}
}

// diagnose labels the dominant failure mode of a cost profile relative to
// the scenario's scale.
func diagnose(seq *model.Sequence, c model.Cost) string {
	jobs := int64(seq.NumJobs())
	switch {
	case c.Drop*4 > jobs:
		return "underutilization (heavy drops)"
	case c.Reconfig > 8*seq.Delta()*64:
		return "thrashing (reconfig churn)"
	case c.Drop == 0 && c.Reconfig <= 8*seq.Delta()*64:
		return "balanced"
	default:
		return "moderate"
	}
}
