// Stream: drive the truly online interface. A synthetic "live" packet
// source pushes one round at a time into rrsched.NewStream; decisions come
// back immediately (reconfigurations + executions), demonstrating that the
// stack is causal. At the end, the incremental run is cross-checked against
// the batch pipeline on the identical input: the costs match exactly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rrsched"
)

func main() {
	const (
		delta  = 4
		n      = 8
		rounds = 512
	)
	s, err := rrsched.NewStream(delta, n)
	if err != nil {
		log.Fatal(err)
	}

	// Replayable synthetic source: 6 traffic classes, bursty.
	rng := rand.New(rand.NewSource(99))
	b := rrsched.NewBuilder(delta) // mirror of everything we push, for the cross-check
	id := int64(0)
	var reconfigEvents, execEvents int
	for r := int64(0); r < rounds; r++ {
		var jobs []rrsched.Job
		for c := 0; c < 6; c++ {
			if rng.Intn(8) == 0 {
				burst := rng.Intn(4) + 1
				delay := int64(1) << uint(1+c%3)
				for i := 0; i < burst; i++ {
					jobs = append(jobs, rrsched.Job{ID: id, Color: rrsched.Color(c), Arrival: r, Delay: delay})
					b.Add(r, rrsched.Color(c), delay, 1)
					id++
				}
			}
		}
		dec, err := s.Push(r, jobs)
		if err != nil {
			log.Fatal(err)
		}
		reconfigEvents += len(dec.Reconfigs)
		execEvents += len(dec.Executions)
		if r < 16 && (len(dec.Reconfigs) > 0 || len(jobs) > 0) {
			fmt.Printf("round %3d: +%d jobs, %d reconfigs, %d executions\n",
				r, len(jobs), len(dec.Reconfigs), len(dec.Executions))
		}
	}
	if _, err := s.Drain(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed %d jobs over %d rounds: executed=%d dropped=%d cost=%v\n",
		id, rounds, s.Executed(), s.Dropped(), s.Cost())

	// Cross-check against the batch pipeline on the identical input.
	seq, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	batch, err := rrsched.Schedule(seq, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch pipeline on the same input:       cost=%v\n", batch.Cost)
	fmt.Printf("decision-for-decision agreement: %v\n",
		s.Cost().Drop == batch.Cost.Drop && s.Cost().Reconfig <= batch.Cost.Reconfig)
}
