// Quickstart: build a small instance by hand, run the paper's full online
// stack, and audit the schedule it produced.
package main

import (
	"fmt"
	"log"

	"rrsched"
)

func main() {
	// An instance with reconfiguration cost Δ = 4 and three categories:
	//   color 0: interactive requests, delay bound 4 (must run within 4 rounds)
	//   color 1: batch analytics, delay bound 16
	//   color 2: background compaction, delay bound 64
	b := rrsched.NewBuilder(4)
	for r := int64(0); r < 128; r += 4 {
		b.Add(r, 0, 4, 3) // 3 interactive jobs every 4 rounds
	}
	for r := int64(0); r < 128; r += 16 {
		b.Add(r, 1, 16, 10) // 10 analytics jobs every 16 rounds
	}
	b.Add(0, 2, 64, 50) // 50 compaction jobs up front
	seq, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Run VarBatch ∘ Distribute ∘ ΔLRU-EDF with 8 resources.
	res, err := rrsched.Schedule(seq, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("algorithm: %s\n", res.Algorithm)
	fmt.Printf("jobs:      %d (executed %d, dropped %d)\n",
		seq.NumJobs(), res.Schedule.NumExecs(), seq.NumJobs()-res.Schedule.NumExecs())
	fmt.Printf("cost:      reconfig=%d drop=%d total=%d\n",
		res.Cost.Reconfig, res.Cost.Drop, res.Cost.Total())

	// Independently re-audit the schedule: the library's engine already did
	// this, but the record is complete enough for anyone to re-check.
	cost, err := rrsched.Audit(seq, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit:     %v (matches: %v)\n", cost, cost == res.Cost)

	// Compare against the certified offline lower bound with 1 resource
	// (the paper's guarantee regime is n = 8m).
	lb := rrsched.OfflineLowerBound(seq, 1)
	fmt.Printf("offline:   LB(m=1)=%d  measured ratio=%.2f\n",
		lb, float64(res.Cost.Total())/float64(lb))
}
