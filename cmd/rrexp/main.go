// Command rrexp runs the experiment suite that stands in for the paper's
// (absent) tables and figures: every theorem, key lemma, and appendix
// lower-bound construction has an experiment (see DESIGN.md for the index).
//
// Examples:
//
//	rrexp -list
//	rrexp -run E1
//	rrexp -all
//	rrexp -all -quick -csv results/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rrsched/internal/experiments"
	"rrsched/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rrexp:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	// Experiments return errors rather than panicking, but a defect in an
	// experiment body must still exit with a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal panic: %v", r)
		}
	}()
	var (
		list     = flag.Bool("list", false, "list experiments")
		runID    = flag.String("run", "", "run one experiment by id (e.g. E3)")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "smaller sweeps")
		csvDir   = flag.String("csv", "", "also write tables as CSV files into this directory")
		metrics  = flag.String("metrics", "", "write harness metrics (experiments/tables run, per-experiment latency) as JSON (path, or - for stdout)")
		traceOut = flag.String("trace-out", "", "write one span per experiment as JSON (path, or - for stdout)")
	)
	flag.Parse()

	h, err := newHarnessObs(*metrics != "", *traceOut != "")
	if err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
	case *runID != "":
		e, ok := experiments.ByID(strings.ToUpper(*runID))
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *runID)
		}
		if err := h.observe(e, 0, func() error { return runOne(e, cfg, *csvDir, h) }); err != nil {
			return err
		}
	case *all:
		for i, e := range experiments.All() {
			if err := h.observe(e, i, func() error { return runOne(e, cfg, *csvDir, h) }); err != nil {
				return err
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	return h.dump(*metrics, *traceOut)
}

// harnessObs instruments the experiment harness itself: a counter per
// experiment and table, a latency histogram, and one span per experiment.
// The experiments' inner simulations stay uninstrumented — rrexp measures
// the suite, rrsim -metrics measures a single run.
type harnessObs struct {
	o           *obs.Observer
	experiments *obs.Counter
	tables      *obs.Counter
	latency     *obs.Histogram
}

func newHarnessObs(wantMetrics, wantTrace bool) (*harnessObs, error) {
	if !wantMetrics && !wantTrace {
		return nil, nil
	}
	o, err := obs.NewObserver()
	if err != nil {
		return nil, err
	}
	if wantTrace {
		o.Tracer = obs.NewTracer(obs.DefaultTracerCap)
	}
	h := &harnessObs{o: o}
	if h.experiments, err = o.Metrics.Counter("rrexp_experiments_total"); err != nil {
		return nil, err
	}
	if h.tables, err = o.Metrics.Counter("rrexp_tables_total"); err != nil {
		return nil, err
	}
	// Experiment wall time in nanoseconds: 1ms to ~17min.
	if h.latency, err = o.Metrics.Histogram("rrexp_experiment_ns", obs.ExpBuckets(1_000_000, 4, 10)); err != nil {
		return nil, err
	}
	return h, nil
}

// observe runs one experiment under a span and the latency histogram.
func (h *harnessObs) observe(e experiments.Experiment, idx int, run func() error) error {
	if h == nil {
		return run()
	}
	start := obs.Now()
	err := run()
	dur := obs.Now() - start
	h.experiments.Inc()
	h.latency.Observe(dur)
	if h.o.Tracer != nil {
		h.o.Tracer.RecordSpan(obs.Span{Name: e.ID, Round: int64(idx), Start: start, Dur: dur})
	}
	return err
}

func (h *harnessObs) countTable() {
	if h != nil {
		h.tables.Inc()
	}
}

// dump writes the requested artifacts ("-" means stdout).
func (h *harnessObs) dump(metrics, traceOut string) error {
	if h == nil {
		return nil
	}
	if metrics != "" {
		if err := writeOut(metrics, h.o.Metrics.Snapshot().WriteJSON); err != nil {
			return err
		}
	}
	if traceOut != "" {
		if err := writeOut(traceOut, h.o.Tracer.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}

// writeOut writes one JSON artifact to path ("-" means stdout).
func writeOut(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //lint:ignore errcheck the write error takes precedence
		return err
	}
	return f.Close()
}

func runOne(e experiments.Experiment, cfg experiments.Config, csvDir string, h *harnessObs) error {
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	fmt.Printf("claim: %s\n\n", e.Claim)
	tables, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	for i, tb := range tables {
		h.countTable()
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i)
			f, err := os.Create(filepath.Join(csvDir, name))
			if err != nil {
				return err
			}
			if err := tb.RenderCSV(f); err != nil {
				_ = f.Close() // the render error takes precedence
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
