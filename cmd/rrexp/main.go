// Command rrexp runs the experiment suite that stands in for the paper's
// (absent) tables and figures: every theorem, key lemma, and appendix
// lower-bound construction has an experiment (see DESIGN.md for the index).
//
// Examples:
//
//	rrexp -list
//	rrexp -run E1
//	rrexp -all
//	rrexp -all -quick -csv results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rrsched/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiments")
		run    = flag.String("run", "", "run one experiment by id (e.g. E3)")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "smaller sweeps")
		csvDir = flag.String("csv", "", "also write tables as CSV files into this directory")
	)
	flag.Parse()

	cfg := experiments.Config{Quick: *quick}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
	case *run != "":
		e, ok := experiments.ByID(strings.ToUpper(*run))
		if !ok {
			fmt.Fprintf(os.Stderr, "rrexp: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		runOne(e, cfg, *csvDir)
	case *all:
		for _, e := range experiments.All() {
			runOne(e, cfg, *csvDir)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, cfg experiments.Config, csvDir string) {
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	fmt.Printf("claim: %s\n\n", e.Claim)
	for i, tb := range e.Run(cfg) {
		if err := tb.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rrexp:", err)
			os.Exit(1)
		}
		fmt.Println()
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "rrexp:", err)
				os.Exit(1)
			}
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i)
			f, err := os.Create(filepath.Join(csvDir, name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "rrexp:", err)
				os.Exit(1)
			}
			if err := tb.RenderCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, "rrexp:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rrexp:", err)
				os.Exit(1)
			}
		}
	}
}
