// Command rrexp runs the experiment suite that stands in for the paper's
// (absent) tables and figures: every theorem, key lemma, and appendix
// lower-bound construction has an experiment (see DESIGN.md for the index).
//
// Examples:
//
//	rrexp -list
//	rrexp -run E1
//	rrexp -all
//	rrexp -all -quick -csv results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rrsched/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rrexp:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	// Experiments return errors rather than panicking, but a defect in an
	// experiment body must still exit with a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal panic: %v", r)
		}
	}()
	var (
		list   = flag.Bool("list", false, "list experiments")
		runID  = flag.String("run", "", "run one experiment by id (e.g. E3)")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "smaller sweeps")
		csvDir = flag.String("csv", "", "also write tables as CSV files into this directory")
	)
	flag.Parse()

	cfg := experiments.Config{Quick: *quick}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
	case *runID != "":
		e, ok := experiments.ByID(strings.ToUpper(*runID))
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *runID)
		}
		return runOne(e, cfg, *csvDir)
	case *all:
		for _, e := range experiments.All() {
			if err := runOne(e, cfg, *csvDir); err != nil {
				return err
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	return nil
}

func runOne(e experiments.Experiment, cfg experiments.Config, csvDir string) error {
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	fmt.Printf("claim: %s\n\n", e.Claim)
	tables, err := e.Run(cfg)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	for i, tb := range tables {
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i)
			f, err := os.Create(filepath.Join(csvDir, name))
			if err != nil {
				return err
			}
			if err := tb.RenderCSV(f); err != nil {
				_ = f.Close() // the render error takes precedence
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
