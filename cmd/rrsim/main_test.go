package main

import (
	"os"
	"path/filepath"
	"testing"

	"rrsched/internal/obs"
	"rrsched/internal/workload"
)

func baseCfg() workload.RandomConfig {
	return workload.RandomConfig{
		Seed: 1, Delta: 4, Colors: 6, Rounds: 64,
		MinDelayExp: 1, MaxDelayExp: 3, Load: 0.5,
	}
}

func TestBuildWorkloadKinds(t *testing.T) {
	for _, kind := range []string{"batched", "general", "zipf", "phase", "background", "diurnal"} {
		seq, err := buildWorkload(kind, "", baseCfg())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if seq.NumJobs() == 0 {
			t.Errorf("%s: empty workload", kind)
		}
		if err := seq.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	if _, err := buildWorkload("nope", "", baseCfg()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBuildWorkloadFromTrace(t *testing.T) {
	seq, err := buildWorkload("batched", "", baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteTrace(f, seq); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := buildWorkload("ignored", path, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumJobs() != seq.NumJobs() {
		t.Errorf("trace roundtrip: %d != %d jobs", back.NumJobs(), seq.NumJobs())
	}
	if _, err := buildWorkload("", filepath.Join(t.TempDir(), "missing.json"), baseCfg()); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestRunPolicyAllNames(t *testing.T) {
	seq, err := buildWorkload("general", "", baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"stack", "distribute", "dlru-edf", "dlru", "edf",
		"most-pending", "color-edf", "static", "never"}
	for _, name := range names {
		if name == "distribute" || name == "dlru-edf" || name == "dlru" || name == "edf" {
			// These require batched inputs.
			continue
		}
		cost, pname, sched, err := runPolicy(name, seq, 8, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pname == "" || cost.Total() < 0 || sched == nil {
			t.Errorf("%s: result %v %q", name, cost, pname)
		}
	}
	batched, err := buildWorkload("batched", "", baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"distribute", "dlru-edf", "dlru", "edf"} {
		if _, _, _, err := runPolicy(name, batched, 8, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, _, _, err := runPolicy("nope", seq, 8, nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestRunPolicyObserved: the -metrics/-trace-out path — an attached observer
// records the run without changing its cost.
func TestRunPolicyObserved(t *testing.T) {
	seq, err := buildWorkload("batched", "", baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"stack", "distribute", "most-pending"} {
		bare, _, _, err := runPolicy(name, seq, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		o, err := obs.NewObserver()
		if err != nil {
			t.Fatal(err)
		}
		o.Tracer = obs.NewTracer(obs.DefaultTracerCap)
		observed, _, _, err := runPolicy(name, seq, 8, o)
		if err != nil {
			t.Fatal(err)
		}
		if observed != bare {
			t.Errorf("%s: observed cost %v != bare %v", name, observed, bare)
		}
		snap := o.Metrics.Snapshot()
		if rounds, ok := snap.Counter(obs.MetricRounds); !ok || rounds == 0 {
			t.Errorf("%s: observer saw no rounds", name)
		}
		if len(o.Tracer.Spans()) == 0 {
			t.Errorf("%s: tracer recorded no spans", name)
		}
	}
}

func TestMaxi(t *testing.T) {
	if maxi(3, 5) != 5 || maxi(5, 3) != 5 {
		t.Error("maxi broken")
	}
}
