// Command rrsim runs one scheduling policy on one workload and prints the
// cost summary. Workloads come from the built-in generators or a JSON trace.
//
// Examples:
//
//	rrsim -policy stack -workload zipf -n 8 -delta 4 -rounds 512 -seed 1
//	rrsim -policy dlru-edf -workload batched -colors 10 -load 0.7
//	rrsim -policy most-pending -trace trace.json -n 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rrsched/internal/baseline"
	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/offline"
	"rrsched/internal/reduce"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func main() {
	// Library code returns errors; a defect that still panics must exit with
	// a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "rrsim: internal panic:", r)
			os.Exit(1)
		}
	}()
	var (
		policy    = flag.String("policy", "stack", "policy: stack | distribute | dlru-edf | dlru | edf | most-pending | color-edf | static | never")
		wl        = flag.String("workload", "batched", "workload: batched | general | zipf | phase | background | diurnal")
		tracePath = flag.String("trace", "", "JSON trace file (overrides -workload)")
		n         = flag.Int("n", 8, "number of online resources (multiple of 4)")
		m         = flag.Int("m", 1, "offline resources for the lower bound / bracket")
		delta     = flag.Int64("delta", 4, "reconfiguration cost Δ")
		colors    = flag.Int("colors", 8, "number of colors")
		rounds    = flag.Int64("rounds", 512, "arrival rounds")
		load      = flag.Float64("load", 0.6, "per-color load fraction")
		seed      = flag.Int64("seed", 1, "PRNG seed")
		minExp    = flag.Uint("min-delay-exp", 1, "minimum delay bound exponent (D = 2^exp)")
		maxExp    = flag.Uint("max-delay-exp", 4, "maximum delay bound exponent")
		bracket   = flag.Bool("bracket", true, "also compute the offline OPT bracket at -m resources")
		saveTrace = flag.String("save-trace", "", "write the generated workload as a JSON trace")
		saveSched = flag.String("save-schedule", "", "write the resulting schedule as JSON (replayable with rrreplay)")
		metrics   = flag.String("metrics", "", "write the end-of-run metrics snapshot as JSON (path, or - for stdout)")
		traceOut  = flag.String("trace-out", "", "write the phase span trace as JSON (path, or - for stdout)")
	)
	flag.Parse()

	var o *obs.Observer
	if *metrics != "" || *traceOut != "" {
		var err error
		if o, err = obs.NewObserver(); err != nil {
			fatal(err)
		}
		if *traceOut != "" {
			o.Tracer = obs.NewTracer(obs.DefaultTracerCap)
		}
	}

	seq, err := buildWorkload(*wl, *tracePath, workload.RandomConfig{
		Seed: *seed, Delta: *delta, Colors: *colors, Rounds: *rounds,
		MinDelayExp: *minExp, MaxDelayExp: *maxExp, Load: *load,
	})
	if err != nil {
		fatal(err)
	}
	// Canonical job IDs (round-major, color-ascending): saved traces and
	// schedules then compose — rrreplay can audit one against the other.
	seq = seq.Canonical()
	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if err := workload.WriteTrace(f, seq); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("workload: %s  jobs=%d rounds=%d colors=%d Δ=%d batched=%v rate-limited=%v\n",
		*wl, seq.NumJobs(), seq.NumRounds(), len(seq.Colors()), seq.Delta(), seq.IsBatched(), seq.IsRateLimited())

	cost, name, sched, err := runPolicy(*policy, seq, *n, o)
	if err != nil {
		fatal(err)
	}
	if *metrics != "" {
		if err := writeOut(*metrics, o.Metrics.Snapshot().WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeOut(*traceOut, o.Tracer.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *saveSched != "" {
		f, err := os.Create(*saveSched)
		if err != nil {
			fatal(err)
		}
		if err := model.WriteSchedule(f, sched); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("policy:   %s  n=%d\n", name, *n)
	fmt.Printf("cost:     reconfig=%d drop=%d total=%d\n", cost.Reconfig, cost.Drop, cost.Total())

	if *bracket {
		br := offline.BracketOPT(seq, *m)
		fmt.Printf("offline:  m=%d LB=%d UB=%d  ratioLB=%.3f ratioUB=%.3f\n",
			*m, br.LB, br.UB,
			float64(cost.Total())/float64(maxi(br.LB, 1)),
			float64(cost.Total())/float64(maxi(br.UB, 1)))
	}
}

func buildWorkload(kind, tracePath string, cfg workload.RandomConfig) (*model.Sequence, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close() //lint:ignore errcheck read-only file; the read error is what matters
		return workload.ReadTrace(f)
	}
	switch kind {
	case "batched":
		cfg.RateLimited = true
		return workload.RandomBatched(cfg)
	case "general":
		return workload.RandomGeneral(cfg)
	case "zipf":
		cfg.ZipfS = 1.4
		return workload.RandomGeneral(cfg)
	case "phase":
		return workload.PhaseShift(workload.PhaseShiftConfig{
			Seed: cfg.Seed, Delta: cfg.Delta, Colors: cfg.Colors,
			PhaseLen: cfg.Rounds / 4, Phases: 4,
			ActivePerPhase: cfg.Colors / 3, Delay: int64(1) << cfg.MinDelayExp, Load: cfg.Load,
		})
	case "background":
		return workload.BackgroundShortTerm(workload.BackgroundConfig{
			Seed: cfg.Seed, Delta: cfg.Delta,
			ShortColors: cfg.Colors / 2, ShortDelay: int64(1) << cfg.MinDelayExp,
			BackgroundColors: 2, BackgroundDelay: int64(1) << cfg.MaxDelayExp,
			Rounds: cfg.Rounds, BurstProb: 0.5,
			BackgroundJobs: int(cfg.Load * float64(int64(1)<<cfg.MaxDelayExp)),
		})
	case "diurnal":
		return workload.Diurnal(workload.DiurnalConfig{
			Seed: cfg.Seed, Delta: cfg.Delta, Colors: cfg.Colors,
			Period: cfg.Rounds / 2, Days: 2,
			Delay: int64(1) << cfg.MinDelayExp, PeakLoad: cfg.Load, TroughFrac: 0.1,
		})
	default:
		return nil, fmt.Errorf("unknown workload %q", kind)
	}
}

// writeOut writes one JSON artifact to path ("-" means stdout).
func writeOut(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //lint:ignore errcheck the write error takes precedence
		return err
	}
	return f.Close()
}

func runPolicy(name string, seq *model.Sequence, n int, o *obs.Observer) (model.Cost, string, *model.Schedule, error) {
	switch name {
	case "stack":
		res, err := reduce.RunVarBatchObserved(seq, n, core.NewDeltaLRUEDF(), o)
		if err != nil {
			return model.Cost{}, "", nil, err
		}
		return res.Cost, res.Policy, res.Schedule, nil
	case "distribute":
		res, err := reduce.RunDistributeObserved(seq, n, core.NewDeltaLRUEDF(), o)
		if err != nil {
			return model.Cost{}, "", nil, err
		}
		return res.Cost, res.Policy, res.Schedule, nil
	}
	var p sim.Policy
	switch name {
	case "dlru-edf":
		p = core.NewDeltaLRUEDF()
	case "dlru":
		p = core.NewDeltaLRU()
	case "edf":
		p = core.NewEDF()
	case "most-pending":
		p = &baseline.MostPending{}
	case "color-edf":
		p = &baseline.ColorEDF{}
	case "static":
		p = &baseline.Static{}
	case "never":
		p = baseline.Never{}
	default:
		return model.Cost{}, "", nil, fmt.Errorf("unknown policy %q", name)
	}
	res, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1, Obs: o}, p)
	if err != nil {
		return model.Cost{}, "", nil, err
	}
	return res.Cost, res.Policy, res.Schedule, nil
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrsim:", err)
	os.Exit(1)
}
