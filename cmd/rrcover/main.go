// Command rrcover enforces the repository's per-package test-coverage floor.
// It reads a coverage profile produced by `go test -coverprofile`, computes
// statement coverage per package, and compares it against the committed
// floor file (coverage_floor.json): any floored package that regresses below
// its floor — or disappears from the profile — fails the gate with a
// non-zero exit. Packages not yet floored are reported but do not fail, so
// the gate ratchets coverage without blocking exploratory packages.
//
// Examples:
//
//	go test -coverprofile=cover.out ./...
//	rrcover -profile cover.out                    # gate against coverage_floor.json
//	rrcover -profile cover.out -write             # regenerate the floor file
//	rrcover -profile cover.out -list              # print per-package coverage
//
// The floor file is regenerated with -write, which sets each package's floor
// one percentage point below its measured coverage (rounded down to 0.1) to
// absorb run-to-run noise from timing-dependent paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path"
	"sort"
	"strings"
)

// Schema identifies the floor file format; readers reject other schemas.
const Schema = "rrsched-cover/v1"

// writeSlack is the percentage-point headroom -write leaves below the
// measured coverage.
const writeSlack = 1.0

// Floors is the committed coverage floor file.
type Floors struct {
	Schema string `json:"schema"`
	// Floors maps import path to the minimum acceptable statement coverage
	// in percent.
	Floors map[string]float64 `json:"floors"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrcover:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rrcover", flag.ContinueOnError)
	var (
		profile   = fs.String("profile", "cover.out", "coverage profile from `go test -coverprofile`")
		floorPath = fs.String("floor", "coverage_floor.json", "committed floor file")
		write     = fs.Bool("write", false, "regenerate the floor file from the profile instead of gating")
		list      = fs.Bool("list", false, "print per-package coverage and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*profile)
	if err != nil {
		return err
	}
	defer f.Close() //lint:ignore errcheck read-only file; the read error is what matters
	cov, err := ParseProfile(f)
	if err != nil {
		return err
	}
	if len(cov) == 0 {
		return fmt.Errorf("profile %s covers no packages", *profile)
	}

	if *list {
		for _, pkg := range sortedKeys(cov) {
			_, _ = fmt.Fprintf(stdout, "%-40s %6.1f%%\n", pkg, cov[pkg]) // best-effort listing
		}
		return nil
	}
	if *write {
		return writeFloors(*floorPath, cov)
	}

	ff, err := readFloors(*floorPath)
	if err != nil {
		return err
	}
	failures, unfloored := Gate(ff, cov)
	for _, pkg := range unfloored {
		_, _ = fmt.Fprintf(stdout, "rrcover: note: %s (%.1f%%) has no floor; run -write to ratchet it in\n", pkg, cov[pkg]) // advisory output; the gate result is the exit code
	}
	if len(failures) > 0 {
		return fmt.Errorf("coverage regressed below the committed floor:\n  %s", strings.Join(failures, "\n  "))
	}
	_, _ = fmt.Fprintf(stdout, "rrcover: %d floored packages at or above their floors\n", len(ff.Floors)) // advisory output; the gate result is the exit code
	return nil
}

// Gate checks measured coverage against the floors. It returns one failure
// line per floored package that is missing from the profile or below its
// floor, and the list of measured internal packages that have no floor yet.
func Gate(ff *Floors, cov map[string]float64) (failures, unfloored []string) {
	for _, pkg := range sortedKeys(ff.Floors) {
		floor := ff.Floors[pkg]
		got, ok := cov[pkg]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: floored at %.1f%% but absent from the profile", pkg, floor))
			continue
		}
		if got < floor {
			failures = append(failures, fmt.Sprintf("%s: %.1f%% < floor %.1f%%", pkg, got, floor))
		}
	}
	for _, pkg := range sortedKeys(cov) {
		if _, ok := ff.Floors[pkg]; !ok && strings.Contains(pkg, "/internal/") {
			unfloored = append(unfloored, pkg)
		}
	}
	return failures, unfloored
}

// block is one profile entry's identity; repeated entries for the same
// source block are merged (covered if any run covered it).
type block struct {
	file string
	pos  string
}

// ParseProfile computes per-package statement coverage (in percent) from a
// coverage profile. The format is one "mode:" header line followed by
// "file.go:SL.SC,EL.EC numStmts count" lines.
func ParseProfile(r io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	stmts := make(map[block]int)
	covered := make(map[block]bool)
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "mode:") {
		return nil, fmt.Errorf("not a coverage profile: missing mode header")
	}
	for i, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		colon := strings.LastIndex(line, ":")
		if colon <= 0 {
			return nil, fmt.Errorf("line %d: no file separator in %q", i+2, line)
		}
		var sl, sc, el, ec, n, count int
		if _, err := fmt.Sscanf(line[colon+1:], "%d.%d,%d.%d %d %d", &sl, &sc, &el, &ec, &n, &count); err != nil {
			return nil, fmt.Errorf("line %d: malformed block %q: %v", i+2, line, err)
		}
		if n < 0 || count < 0 {
			return nil, fmt.Errorf("line %d: negative statement or count in %q", i+2, line)
		}
		b := block{file: line[:colon], pos: line[colon+1 : strings.Index(line[colon:], " ")+colon]}
		stmts[b] = n
		if count > 0 {
			covered[b] = true
		}
	}
	type tally struct{ total, hit int }
	byPkg := make(map[string]*tally)
	for b, n := range stmts {
		pkg := path.Dir(b.file)
		t := byPkg[pkg]
		if t == nil {
			t = &tally{}
			byPkg[pkg] = t
		}
		t.total += n
		if covered[b] {
			t.hit += n
		}
	}
	out := make(map[string]float64, len(byPkg))
	for pkg, t := range byPkg {
		if t.total > 0 {
			out[pkg] = 100 * float64(t.hit) / float64(t.total)
		}
	}
	return out, nil
}

func readFloors(path string) (*Floors, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //lint:ignore errcheck read-only file; the read error is what matters
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var ff Floors
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	if ff.Schema != Schema {
		return nil, fmt.Errorf("%s: unsupported schema %q (want %q)", path, ff.Schema, Schema)
	}
	return &ff, nil
}

func writeFloors(path string, cov map[string]float64) error {
	ff := Floors{Schema: Schema, Floors: make(map[string]float64, len(cov))}
	for pkg, c := range cov {
		if !strings.Contains(pkg, "/internal/") {
			continue
		}
		floor := math.Floor((c-writeSlack)*10) / 10
		if floor < 0 {
			floor = 0
		}
		ff.Floors[pkg] = floor
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ff); err != nil {
		f.Close() //lint:ignore errcheck the encode error takes precedence
		return err
	}
	return f.Close()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
