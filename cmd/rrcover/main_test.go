package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: set
rrsched/internal/sim/engine.go:10.2,12.3 3 1
rrsched/internal/sim/engine.go:14.2,20.3 5 0
rrsched/internal/sim/state.go:8.2,9.10 2 7
rrsched/internal/obs/registry.go:5.2,6.3 4 1
rrsched/cmd/rrsim/main.go:3.2,4.3 10 0
`

func TestParseProfile(t *testing.T) {
	cov, err := ParseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	// sim: (3+2) hit of (3+5+2) = 50%; obs: 100%; cmd/rrsim: 0%.
	if got := cov["rrsched/internal/sim"]; got != 50 {
		t.Errorf("sim coverage = %v, want 50", got)
	}
	if got := cov["rrsched/internal/obs"]; got != 100 {
		t.Errorf("obs coverage = %v, want 100", got)
	}
	if got := cov["rrsched/cmd/rrsim"]; got != 0 {
		t.Errorf("rrsim coverage = %v, want 0", got)
	}
}

func TestParseProfileMergesRepeatedBlocks(t *testing.T) {
	// The same block seen uncovered then covered counts once, as covered.
	p := "mode: set\n" +
		"rrsched/internal/x/a.go:1.2,3.4 4 0\n" +
		"rrsched/internal/x/a.go:1.2,3.4 4 1\n" +
		"rrsched/internal/x/a.go:5.2,6.4 4 0\n"
	cov, err := ParseProfile(strings.NewReader(p))
	if err != nil {
		t.Fatal(err)
	}
	if got := cov["rrsched/internal/x"]; got != 50 {
		t.Errorf("coverage = %v, want 50 (merged block covered once)", got)
	}
}

func TestParseProfileRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a profile\n",
		"mode: set\nrrsched/a.go:garbage 1 2\n",
		"mode: set\nnocolon 1 2\n",
	} {
		if _, err := ParseProfile(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed profile %q", bad)
		}
	}
}

func TestGate(t *testing.T) {
	ff := &Floors{Schema: Schema, Floors: map[string]float64{
		"rrsched/internal/sim":  49.5,
		"rrsched/internal/obs":  99.0,
		"rrsched/internal/gone": 10.0,
	}}
	cov := map[string]float64{
		"rrsched/internal/sim": 50,
		"rrsched/internal/obs": 80, // regressed
		"rrsched/internal/new": 33, // unfloored
		"rrsched/cmd/rrsim":    0,  // not internal: never listed
	}
	failures, unfloored := Gate(ff, cov)
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want obs regression + gone absence", failures)
	}
	if !strings.Contains(failures[1], "obs") || !strings.Contains(failures[0], "gone") {
		t.Errorf("unexpected failure set: %v", failures)
	}
	if len(unfloored) != 1 || unfloored[0] != "rrsched/internal/new" {
		t.Errorf("unfloored = %v, want only internal/new", unfloored)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "cover.out")
	floor := filepath.Join(dir, "floor.json")
	if err := os.WriteFile(prof, []byte(sampleProfile), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	// -write then gate: freshly written floors must pass.
	if err := run([]string{"-profile", prof, "-floor", floor, "-write"}, &out); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := run([]string{"-profile", prof, "-floor", floor}, &out); err != nil {
		t.Fatalf("gate after write: %v", err)
	}
	if !strings.Contains(out.String(), "at or above") {
		t.Errorf("no success line: %q", out.String())
	}

	// A profile that loses the obs package must fail the gate.
	lost := strings.ReplaceAll(sampleProfile, "rrsched/internal/obs/registry.go:5.2,6.3 4 1\n", "")
	if err := os.WriteFile(prof, []byte(lost), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-profile", prof, "-floor", floor}, &out)
	if err == nil || !strings.Contains(err.Error(), "obs") {
		t.Fatalf("gate passed despite a vanished package: %v", err)
	}

	// A regressed package (0% coverage for sim) must fail too.
	regressed := strings.ReplaceAll(sampleProfile, "engine.go:10.2,12.3 3 1", "engine.go:10.2,12.3 3 0")
	regressed = strings.ReplaceAll(regressed, "state.go:8.2,9.10 2 7", "state.go:8.2,9.10 2 0")
	if err := os.WriteFile(prof, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-profile", prof, "-floor", floor}, &out)
	if err == nil || !strings.Contains(err.Error(), "sim") {
		t.Fatalf("gate passed despite regressed coverage: %v", err)
	}

	// -list prints every package.
	out.Reset()
	if err := run([]string{"-profile", prof, "-floor", floor, "-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rrsched/internal/sim") {
		t.Errorf("list output missing packages: %q", out.String())
	}
}
