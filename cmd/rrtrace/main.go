// Command rrtrace generates, inspects, and converts workload traces.
//
// Examples:
//
//	rrtrace gen -workload zipf -rounds 512 -o trace.json
//	rrtrace info -i trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"rrsched/internal/model"
	"rrsched/internal/workload"
)

func main() {
	// Library code returns errors; a defect that still panics must exit with
	// a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "rrtrace: internal panic:", r)
			os.Exit(1)
		}
	}()
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rrtrace gen|info [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		wl     = fs.String("workload", "batched", "batched | general | zipf | phase | background | diurnal")
		out    = fs.String("o", "", "output file (default stdout)")
		delta  = fs.Int64("delta", 4, "reconfiguration cost Δ")
		colors = fs.Int("colors", 8, "number of colors")
		rounds = fs.Int64("rounds", 512, "arrival rounds")
		load   = fs.Float64("load", 0.6, "per-color load")
		seed   = fs.Int64("seed", 1, "PRNG seed")
		minExp = fs.Uint("min-delay-exp", 1, "minimum delay bound exponent")
		maxExp = fs.Uint("max-delay-exp", 4, "maximum delay bound exponent")
	)
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning
	cfg := workload.RandomConfig{
		Seed: *seed, Delta: *delta, Colors: *colors, Rounds: *rounds,
		MinDelayExp: *minExp, MaxDelayExp: *maxExp, Load: *load,
	}
	var seq *model.Sequence
	var err error
	switch *wl {
	case "batched":
		cfg.RateLimited = true
		seq, err = workload.RandomBatched(cfg)
	case "general":
		seq, err = workload.RandomGeneral(cfg)
	case "zipf":
		cfg.ZipfS = 1.4
		seq, err = workload.RandomGeneral(cfg)
	case "phase":
		seq, err = workload.PhaseShift(workload.PhaseShiftConfig{
			Seed: *seed, Delta: *delta, Colors: *colors,
			PhaseLen: *rounds / 4, Phases: 4,
			ActivePerPhase: *colors / 3, Delay: int64(1) << *minExp, Load: *load,
		})
	case "background":
		seq, err = workload.BackgroundShortTerm(workload.BackgroundConfig{
			Seed: *seed, Delta: *delta,
			ShortColors: *colors / 2, ShortDelay: int64(1) << *minExp,
			BackgroundColors: 2, BackgroundDelay: int64(1) << *maxExp,
			Rounds: *rounds, BurstProb: 0.5,
			BackgroundJobs: int(*load * float64(int64(1)<<*maxExp)),
		})
	case "diurnal":
		seq, err = workload.Diurnal(workload.DiurnalConfig{
			Seed: *seed, Delta: *delta, Colors: *colors,
			Period: *rounds / 2, Days: 2,
			Delay: int64(1) << *minExp, PeakLoad: *load, TroughFrac: 0.1,
		})
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = f
	}
	if err := workload.WriteTrace(w, seq); err != nil {
		fatal(err)
	}
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (default stdin)")
	_ = fs.Parse(args) // ExitOnError: Parse exits instead of returning
	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close() //lint:ignore errcheck read-only file; the read error is what matters
		r = f
	}
	seq, err := workload.ReadTrace(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("jobs:          %d\n", seq.NumJobs())
	fmt.Printf("rounds:        %d (horizon %d)\n", seq.NumRounds(), seq.Horizon())
	fmt.Printf("delta:         %d\n", seq.Delta())
	fmt.Printf("batched:       %v\n", seq.IsBatched())
	fmt.Printf("rate-limited:  %v\n", seq.IsRateLimited())
	fmt.Printf("pow2 delays:   %v\n", seq.PowerOfTwoDelays())
	fmt.Printf("colors:        %d\n", len(seq.Colors()))
	for _, c := range seq.Colors() {
		d, _ := seq.DelayBound(c)
		fmt.Printf("  %-6v D=%-6d jobs=%d\n", c, d, seq.JobsOfColor(c))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrtrace:", err)
	os.Exit(1)
}
