// Command rrlint runs the repository's static-analysis engine
// (internal/analysis) over every package of the module and reports
// invariant violations. The v1 analyzers guard the scheduling library
// (determinism, nopanic, errcheck, floatcmp, layering); the v2 analyzers
// guard the concurrent serve/dispatch tier (lockcheck, goroleak,
// atomicwrite, fencedwrite, httpharden).
//
// Usage:
//
//	go run ./cmd/rrlint ./...                 # whole module
//	go run ./cmd/rrlint ./internal/sim/...    # one subtree
//	go run ./cmd/rrlint -json ./...           # machine-readable report
//	go run ./cmd/rrlint -disable=floatcmp ./...
//	go run ./cmd/rrlint -baseline lint_baseline.json ./...
//	go run ./cmd/rrlint -baseline lint_baseline.json -write-baseline ./...
//	go run ./cmd/rrlint -list
//
// Exit status is a three-way contract:
//
//	0  clean — no unsuppressed, unbaselined findings;
//	1  findings — at least one live finding (or, in -baseline mode, a stale
//	   baseline entry: the debt ledger shrank and must be regenerated);
//	2  usage or load error — bad flags, unknown analyzer, unreadable
//	   baseline, or packages that fail to parse/type-check.
//
// Suppress a finding with a justified comment on or directly above the
// flagged line:
//
//	//lint:ignore determinism keys are sorted two lines below
//
// An ignore with no reason is itself a finding, and so is a stale ignore
// whose analyzer ran but suppressed nothing. -baseline compares findings
// against a committed ledger of accepted debt: new findings fail, and
// baselined classes that disappear fail too until -write-baseline shrinks
// the ledger (the same ratchet contract as rrcover's coverage floors).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rrsched/internal/analysis"
)

// reportSchema versions the -json envelope.
const reportSchema = "rrlint/v2"

// report is the -json envelope: every diagnostic (suppressed ones included,
// with their justification), the analyzers and package count that produced
// them, stale baseline entries, and summary counts.
type report struct {
	Schema    string                   `json:"schema"`
	Analyzers []string                 `json:"analyzers"`
	Packages  int                      `json:"packages"`
	Findings  []reportFinding          `json:"findings"`
	Stale     []analysis.BaselineEntry `json:"stale_baseline,omitempty"`
	Counts    reportCounts             `json:"counts"`
}

// reportFinding is one diagnostic plus its baseline disposition.
type reportFinding struct {
	analysis.Diagnostic
	Baselined bool `json:"baselined,omitempty"`
}

// reportCounts summarizes the run: Total diagnostics emitted, how many were
// Suppressed by ignore directives, how many were Baselined, and how many New
// findings gate the exit status.
type reportCounts struct {
	Total      int `json:"total"`
	Suppressed int `json:"suppressed"`
	Baselined  int `json:"baselined"`
	New        int `json:"new"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rrlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit the rrlint/v2 JSON report")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	baselinePath := fs.String("baseline", "", "compare findings against this committed baseline file")
	writeBaseline := fs.Bool("write-baseline", false, "regenerate the -baseline file from this run's findings and exit 0")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "directory to locate the module from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "rrlint: -write-baseline requires -baseline")
		return 2
	}

	analyzers, unknown := analysis.ByName(splitList(*enable), splitList(*disable))
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "rrlint: unknown analyzer(s): %s (use -list)\n", strings.Join(unknown, ", "))
		return 2
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "rrlint: no analyzers selected")
		return 2
	}

	var baseline *analysis.Baseline
	if *baselinePath != "" && !*writeBaseline {
		b, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			return 2
		}
		baseline = b
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		return 2
	}

	pkgs, err := selectPackages(mod, fs.Args(), *dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		return 2
	}

	result := analysis.Analyze(pkgs, analyzers)
	// Report positions relative to the module root: stable across machines
	// and what CI annotations (and the committed baseline) expect.
	for i := range result.Diags {
		if rel, err := filepath.Rel(root, result.Diags[i].File); err == nil {
			result.Diags[i].File = rel
		}
	}
	findings := result.Findings()

	if *writeBaseline {
		if err := analysis.WriteBaseline(*baselinePath, analysis.NewBaseline(findings)); err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "rrlint: wrote %s with %d finding(s)\n", *baselinePath, len(findings))
		return 0
	}

	var fresh []analysis.Diagnostic
	var baselined []bool
	var stale []analysis.BaselineEntry
	if baseline != nil {
		fresh, baselined, stale = baseline.Diff(findings)
	} else {
		fresh = findings
		baselined = make([]bool, len(findings))
	}

	if *jsonOut {
		emitJSON(result, analyzers, len(pkgs), findings, baselined, stale, len(fresh))
	} else {
		for _, d := range fresh {
			fmt.Fprintln(os.Stdout, d)
		}
		for _, e := range stale {
			fmt.Fprintf(os.Stdout, "%s: stale baseline entry: %d %s finding(s) no longer observed (%s); regenerate with -write-baseline\n", e.File, e.Count, e.Analyzer, e.Message)
		}
		if len(fresh) > 0 || len(stale) > 0 {
			fmt.Fprintf(os.Stderr, "rrlint: %d finding(s), %d stale baseline entr(ies) in %d package(s)\n", len(fresh), len(stale), len(pkgs))
		}
	}
	if len(fresh) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// emitJSON writes the rrlint/v2 report. baselined is index-aligned with
// findings (the unsuppressed subset of result.Diags).
func emitJSON(result *analysis.Result, analyzers []*analysis.Analyzer, packages int, findings []analysis.Diagnostic, baselined []bool, stale []analysis.BaselineEntry, fresh int) {
	rep := report{
		Schema:   reportSchema,
		Packages: packages,
		Findings: []reportFinding{},
		Stale:    stale,
	}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	// Walk result.Diags (suppressed included) in order, consuming the
	// baseline flags that apply to the unsuppressed subset.
	next := 0
	for _, d := range result.Diags {
		f := reportFinding{Diagnostic: d}
		if !d.Suppressed {
			if next < len(findings) {
				f.Baselined = baselined[next]
			}
			next++
		}
		rep.Findings = append(rep.Findings, f)
		rep.Counts.Total++
		if d.Suppressed {
			rep.Counts.Suppressed++
		} else if f.Baselined {
			rep.Counts.Baselined++
		}
	}
	rep.Counts.New = fresh
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
	}
}

// selectPackages filters the module's packages by the command-line patterns:
// "./..." keeps everything, "./x/..." keeps the subtree rooted at x, and
// "./x" keeps exactly x. No patterns means everything.
func selectPackages(mod *analysis.Module, patterns []string, dir string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return mod.Pkgs, nil
	}
	abs := func(p string) (string, error) {
		return filepath.Abs(filepath.Join(dir, p))
	}
	keep := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				for _, p := range mod.Pkgs {
					keep[p.Path] = true
				}
				continue
			}
		}
		target, err := abs(pat)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range mod.Pkgs {
			if p.Dir == target || (recursive && strings.HasPrefix(p.Dir, target+string(filepath.Separator))) {
				keep[p.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	var out []*analysis.Package
	for _, p := range mod.Pkgs {
		if keep[p.Path] {
			out = append(out, p)
		}
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
