// Command rrlint runs the repository's static-analysis engine
// (internal/analysis) over every package of the module and reports
// invariant violations: nondeterminism sources, library panics, discarded
// errors, floating-point equality, and layering breaks.
//
// Usage:
//
//	go run ./cmd/rrlint ./...                 # whole module
//	go run ./cmd/rrlint ./internal/sim/...    # one subtree
//	go run ./cmd/rrlint -json ./...           # machine-readable output
//	go run ./cmd/rrlint -disable=floatcmp ./...
//	go run ./cmd/rrlint -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Suppress a
// finding with a justified comment on or directly above the flagged line:
//
//	//lint:ignore determinism keys are sorted two lines below
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rrsched/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rrlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "directory to locate the module from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, unknown := analysis.ByName(splitList(*enable), splitList(*disable))
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "rrlint: unknown analyzer(s): %s (use -list)\n", strings.Join(unknown, ", "))
		return 2
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "rrlint: no analyzers selected")
		return 2
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		return 2
	}

	pkgs, err := selectPackages(mod, fs.Args(), *dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		return 2
	}

	diags := analysis.Run(pkgs, analyzers)
	// Report positions relative to the module root: stable across machines
	// and what CI annotations expect.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "rrlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectPackages filters the module's packages by the command-line patterns:
// "./..." keeps everything, "./x/..." keeps the subtree rooted at x, and
// "./x" keeps exactly x. No patterns means everything.
func selectPackages(mod *analysis.Module, patterns []string, dir string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return mod.Pkgs, nil
	}
	abs := func(p string) (string, error) {
		return filepath.Abs(filepath.Join(dir, p))
	}
	keep := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				for _, p := range mod.Pkgs {
					keep[p.Path] = true
				}
				continue
			}
		}
		target, err := abs(pat)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range mod.Pkgs {
			if p.Dir == target || (recursive && strings.HasPrefix(p.Dir, target+string(filepath.Separator))) {
				keep[p.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	var out []*analysis.Package
	for _, p := range mod.Pkgs {
		if keep[p.Path] {
			out = append(out, p)
		}
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
