package main

import (
	"path/filepath"
	"testing"
)

// repoRoot walks up from the test's working directory (cmd/rrlint) to the
// module root.
func repoRoot() string { return filepath.Join("..", "..") }

func TestRunCleanOnOwnRepo(t *testing.T) {
	if code := run([]string{"-C", repoRoot(), "./..."}); code != 0 {
		t.Fatalf("rrlint on its own repository: exit %d, want 0", code)
	}
}

func TestRunFindsFixtureViolations(t *testing.T) {
	// The determinism fixture is a standalone module with known-bad code;
	// pointing the driver at it must produce findings (exit 1).
	fixture := filepath.Join(repoRoot(), "internal", "analysis", "testdata", "src", "determinism")
	if code := run([]string{"-C", fixture, "-enable", "determinism", "./..."}); code != 1 {
		t.Fatalf("rrlint on the determinism fixture: exit %d, want 1", code)
	}
	if code := run([]string{"-C", fixture, "-enable", "determinism", "-json", "./..."}); code != 1 {
		t.Fatalf("rrlint -json on the determinism fixture: exit %d, want 1", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-C", repoRoot(), "-enable", "nosuchanalyzer", "./..."},
		{"-C", repoRoot(), "./no/such/dir"},
		{"-C", filepath.Join(repoRoot(), ".."), "./..."}, // outside any module
	}
	for _, args := range cases {
		if code := run(args); code != 2 {
			t.Errorf("run(%v): exit %d, want 2", args, code)
		}
	}
}

func TestRunSubtreePattern(t *testing.T) {
	if code := run([]string{"-C", repoRoot(), "./internal/model", "./internal/queue/..."}); code != 0 {
		t.Fatalf("rrlint on model+queue subtrees: exit %d, want 0", code)
	}
}

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("rrlint -list: exit %d, want 0", code)
	}
}
