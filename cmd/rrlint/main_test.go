package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the test's working directory (cmd/rrlint) to the
// module root.
func repoRoot() string { return filepath.Join("..", "..") }

func TestRunCleanOnOwnRepo(t *testing.T) {
	if code := run([]string{"-C", repoRoot(), "./..."}); code != 0 {
		t.Fatalf("rrlint on its own repository: exit %d, want 0", code)
	}
}

func TestRunFindsFixtureViolations(t *testing.T) {
	// The determinism fixture is a standalone module with known-bad code;
	// pointing the driver at it must produce findings (exit 1).
	fixture := filepath.Join(repoRoot(), "internal", "analysis", "testdata", "src", "determinism")
	if code := run([]string{"-C", fixture, "-enable", "determinism", "./..."}); code != 1 {
		t.Fatalf("rrlint on the determinism fixture: exit %d, want 1", code)
	}
	if code := run([]string{"-C", fixture, "-enable", "determinism", "-json", "./..."}); code != 1 {
		t.Fatalf("rrlint -json on the determinism fixture: exit %d, want 1", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-C", repoRoot(), "-enable", "nosuchanalyzer", "./..."},
		{"-C", repoRoot(), "./no/such/dir"},
		{"-C", filepath.Join(repoRoot(), ".."), "./..."}, // outside any module
	}
	for _, args := range cases {
		if code := run(args); code != 2 {
			t.Errorf("run(%v): exit %d, want 2", args, code)
		}
	}
}

func TestRunSubtreePattern(t *testing.T) {
	if code := run([]string{"-C", repoRoot(), "./internal/model", "./internal/queue/..."}); code != 0 {
		t.Fatalf("rrlint on model+queue subtrees: exit %d, want 0", code)
	}
}

func TestRunList(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("rrlint -list: exit %d, want 0", code)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it wrote.
func captureStdout(t *testing.T, f func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf []byte
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- buf
	}()
	f()
	w.Close()
	os.Stdout = saved
	return <-done
}

// TestRunJSONEnvelope pins the rrlint/v2 report shape on the determinism
// fixture: schema field, analyzer list, and per-finding metadata.
func TestRunJSONEnvelope(t *testing.T) {
	fixture := filepath.Join(repoRoot(), "internal", "analysis", "testdata", "src", "suppress")
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-C", fixture, "-enable", "determinism", "-json", "./..."})
	})
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep struct {
		Schema    string   `json:"schema"`
		Analyzers []string `json:"analyzers"`
		Packages  int      `json:"packages"`
		Findings  []struct {
			Analyzer       string `json:"analyzer"`
			File           string `json:"file"`
			Line           int    `json:"line"`
			Suppressed     bool   `json:"suppressed"`
			SuppressReason string `json:"suppress_reason"`
		} `json:"findings"`
		Counts struct {
			Total      int `json:"total"`
			Suppressed int `json:"suppressed"`
			New        int `json:"new"`
		} `json:"counts"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("parsing report: %v\n%s", err, out)
	}
	if rep.Schema != "rrlint/v2" {
		t.Fatalf("schema = %q, want rrlint/v2", rep.Schema)
	}
	if len(rep.Analyzers) != 1 || rep.Analyzers[0] != "determinism" || rep.Packages != 1 {
		t.Fatalf("envelope metadata wrong: %+v", rep)
	}
	if rep.Counts.Total != rep.Counts.Suppressed+rep.Counts.New {
		t.Fatalf("counts don't add up: %+v", rep.Counts)
	}
	sawSuppressed := false
	for _, f := range rep.Findings {
		if f.Analyzer == "" || f.File == "" || f.Line <= 0 {
			t.Fatalf("finding missing metadata: %+v", f)
		}
		if f.Suppressed {
			sawSuppressed = true
			if f.SuppressReason == "" {
				t.Fatalf("suppressed finding without its justification: %+v", f)
			}
		}
	}
	if !sawSuppressed {
		t.Fatal("the suppress fixture must contribute suppressed findings to the report")
	}
}

// TestRunBaselineLifecycle drives the ratchet end to end on the determinism
// fixture: write a baseline, gate cleanly against it, then prove a stale
// baseline (debt that no longer exists) fails the run.
func TestRunBaselineLifecycle(t *testing.T) {
	fixture := filepath.Join(repoRoot(), "internal", "analysis", "testdata", "src", "determinism")
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	if code := run([]string{"-C", fixture, "-enable", "determinism", "-baseline", baseline, "-write-baseline", "./..."}); code != 0 {
		t.Fatalf("-write-baseline: exit %d, want 0", code)
	}
	// Against its own baseline the fixture is accepted debt: exit 0.
	if code := run([]string{"-C", fixture, "-enable", "determinism", "-baseline", baseline, "./..."}); code != 0 {
		t.Fatalf("baselined run: exit %d, want 0", code)
	}
	// Without the baseline the findings are live again: exit 1.
	if code := run([]string{"-C", fixture, "-enable", "determinism", "./..."}); code != 1 {
		t.Fatalf("unbaselined run: exit %d, want 1", code)
	}
	// A baseline with debt the tree no longer has must fail until
	// regenerated: point the fixture baseline at a clean package.
	clean := filepath.Join(repoRoot(), "internal", "analysis", "testdata", "src", "floatcmp")
	if code := run([]string{"-C", clean, "-enable", "determinism", "-baseline", baseline, "./..."}); code != 1 {
		t.Fatalf("stale baseline run: exit %d, want 1 (ratchet must force regeneration)", code)
	}
	// An unreadable baseline is a usage error.
	if code := run([]string{"-C", fixture, "-enable", "determinism", "-baseline", filepath.Join(t.TempDir(), "missing.json"), "./..."}); code != 2 {
		t.Fatalf("missing baseline: exit %d, want 2", code)
	}
	// -write-baseline without -baseline is a usage error.
	if code := run([]string{"-C", fixture, "-write-baseline", "./..."}); code != 2 {
		t.Fatalf("-write-baseline without -baseline: exit %d, want 2", code)
	}
}

// TestRunRepoBaselineGate mirrors the CI step: the repository gated against
// its committed (empty) baseline is clean.
func TestRunRepoBaselineGate(t *testing.T) {
	baseline := filepath.Join(repoRoot(), "lint_baseline.json")
	if code := run([]string{"-C", repoRoot(), "-baseline", baseline, "./..."}); code != 0 {
		t.Fatalf("repo against committed baseline: exit %d, want 0", code)
	}
}
