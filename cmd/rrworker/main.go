// Command rrworker runs one worker daemon of the dispatched fleet: it
// registers with an rrdispatch instance, receives shard leases over its
// heartbeats, serves the rrserve HTTP API for the shards it holds, pushes a
// checkpoint to the dispatcher after every tick, and fences itself (closes
// every shard) if the dispatcher becomes unreachable for the miss budget.
//
// Examples:
//
//	rrworker -name w1 -dispatcher http://127.0.0.1:9090 -addr 127.0.0.1:0
//	rrworker -name w2 -dispatcher http://127.0.0.1:9090 -addr :8081
//
// On SIGINT/SIGTERM the worker drains gracefully: it hands every held shard
// back to the dispatcher with a final checkpoint, so the shards regrant to
// surviving workers without waiting out failure detection. SIGKILL is the
// crash path the dispatcher's lease protocol exists for.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"rrsched/internal/dispatch"
)

func main() {
	// Library code returns errors; a defect that still panics must exit with
	// a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "rrworker: internal panic:", r)
			os.Exit(1)
		}
	}()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rrworker:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing, so tests can inject flags, a signal
// channel, and receive the bound serve address.
func run(args []string, stdout io.Writer, sigs <-chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("rrworker", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		name       = fs.String("name", "", "worker name, unique within the fleet (required)")
		dispatcher = fs.String("dispatcher", "http://127.0.0.1:9090", "rrdispatch base URL")
		addr       = fs.String("addr", "127.0.0.1:0", "listen address for the shard-serving API (port 0 picks a free port)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *name == "" {
		return fmt.Errorf("-name is required")
	}

	w, err := dispatch.StartWorker(*name, *dispatcher, *addr, stdout)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- w.Addr()
	}

	sig := <-sigs
	_, _ = fmt.Fprintf(stdout, "rrworker %s: received %v, handing shards back\n", *name, sig) // best-effort status output
	w.Close()
	return nil
}
