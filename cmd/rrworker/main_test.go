package main

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"rrsched/internal/dispatch"
	"rrsched/internal/model"
	"rrsched/internal/serve"
	"rrsched/internal/stream"
	"rrsched/internal/workload"
)

// TestMain doubles as the worker entrypoint for subprocess tests: when
// RRWORKER_EXEC=1 the test binary IS rrworker, running run() with the flags
// from RRWORKER_ARGS. The chaos test below execs itself this way so the
// worker it SIGKILLs is a real OS process, not a goroutine.
func TestMain(m *testing.M) {
	if os.Getenv("RRWORKER_EXEC") == "1" {
		sigs := make(chan os.Signal, 2)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		if err := run(strings.Fields(os.Getenv("RRWORKER_ARGS")), os.Stdout, sigs, nil); err != nil {
			fmt.Fprintln(os.Stderr, "rrworker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// workerProc is one rrworker subprocess.
type workerProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

func startWorkerProc(t *testing.T, name, dispatcherURL string) *workerProc {
	t.Helper()
	w := &workerProc{cmd: exec.Command(os.Args[0]), out: &bytes.Buffer{}}
	w.cmd.Env = append(os.Environ(),
		"RRWORKER_EXEC=1",
		"RRWORKER_ARGS=-name "+name+" -dispatcher "+dispatcherURL+" -addr 127.0.0.1:0",
	)
	w.cmd.Stdout = w.out
	w.cmd.Stderr = w.out
	if err := w.cmd.Start(); err != nil {
		t.Fatalf("starting worker %s: %v", name, err)
	}
	return w
}

const (
	hbEvery    = 50 * time.Millisecond
	missBudget = 3
	// failoverBound is the generous end-to-end budget for one failover:
	// detection takes at most (missBudget + 0.5) heartbeat intervals, the
	// survivor's pickup one more, and the rest is slack for -race and loaded
	// CI machines.
	failoverBound = 40 * hbEvery

	arrivalRounds = 16
	totalRounds   = 34 // arrivals plus a drain tail past the max delay bound (2^4)
)

type chaosTenant struct {
	name string
	seq  *model.Sequence
}

func chaosFixture(t *testing.T) []chaosTenant {
	t.Helper()
	names := []string{"alpha", "beta", "gamma", "delta"}
	tenants := make([]chaosTenant, len(names))
	for i, name := range names {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed:        900 + int64(i),
			Delta:       4,
			Colors:      4 + i%2,
			Rounds:      arrivalRounds,
			MinDelayExp: 2,
			MaxDelayExp: 4,
			Load:        0.7,
		})
		if err != nil {
			t.Fatalf("workload for %s: %v", name, err)
		}
		tenants[i] = chaosTenant{name: name, seq: seq.Canonical()}
	}
	return tenants
}

func batchesAt(tenants []chaosTenant, round int64) []dispatch.Batch {
	var out []dispatch.Batch
	for _, tn := range tenants {
		if round >= tn.seq.NumRounds() {
			continue
		}
		arrivals := tn.seq.Request(round)
		if len(arrivals) == 0 {
			continue
		}
		jobs := make([]serve.SubmitJob, len(arrivals))
		for i, j := range arrivals {
			jobs[i] = serve.SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
		}
		out = append(out, dispatch.Batch{Tenant: tn.name, Jobs: jobs})
	}
	return out
}

// referenceRaw is the uninterrupted single-node truth: the tenant's arrivals
// through a bare stream.Scheduler, wrapped in the decisions envelope the
// fleet serves.
func referenceRaw(t *testing.T, tn chaosTenant, shard int) []byte {
	t.Helper()
	epoch := int64(0)
	for epoch < tn.seq.NumRounds() && len(tn.seq.Request(epoch)) == 0 {
		epoch++
	}
	sched, err := stream.New(stream.Config{Delta: 4, Resources: 8})
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	var decs []stream.Decision
	for local := int64(0); local < totalRounds-epoch; local++ {
		var jobs []model.Job
		if seqRound := local + epoch; seqRound < tn.seq.NumRounds() {
			arrivals := tn.seq.Request(seqRound)
			jobs = make([]model.Job, len(arrivals))
			copy(jobs, arrivals)
		}
		for i := range jobs {
			jobs[i].Arrival = local
		}
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
		dec, err := sched.Push(local, jobs)
		if err != nil {
			t.Fatalf("reference push for %s at local %d: %v", tn.name, local, err)
		}
		decs = append(decs, dec)
	}
	raw, err := serve.MarshalResponse(&serve.DecisionsResponse{
		Schema:    serve.DecisionsSchema,
		Tenant:    tn.name,
		Shard:     shard,
		Epoch:     epoch,
		Round:     totalRounds,
		Decisions: decs,
	})
	if err != nil {
		t.Fatalf("MarshalResponse: %v", err)
	}
	return raw
}

// TestWorkerSIGKILLFailover is the headline chaos property of the dispatcher
// tier, with real processes: two rrworker subprocesses serve a four-shard
// fleet; one is SIGKILLed right after landing a round's admissions (stranding
// state newer than its last checkpoint); the dispatcher detects the missed
// heartbeats, fences the leases, and regrants the shards to the survivor from
// stored checkpoints; the driver's repair loop resubmits and re-ticks; and
// every tenant's merged decision stream is byte-identical to an uninterrupted
// single-node run. The failover must complete within a bounded number of
// heartbeat intervals.
func TestWorkerSIGKILLFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and waits out real heartbeat timeouts")
	}
	d, err := dispatch.New(dispatch.Config{
		Service:        dispatch.ServiceConfig{Shards: 4, Resources: 8, Delta: 4, Watermark: 1 << 16, RecordDecisions: true},
		HeartbeatEvery: hbEvery,
		MissBudget:     missBudget,
	})
	if err != nil {
		t.Fatalf("dispatch.New: %v", err)
	}
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	w1 := startWorkerProc(t, "w1", srv.URL)
	w2 := startWorkerProc(t, "w2", srv.URL)
	defer func() {
		_ = w1.cmd.Process.Kill() // idempotent teardown; the test kills w1 itself
		_ = w1.cmd.Wait()         // reap; exit status asserted in the body
		_ = w2.cmd.Process.Kill() // teardown of the graceful path's failure case
		_ = w2.cmd.Wait()         // reap; exit status asserted in the body
	}()

	waitFor(t, "full assignment", 10*time.Second, func() bool { return d.Stats().Assigned == 4 })

	driver, err := dispatch.NewDriver(srv.URL, dispatch.DriverConfig{Attempts: 600, RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	tenants := chaosFixture(t)

	const killRound = 6
	for r := int64(0); r < totalRounds; r++ {
		batches := batchesAt(tenants, r)
		if r == killRound {
			// Mid-burst: this round's admissions are landed and then the
			// worker dies before ticking them — the restored checkpoints
			// predate the admissions, and only the driver's resubmission
			// brings them back.
			for _, b := range batches {
				if out, err := driver.Submit(b.Tenant, b.Jobs); err != nil || !out.Landed() {
					t.Fatalf("pre-kill submit %s: out=%+v err=%v", b.Tenant, out, err)
				}
			}
			if err := w1.cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL w1: %v", err)
			}
			killed := time.Now()
			if err := driver.Round(batches); err != nil {
				t.Fatalf("repair round %d: %v\nw1 output:\n%s", r+1, err, w1.out)
			}
			if took := time.Since(killed); took > failoverBound {
				t.Fatalf("failover took %v, budget %v (%.1f heartbeat intervals)",
					took, failoverBound, float64(took)/float64(hbEvery))
			}
			continue
		}
		if err := driver.Round(batches); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}

	// Merged decision streams must be byte-identical to the uninterrupted
	// single-node reference.
	for _, tn := range tenants {
		got, err := driver.DecisionsRaw(tn.name)
		if err != nil {
			t.Fatalf("DecisionsRaw(%s): %v", tn.name, err)
		}
		want := referenceRaw(t, tn, driver.ShardOf(tn.name))
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %s: decision stream diverges after SIGKILL failover\nfleet: %.200s\nref:   %.200s",
				tn.name, got, want)
		}
	}

	// The dead worker was reaped by SIGKILL, the fleet reconverged on the
	// survivor, and the failover left its mark in the metrics.
	if err := w1.cmd.Wait(); err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("w1 exit: %v, want killed by signal", err)
	}
	st := d.Stats()
	if st.Assigned != 4 {
		t.Fatalf("fleet did not reconverge: %+v", st)
	}
	for _, w := range st.Workers {
		if w.Worker == "w2" && w.Held != 4 {
			t.Fatalf("survivor holds %d shards, want 4: %+v", w.Held, st.Workers)
		}
	}
	if n, _ := d.Metrics().Counter("dispatch_failovers_total"); n < 2 {
		t.Fatalf("dispatch_failovers_total = %d, want >= 2 (both of w1's shards)", n)
	}

	// The survivor drains gracefully on SIGTERM and exits 0.
	if err := w2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM w2: %v", err)
	}
	if err := w2.cmd.Wait(); err != nil {
		t.Fatalf("w2 graceful exit: %v\noutput:\n%s", err, w2.out)
	}
	waitFor(t, "handback after SIGTERM", 10*time.Second, func() bool { return d.Stats().Assigned == 0 })
}

func waitFor(t *testing.T, what string, limit time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunFlagValidation pins the CLI contract.
func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dispatcher", "http://127.0.0.1:1"}, &out, nil, nil); err == nil || !strings.Contains(err.Error(), "-name") {
		t.Fatalf("missing -name: err = %v", err)
	}
	if err := run([]string{"-name", "w", "extra"}, &out, nil, nil); err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("stray args: err = %v", err)
	}
}
