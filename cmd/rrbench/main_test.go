package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rrsched/internal/perf"
)

// quickRun invokes the CLI in quick mode on the cheap ring scenario.
func quickRun(t *testing.T, extra ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	args := append([]string{"-quick", "-scenario", "^queue/ring$"}, extra...)
	err := run(args, &out)
	return out.String(), err
}

func TestQuickSmokeWritesValidReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	stdout, err := quickRun(t, "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "report schema round-trip ok") {
		t.Errorf("quick mode did not verify the round-trip:\n%s", stdout)
	}
	rep, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != perf.Schema || len(rep.Results) != 1 || rep.Results[0].Name != "queue/ring" {
		t.Errorf("unexpected report: %+v", rep)
	}
	if rep.Machine.GoVersion == "" || rep.Machine.GOMAXPROCS <= 0 {
		t.Errorf("machine fields missing: %+v", rep.Machine)
	}
}

// fullRun invokes the CLI in full measurement mode on the cheap ring
// scenario (quick results are deliberately skipped by the regression gate,
// so the gate tests must measure for real).
func fullRun(t *testing.T, extra ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	args := append([]string{"-scenario", "^queue/ring$"}, extra...)
	err := run(args, &out)
	return out.String(), err
}

// TestBaselineRegressionExitsNonZero is the acceptance check for the perf
// gate: against a doctored baseline that claims the ring scenario used to be
// essentially free, a fresh run must be reported as a regression (non-nil
// error from run, hence exit 1 from main).
func TestBaselineRegressionExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if _, err := fullRun(t, "-out", base); err != nil {
		t.Fatal(err)
	}

	// Doctor the baseline: pretend the scenario used to run 1000x faster.
	doctored := doctorBaseline(t, base, func(r *perf.Result) {
		r.NsPerRound /= 1000
		if r.NsPerRound == 0 {
			r.NsPerRound = 1e-6
		}
	})

	out := filepath.Join(dir, "current.json")
	stdout, err := fullRun(t, "-out", out, "-baseline", doctored, "-threshold", "0.25")
	if err == nil {
		t.Fatalf("regression vs doctored baseline not detected:\n%s", stdout)
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error %q does not mention the regression", err)
	}

	// Against the honest baseline (same machine moments apart) a generous
	// threshold must pass.
	if _, err := fullRun(t, "-out", out, "-baseline", base, "-threshold", "1000"); err != nil {
		t.Errorf("honest baseline at threshold 1000 failed: %v", err)
	}
}

// TestQuickWireMatrixRoundTrips extends the quick smoke to the wire rows:
// all twelve codec scenarios measure and round-trip through the report
// schema, so the CI smoke catches a wire scenario that stops setting up.
func TestQuickWireMatrixRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wire.json")
	var out bytes.Buffer
	if err := run([]string{"-quick", "-scenario", "^wire/", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	rep, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 12 {
		t.Fatalf("wire matrix produced %d rows, want 12:\n%s", len(rep.Results), out.String())
	}
	for _, want := range []string{"wire/json/encode/b1", "wire/json/decode/b256", "wire/binary/encode/b16", "wire/binary/decode/b256"} {
		if _, ok := rep.Lookup(want); !ok {
			t.Errorf("report lacks %s", want)
		}
	}
}

// TestWireBaselineGatesAllocRegression is the e2e form of the zero-alloc
// gate: a real measurement of the binary decode row records 0 allocs/round;
// re-running against that baseline with a threshold so lax only an infinite
// regression could trip proves the gate passes exactly while the decode path
// stays allocation-free — and a doctored baseline shows the diff actually
// fails runs, wire rows included.
func TestWireBaselineGatesAllocRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	wireRun := func(extra ...string) (string, error) {
		var out bytes.Buffer
		// Default -out points at the committed report; tests must never
		// write into the working tree.
		args := append([]string{"-scenario", "^wire/binary/decode/b16$",
			"-out", filepath.Join(dir, "scratch.json")}, extra...)
		err := run(args, &out)
		return out.String(), err
	}
	if _, err := wireRun("-out", base); err != nil {
		t.Fatal(err)
	}
	rep, err := readReport(base)
	if err != nil {
		t.Fatal(err)
	}
	row, ok := rep.Lookup("wire/binary/decode/b16")
	if !ok {
		t.Fatal("baseline lacks the binary decode row")
	}
	if row.AllocsPerRound != 0 {
		t.Fatalf("binary decode measured %v allocs/round, want 0", row.AllocsPerRound)
	}
	// Threshold 1e9: relative regressions cannot trip, only the +Inf of
	// allocs climbing off a zero baseline can. Passing means the current run
	// is still exactly zero-alloc.
	if stdout, err := wireRun("-baseline", base, "-threshold", "1e9"); err != nil {
		t.Fatalf("zero-alloc gate tripped on an honest re-run: %v\n%s", err, stdout)
	}
	// And the gate has teeth on wire rows: a baseline claiming the decode
	// used to be 1000x faster fails the run.
	doctored := doctorBaseline(t, base, func(r *perf.Result) {
		r.NsPerRound /= 1000
		if r.NsPerRound == 0 {
			r.NsPerRound = 1e-6
		}
	})
	stdout, err := wireRun("-baseline", doctored, "-threshold", "0.25")
	if err == nil {
		t.Fatalf("regression vs doctored wire baseline not detected:\n%s", stdout)
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error %q does not mention the regression", err)
	}
}

func TestListAndBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"engine/n8", "policy/dlru-edf/n512", "stream/checkpoint", "sweep/fanout"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks %s", name)
		}
	}
	if err := run([]string{"-scenario", "("}, &out); err == nil {
		t.Error("invalid scenario regexp accepted")
	}
	if err := run([]string{"-baseline", "/does/not/exist.json", "-quick", "-scenario", "^queue/ring$", "-out", ""}, &out); err == nil {
		t.Error("missing baseline file accepted")
	}
}

// doctorBaseline rewrites every result of the report at path with mutate and
// writes the result to a new file, returning its path.
func doctorBaseline(t *testing.T, path string, mutate func(*perf.Result)) string {
	t.Helper()
	rep, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		mutate(&rep.Results[i])
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "doctored.json")
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}
