// Command rrbench runs the repository's benchmark matrix (internal/perf) and
// writes a schema-versioned JSON report, the repo's performance trajectory
// record. It can also diff the fresh run against a baseline report and fail
// (exit non-zero) past a regression threshold, which makes it usable as a
// perf gate next to the test suite.
//
// Examples:
//
//	rrbench                                    # full run -> BENCH_sim.json
//	rrbench -scenario 'engine/'                # only the engine scenarios
//	rrbench -baseline BENCH_old.json           # diff against a saved run
//	rrbench -quick -out /tmp/smoke.json        # single-shot CI smoke run
//	rrbench -cpuprofile cpu.pb.gz -scenario engine/n64
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"rrsched/internal/perf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrbench:", err)
		os.Exit(1)
	}
}

// run executes the benchmark CLI with the given arguments; a non-nil error
// means a non-zero exit, including the -baseline regression gate.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rrbench", flag.ContinueOnError)
	var (
		out        = fs.String("out", "BENCH_sim.json", "output report path (empty: stdout only)")
		baseline   = fs.String("baseline", "", "baseline report to diff against; regressions past -threshold exit non-zero")
		threshold  = fs.Float64("threshold", 0.25, "relative regression threshold for -baseline diffing (0.25 = 25%)")
		scenario   = fs.String("scenario", "", "regexp selecting scenarios to run (default: all)")
		quick      = fs.Bool("quick", false, "single-shot smoke mode: run each scenario once and verify the report round-trips")
		list       = fs.Bool("list", false, "list scenarios and exit")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile covering every selected scenario")
		memprofile = fs.String("memprofile", "", "write an allocation profile taken after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scs, err := perf.Select(*scenario)
	if err != nil {
		return err
	}
	if *list {
		for _, s := range scs {
			_, _ = fmt.Fprintf(stdout, "%-24s %s\n", s.Name, s.Doc) // best-effort progress output; the report file is the product
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "rrbench: closing cpu profile:", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	report := perf.NewReport()
	for _, s := range scs {
		var (
			res perf.Result
			err error
		)
		if *quick {
			res, err = perf.MeasureQuick(s)
		} else {
			res, err = perf.Measure(s)
		}
		if err != nil {
			return err
		}
		_, _ = fmt.Fprintf(stdout, "%-24s %12.1f ns/round %10.3f allocs/round %12.1f B/round  (%d iter x %d rounds)\n", // best-effort progress output
			res.Name, res.NsPerRound, res.AllocsPerRound, res.BytesPerRound, res.Iterations, res.RoundsPerOp)
		report.Results = append(report.Results, res)
	}
	report.Sort()

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC() // flush accurate allocation figures into the profile
		werr := pprof.Lookup("allocs").WriteTo(f, 0)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing mem profile: %w", werr)
		}
	}

	if *out != "" {
		if err := writeReport(*out, report); err != nil {
			return err
		}
		_, _ = fmt.Fprintf(stdout, "wrote %s (%d scenarios, schema %s)\n", *out, len(report.Results), perf.Schema) // best-effort progress output; the report file is the product
		if *quick {
			// Smoke mode doubles as a schema check: the file just written
			// must decode and validate.
			if err := verifyRoundTrip(*out, report); err != nil {
				return err
			}
			_, _ = fmt.Fprintln(stdout, "report schema round-trip ok") // best-effort progress output; the report file is the product
		}
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			return err
		}
		regs := perf.Compare(base, report, *threshold)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "rrbench: REGRESSION", r)
			}
			return fmt.Errorf("%d metric(s) regressed more than %.0f%% vs %s", len(regs), *threshold*100, *baseline)
		}
		_, _ = fmt.Fprintf(stdout, "no regression vs %s at threshold %.0f%%\n", *baseline, *threshold*100) // best-effort progress output; the report file is the product
	}
	return nil
}

func writeReport(path string, r *perf.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := r.Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func readReport(path string) (*perf.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //lint:ignore errcheck read-only file; the read error is what matters
	return perf.ReadReport(f)
}

// verifyRoundTrip re-reads the just-written report and checks it matches
// what was measured, scenario for scenario.
func verifyRoundTrip(path string, want *perf.Report) error {
	got, err := readReport(path)
	if err != nil {
		return fmt.Errorf("round-trip: %w", err)
	}
	if got.Schema != want.Schema || len(got.Results) != len(want.Results) {
		return fmt.Errorf("round-trip: decoded %d results under schema %q, want %d under %q",
			len(got.Results), got.Schema, len(want.Results), want.Schema)
	}
	for i, g := range got.Results {
		if g != want.Results[i] {
			return fmt.Errorf("round-trip: result %q differs after decode", g.Name)
		}
	}
	return nil
}
