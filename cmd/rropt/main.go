// Command rropt computes offline baselines for an instance: the certified
// lower bound, the best heuristic schedule, and (when the instance is small
// enough) the exact optimum by dynamic programming, then compares the online
// stack against them.
//
// Example:
//
//	rropt -m 1 -n 8 -seed 3 -colors 3 -rounds 24
//	rropt -trace trace.json -m 2 -n 16
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/reduce"
	"rrsched/internal/workload"
)

func main() {
	// Library code returns errors; a defect that still panics must exit with
	// a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "rropt: internal panic:", r)
			os.Exit(1)
		}
	}()
	var (
		tracePath = flag.String("trace", "", "JSON trace file (overrides the generator)")
		m         = flag.Int("m", 1, "offline resources")
		n         = flag.Int("n", 8, "online resources for the stack comparison")
		delta     = flag.Int64("delta", 2, "reconfiguration cost Δ")
		colors    = flag.Int("colors", 3, "number of colors")
		rounds    = flag.Int64("rounds", 24, "arrival rounds")
		load      = flag.Float64("load", 0.5, "per-color load")
		seed      = flag.Int64("seed", 1, "PRNG seed")
		maxStates = flag.Int("max-states", 500000, "exact solver state budget per round")
		solver    = flag.String("solver", "dp", "exact solver: dp (layered dynamic program) | bb (branch and bound)")
	)
	flag.Parse()

	var seq *model.Sequence
	var err error
	if *tracePath != "" {
		f, ferr := os.Open(*tracePath)
		if ferr != nil {
			fatal(ferr)
		}
		seq, err = workload.ReadTrace(f)
		_ = f.Close() // read-only; the read error is what matters
	} else {
		seq, err = workload.RandomGeneral(workload.RandomConfig{
			Seed: *seed, Delta: *delta, Colors: *colors, Rounds: *rounds,
			MinDelayExp: 1, MaxDelayExp: 2, Load: *load,
		})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: jobs=%d rounds=%d colors=%d Δ=%d\n", seq.NumJobs(), seq.NumRounds(), len(seq.Colors()), seq.Delta())

	lb := offline.LowerBound(seq, *m)
	greedy := offline.BestGreedy(seq, *m)
	fmt.Printf("offline m=%d: LB=%d  heuristic UB=%d (window=%d, reconfig=%d, drop=%d)\n",
		*m, lb, greedy.Cost.Total(), greedy.Window, greedy.Cost.Reconfig, greedy.Cost.Drop)

	var opt int64
	switch *solver {
	case "dp":
		opt, err = offline.Exact(seq, *m, offline.ExactOptions{MaxStates: *maxStates})
	case "bb":
		opt, err = offline.ExactBB(seq, *m, offline.BBOptions{MaxNodes: *maxStates * 10})
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}
	switch {
	case errors.Is(err, offline.ErrTooLarge):
		fmt.Println("exact OPT: instance too large for the exact solver (use the LB/UB bracket)")
	case err != nil:
		fatal(err)
	default:
		fmt.Printf("exact OPT: %d  (sandwich ok: %v)\n", opt, lb <= opt && opt <= greedy.Cost.Total())
	}

	res, err := reduce.RunVarBatch(seq, *n, core.NewDeltaLRUEDF())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("online stack n=%d: cost=%d (reconfig=%d, drop=%d)  ratioLB=%.3f\n",
		*n, res.Cost.Total(), res.Cost.Reconfig, res.Cost.Drop,
		float64(res.Cost.Total())/float64(maxi(lb, 1)))
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rropt:", err)
	os.Exit(1)
}
