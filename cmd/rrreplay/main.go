// Command rrreplay audits a saved schedule against a saved workload trace
// and prints the independent cost derivation plus a schedule analysis
// (utilization, thrash index, per-color statistics). Every experiment
// artifact in this repository is replayable: traces come from rrtrace /
// rrsim -save-trace, schedules from rrsim -save-schedule.
//
// Example:
//
//	rrsim -workload zipf -save-trace t.json -save-schedule s.json
//	rrreplay -trace t.json -schedule s.json
package main

import (
	"flag"
	"fmt"
	"os"

	"rrsched/internal/introspect"
	"rrsched/internal/model"
	"rrsched/internal/workload"
)

func main() {
	// Library code returns errors; a defect that still panics must exit with
	// a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "rrreplay: internal panic:", r)
			os.Exit(1)
		}
	}()
	var (
		tracePath = flag.String("trace", "", "JSON workload trace (required)")
		schedPath = flag.String("schedule", "", "JSON schedule (required)")
		top       = flag.Int("top", 5, "show the N most reconfigured colors")
		gantt     = flag.Bool("gantt", false, "render an ASCII per-resource timeline")
		width     = flag.Int("width", 96, "gantt chart width in columns")
	)
	flag.Parse()
	if *tracePath == "" || *schedPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	seq, err := workload.ReadTrace(tf)
	_ = tf.Close() // read-only; the read error is what matters
	if err != nil {
		fatal(err)
	}
	sf, err := os.Open(*schedPath)
	if err != nil {
		fatal(err)
	}
	sched, err := model.ReadSchedule(sf)
	_ = sf.Close() // read-only; the read error is what matters
	if err != nil {
		fatal(err)
	}

	cost, err := model.Audit(seq, sched)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrreplay: ILLEGAL SCHEDULE:", err)
		os.Exit(1)
	}
	fmt.Printf("audit:  legal schedule for %d jobs on %d resources (speed %d)\n",
		seq.NumJobs(), sched.NumResources, sched.Speed)
	fmt.Printf("cost:   reconfig=%d drop=%d total=%d\n", cost.Reconfig, cost.Drop, cost.Total())

	rep, err := introspect.Analyze(seq, sched)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("detail: %s\n", rep.Summary())
	fmt.Printf("top %d reconfigured colors:\n", *top)
	for _, s := range rep.TopReconfigured(*top) {
		fmt.Printf("  %-6v reconfigs=%-5d executed=%-6d dropped=%-6d residency=%d\n",
			s.Color, s.Reconfigs, s.Executed, s.Dropped, s.Residency)
	}
	if *gantt {
		fmt.Println()
		if err := introspect.Gantt(seq, sched, introspect.GanttOptions{Width: *width}, os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrreplay:", err)
	os.Exit(1)
}
