package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"rrsched/internal/dispatch"
	"rrsched/internal/serve"
)

// startDispatch runs rrdispatch's run() in a goroutine with an injected
// signal channel, exactly as main wires it, and hands back the bound address.
func startDispatch(t *testing.T, args ...string) (addr string, sigs chan os.Signal, done chan error, out *bytes.Buffer) {
	t.Helper()
	sigs = make(chan os.Signal, 1)
	done = make(chan error, 1)
	out = &bytes.Buffer{}
	ready := make(chan string, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), out, sigs, ready)
	}()
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("rrdispatch exited before binding: %v\n%s", err, out)
	}
	return addr, sigs, done, out
}

// TestDispatchServesFleet boots rrdispatch via run(), attaches an in-process
// worker, drives a few transactional rounds through the placement table, and
// shuts down cleanly on SIGTERM.
func TestDispatchServesFleet(t *testing.T) {
	addr, sigs, done, out := startDispatch(t,
		"-shards", "2", "-heartbeat", "25ms", "-record-decisions")
	base := "http://" + addr

	w, err := dispatch.StartWorker("w1", base, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker: %v", err)
	}
	defer w.Kill()

	dc := dispatch.NewClient(base)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := dc.Stats()
		if err == nil && st.Assigned == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards never assigned (stats=%+v err=%v)", err, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	driver, err := dispatch.NewDriver(base, dispatch.DriverConfig{Attempts: 200, RetryEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	for r := 0; r < 3; r++ {
		jobs := []serve.SubmitJob{{ID: int64(10*r + 1), Color: 1, Delay: 4}, {ID: int64(10*r + 2), Color: 2, Delay: 4}}
		if err := driver.Round([]dispatch.Batch{{Tenant: "smoke", Jobs: jobs}}); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}
	if driver.CurrentRound() != 3 {
		t.Fatalf("driver round = %d, want 3", driver.CurrentRound())
	}
	raw, err := driver.DecisionsRaw("smoke")
	if err != nil || len(raw) == 0 {
		t.Fatalf("DecisionsRaw: %d bytes, err %v", len(raw), err)
	}

	metrics, err := dc.MetricsRaw()
	if err != nil || !bytes.Contains(metrics, []byte("dispatch_lease_grants_total")) {
		t.Fatalf("metrics endpoint: err=%v body=%.120s", err, metrics)
	}

	sigs <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("rrdispatch exited with error: %v\n%s", err, out)
	}
	if !strings.Contains(out.String(), "rrdispatch: done") {
		t.Fatalf("missing shutdown summary:\n%s", out)
	}
}

// TestDispatchFlagValidation pins the CLI contract.
func TestDispatchFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"stray"}, &out, nil, nil); err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("stray args: err = %v", err)
	}
	if err := run([]string{"-shards", "0"}, &out, nil, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
}
