// Command rrdispatch runs the fleet dispatcher: the control plane that owns
// tenant→shard placement and leases shards to rrworker daemons. Workers
// register, heartbeat on the advertised interval, and push a checkpoint after
// every tick; when a worker misses its heartbeat budget the dispatcher fences
// its leases and regrants the shards to survivors from the stored checkpoints,
// so per-tenant decision streams survive worker crashes byte-identically.
//
// Examples:
//
//	rrdispatch -addr :9090 -shards 8 -n 64 -delta 4 -record-decisions
//	rrdispatch -addr 127.0.0.1:0 -heartbeat 250ms -miss-budget 3 -state ./cpdir
//
// The dispatcher itself is restartable: with -state, accepted checkpoints are
// persisted per shard and a restarted dispatcher regrants from them; workers
// re-register automatically when their heartbeats start answering 404.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rrsched/internal/dispatch"
	"rrsched/internal/serve"
)

func main() {
	// Library code returns errors; a defect that still panics must exit with
	// a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "rrdispatch: internal panic:", r)
			os.Exit(1)
		}
	}()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rrdispatch:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing, so tests can inject flags, a signal
// channel, and receive the bound address.
func run(args []string, stdout io.Writer, sigs <-chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("rrdispatch", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr       = fs.String("addr", "127.0.0.1:9090", "listen address (host:port; port 0 picks a free port)")
		shards     = fs.Int("shards", 4, "scheduler shards leased across the worker fleet")
		n          = fs.Int("n", 8, "resources per tenant (multiple of 4)")
		delta      = fs.Int64("delta", 4, "reconfiguration cost Δ")
		watermark  = fs.Int("watermark", 1<<16, "per-shard backlog watermark: batches beyond it get 429")
		record     = fs.Bool("record-decisions", false, "workers keep per-tenant decision streams (and carry them through failovers)")
		bundles    = fs.Bool("checkpoint-bundles", false, "workers push incremental checkpoint bundles (manifest + changed chunks) instead of full state")
		heartbeat  = fs.Duration("heartbeat", time.Second, "worker heartbeat interval")
		missBudget = fs.Int("miss-budget", 3, "heartbeat intervals a worker may miss before its shards fail over")
		state      = fs.String("state", "", "state dir for checkpoint durability across dispatcher restarts; empty keeps checkpoints in memory only")
		drainWait  = fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight HTTP requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	d, err := dispatch.New(dispatch.Config{
		Service: dispatch.ServiceConfig{
			Shards:            *shards,
			Resources:         *n,
			Delta:             *delta,
			Watermark:         *watermark,
			RecordDecisions:   *record,
			CheckpointBundles: *bundles,
		},
		HeartbeatEvery: *heartbeat,
		MissBudget:     *missBudget,
		StateDir:       *state,
	})
	if err != nil {
		return err
	}
	defer d.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	_, _ = fmt.Fprintf(stdout, "rrdispatch: listening on %s  shards=%d n=%d Δ=%d heartbeat=%v miss-budget=%d\n", // best-effort status output
		ln.Addr(), *shards, *n, *delta, *heartbeat, *missBudget)

	srv := serve.HardenedServer(d.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		_, _ = fmt.Fprintf(stdout, "rrdispatch: received %v, shutting down\n", sig) // best-effort status output
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Stop answering first (workers will fence themselves once their miss
	// budgets expire), then stop the monitor. Checkpoints are already durable
	// if -state is set; there is nothing else to flush.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("draining http server: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http server: %w", err)
	}
	st := d.Stats()
	_, _ = fmt.Fprintf(stdout, "rrdispatch: done  shards=%d assigned=%d workers=%d\n", // best-effort status output
		st.Shards, st.Assigned, len(st.Workers))
	return nil
}
