package main

import (
	"bytes"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rrsched/internal/dispatch"
	"rrsched/internal/serve"
)

func startServer(t *testing.T) string {
	t.Helper()
	svc, _, err := serve.New(serve.Config{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv.URL
}

func TestRunQuick(t *testing.T) {
	url := startServer(t)
	outFile := filepath.Join(t.TempDir(), "stats.json")
	var out bytes.Buffer
	err := run([]string{"-addr", url, "-quick", "-seed", "7", "-out", outFile}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"accepted=", "rejected(429)=", "jobs/s", "latency:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary lacks %q:\n%s", want, text)
		}
	}
	// Quick preset with a huge watermark: everything is accepted and, after
	// the drain ticks, everything has resolved.
	if strings.Contains(text, "rejected(429)=0") == false {
		t.Fatalf("quick run saw rejections:\n%s", text)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("stats artifact: %v", err)
	}
	if !strings.Contains(string(data), serve.StatsSchema) {
		t.Fatalf("artifact lacks stats schema:\n%s", data)
	}
	if !strings.Contains(string(data), `"backlog": 0`) {
		t.Fatalf("artifact shows undrained backlog:\n%s", data)
	}
}

func TestRunDeterministicAcceptCounts(t *testing.T) {
	// Two runs with the same seed against fresh servers must accept the same
	// job count (latency and wall-clock vary; the workload must not).
	counts := make([]string, 2)
	for i := range counts {
		var out bytes.Buffer
		if err := run([]string{"-addr", startServer(t), "-quick", "-seed", "11"}, &out); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "submitted:") {
				counts[i] = line
			}
		}
	}
	if counts[0] == "" || counts[0] != counts[1] {
		t.Fatalf("seeded runs disagree:\n%q\n%q", counts[0], counts[1])
	}
}

// TestRunDispatchedFleet drives the -dispatcher mode end to end: an
// in-process rrdispatch plus one worker, the quick preset routed through the
// placement table, and a fully drained fleet at the end.
func TestRunDispatchedFleet(t *testing.T) {
	d, err := dispatch.New(dispatch.Config{
		Service:        dispatch.ServiceConfig{Shards: 2, Resources: 8, Delta: 4, Watermark: 1 << 16},
		HeartbeatEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dispatch.New: %v", err)
	}
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	w, err := dispatch.StartWorker("w1", srv.URL, "127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatalf("StartWorker: %v", err)
	}
	defer w.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().Assigned != 2 {
		if time.Now().After(deadline) {
			t.Fatal("shards never assigned")
		}
		time.Sleep(10 * time.Millisecond)
	}

	outFile := filepath.Join(t.TempDir(), "stats.json")
	var out bytes.Buffer
	if err := run([]string{"-dispatcher", srv.URL, "-quick", "-seed", "5", "-out", outFile}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "dispatched mode") || !strings.Contains(text, "jobs/s") {
		t.Fatalf("summary lacks dispatched-mode report:\n%s", text)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("stats artifact: %v", err)
	}
	if !strings.Contains(string(data), `"backlog": 0`) {
		t.Fatalf("artifact shows undrained backlog:\n%s", data)
	}
}

func TestRunBackpressure(t *testing.T) {
	// A tiny watermark forces 429s; rrload must report them as rejections and
	// still exit cleanly (open-loop drop, not a failure).
	svc, _, err := serve.New(serve.Config{Shards: 1, Resources: 8, Delta: 4, Watermark: 4})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer svc.Close()
	var out bytes.Buffer
	if err := run([]string{"-addr", srv.URL, "-quick", "-batch", "8", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "rejected(429)=0") {
		t.Fatalf("tiny watermark produced no 429s:\n%s", out.String())
	}
}

// TestRunSparseEvicts drives the high-cardinality paging scenario against a
// server with cold-tenant eviction on: most one-burst tenants must be paged
// out by the end of the run, the summary must carry the paging line, and the
// stats artifact must record the server RSS sample.
func TestRunSparseEvicts(t *testing.T) {
	svc, _, err := serve.New(serve.Config{
		Shards:     2,
		Resources:  8,
		Delta:      4,
		Watermark:  1 << 16,
		StateDir:   t.TempDir(),
		EvictAfter: 2,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer svc.Close()

	outFile := filepath.Join(t.TempDir(), "stats.json")
	var out bytes.Buffer
	if err := run([]string{"-addr", srv.URL, "-sparse", "400", "-rounds", "16", "-out", outFile}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "sparse mode, 400 one-burst tenants") {
		t.Fatalf("summary lacks sparse-mode banner:\n%s", text)
	}
	if !strings.Contains(text, "paging:") || !strings.Contains(text, "evicted=") {
		t.Fatalf("summary lacks the paging line:\n%s", text)
	}
	// rrload's drain tail settles every job but stops inside the last bursts'
	// eviction window; a few idle ticks later the whole universe must be cold.
	client := serve.NewClient(srv.URL)
	if _, err := client.Tick(8); err != nil {
		t.Fatalf("idle ticks: %v", err)
	}
	stats := svc.Stats()
	if stats.Totals.Accepted != 400*4 {
		t.Fatalf("accepted %d jobs, want %d", stats.Totals.Accepted, 400*4)
	}
	if stats.Totals.Evicted != 400 || stats.Totals.Tenants != 0 {
		t.Fatalf("evicted=%d resident=%d, want all 400 paged out", stats.Totals.Evicted, stats.Totals.Tenants)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("stats artifact: %v", err)
	}
	if !strings.Contains(string(data), `"evicted"`) {
		t.Fatalf("artifact lacks eviction counters:\n%s", data)
	}
	if !strings.Contains(string(data), `"rss_bytes"`) {
		t.Fatalf("artifact lacks the rss_bytes sample:\n%s", data)
	}
}

// TestRunSparseRejectsIncompatibleModes pins the flag surface: sparse mode is
// a plain-server scenario.
func TestRunSparseRejectsIncompatibleModes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sparse", "10", "-dispatcher", "http://127.0.0.1:1"}, &out); err == nil {
		t.Fatal("accepted -sparse with -dispatcher")
	}
	if err := run([]string{"-sparse", "10", "-classes", "gold"}, &out); err == nil {
		t.Fatal("accepted -sparse with -classes")
	}
	if err := run([]string{"-sparse", "10", "-sparse-jobs", "0"}, &out); err == nil {
		t.Fatal("accepted -sparse-jobs 0")
	}
}

func TestRunMinRate(t *testing.T) {
	var out bytes.Buffer
	// No realistic run moves 1e12 jobs/s; the threshold must trip.
	err := run([]string{"-addr", startServer(t), "-quick", "-min-rate", "1e12"}, &out)
	if err == nil || !strings.Contains(err.Error(), "below -min-rate") {
		t.Fatalf("min-rate err = %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-tenants", "0"}, &out); err == nil {
		t.Fatal("accepted -tenants 0")
	}
	if err := run([]string{"extra"}, &out); err == nil {
		t.Fatal("accepted positional arguments")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1"}, &out); err == nil || !strings.Contains(err.Error(), "not healthy") {
		t.Fatalf("unreachable server err = %v", err)
	}
}
