// Command rrload drives an rrserve instance with a seeded workload and
// reports latency, throughput, and drop-rate figures. It reuses the
// internal/workload generators, so a -seed pins the exact job stream: the
// same seed against the same server configuration reproduces the same
// per-tenant decision streams.
//
// Examples:
//
//	rrload -addr http://127.0.0.1:8080 -tenants 8 -rounds 256 -seed 1
//	rrload -addr http://127.0.0.1:8080 -quick -out stats.json
//	rrload -addr http://127.0.0.1:8080 -wire binary -min-rate 400000
//	rrload -addr http://127.0.0.1:8080 -sparse 100000 -rounds 64 -out stats.json
//
// -wire selects the submit codec: auto (default) negotiates the rrserve/v2
// binary framing and falls back to JSON against older servers, json and
// binary pin one format for A/B throughput comparisons.
//
// In virtual-time mode (the default, -tick=true) rrload owns the clock: each
// round it submits every tenant's arrivals concurrently, then advances the
// server one round via /v1/tick, and finally drains enough extra rounds that
// every job has executed or dropped. With -tick=false it only submits, at
// the server's real-time pace.
//
// -sparse N switches to the high-cardinality paging scenario: N one-burst
// tenants, each submitting a single small batch at round (i mod rounds) and
// then idling forever. Against a server booted with -state and -evict-after,
// the resident set stays near N/rounds x the eviction window while the tenant
// universe is unbounded; the reported server RSS (and the rss_bytes field in
// the -out artifact) is the figure to watch. CI smokes this at 100k tenants;
// 1M+ runs fine locally (see DESIGN.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rrsched/internal/dispatch"
	"rrsched/internal/model"
	"rrsched/internal/obs"
	"rrsched/internal/serve"
	"rrsched/internal/workload"
)

func main() {
	// Library code returns errors; a defect that still panics must exit with
	// a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "rrload: internal panic:", r)
			os.Exit(1)
		}
	}()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrload:", err)
		os.Exit(1)
	}
}

// tenantStream is one tenant's generated arrival stream, split per round.
type tenantStream struct {
	name  string
	class string // QoS class stamped on every submit; empty = server default
	seq   *model.Sequence
}

// reshardPlan is the parsed -reshard flag: resize the serving pool to shards
// at the given round boundary, mid-run.
type reshardPlan struct {
	round  int64
	shards int
}

// parseReshard parses "ROUND:SHARDS" (e.g. "24:8").
func parseReshard(s string) (*reshardPlan, error) {
	if s == "" {
		return nil, nil
	}
	roundStr, shardStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("-reshard %q: want ROUND:SHARDS", s)
	}
	round, err := strconv.ParseInt(roundStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("-reshard %q: round: %w", s, err)
	}
	shards, err := strconv.Atoi(shardStr)
	if err != nil {
		return nil, fmt.Errorf("-reshard %q: shards: %w", s, err)
	}
	if round < 0 || shards < 1 {
		return nil, fmt.Errorf("-reshard %q: round must be >= 0 and shards >= 1", s)
	}
	return &reshardPlan{round: round, shards: shards}, nil
}

// result accumulates one worker's view of the run; workers keep private
// results and the coordinator folds them after the barrier, so the hot path
// takes no locks.
type result struct {
	submitted int64
	accepted  int64
	rejected  int64 // 429 backpressure
	refused   int64 // 503 drain
	latencies []int64
}

func (r *result) fold(o *result) {
	r.submitted += o.submitted
	r.accepted += o.accepted
	r.rejected += o.rejected
	r.refused += o.refused
	r.latencies = append(r.latencies, o.latencies...)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rrload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "rrserve base URL")
		dispURL  = fs.String("dispatcher", "", "rrdispatch base URL: drive the worker fleet through the placement table instead of -addr (rounds become driver-owned transactions that survive worker failovers; -conns and -tick are ignored)")
		tenants  = fs.Int("tenants", 8, "number of tenants")
		rounds   = fs.Int64("rounds", 256, "arrival rounds per tenant")
		colors   = fs.Int("colors", 8, "colors per tenant")
		load     = fs.Float64("load", 0.6, "per-color load fraction")
		seed     = fs.Int64("seed", 1, "PRNG seed (per-tenant streams derive from it)")
		delta    = fs.Int64("delta", 4, "reconfiguration cost used by the workload generators")
		minExp   = fs.Uint("min-delay-exp", 2, "minimum delay bound exponent (D = 2^exp)")
		maxExp   = fs.Uint("max-delay-exp", 5, "maximum delay bound exponent")
		conns    = fs.Int("conns", 8, "concurrent submit workers")
		batch    = fs.Int("batch", 4096, "max jobs per submit request")
		tick     = fs.Bool("tick", true, "drive /v1/tick after each submitted round (virtual-time server)")
		quick    = fs.Bool("quick", false, "small preset for smoke runs (-tenants 4 -rounds 48 -colors 6)")
		out      = fs.String("out", "", "write the final /v1/stats JSON to this file")
		minRate  = fs.Float64("min-rate", 0, "fail unless sustained accepted-jobs/s meets this rate (0 disables)")
		wireFlag = fs.String("wire", "auto", "wire format: auto (binary with JSON fallback), json, or binary")
		reshardF = fs.String("reshard", "", "ROUND:SHARDS — issue one live reshard to SHARDS at the ROUND boundary mid-run (works in both server and -dispatcher modes)")
		classesF = fs.String("classes", "", "comma list of QoS class names; tenants cycle across them and stamp every submit (server must be booted with matching -classes)")
		sparseN  = fs.Int("sparse", 0, "high-cardinality paging scenario: this many one-burst tenants instead of the generated streams (pair with a server booted with -state and -evict-after; 0 disables)")
		sparseJ  = fs.Int("sparse-jobs", 4, "jobs per tenant burst in -sparse mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wire, err := serve.ParseWireMode(*wireFlag)
	if err != nil {
		return err
	}
	reshard, err := parseReshard(*reshardF)
	if err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *quick {
		*tenants, *rounds, *colors = 4, 48, 6
	}
	if *tenants <= 0 || *rounds <= 0 || *conns <= 0 || *batch <= 0 {
		return fmt.Errorf("tenants, rounds, conns, and batch must be positive")
	}
	if *sparseN > 0 {
		if *dispURL != "" || *classesF != "" {
			return fmt.Errorf("-sparse drives a plain virtual-time server; it is incompatible with -dispatcher and -classes")
		}
		if *sparseJ <= 0 {
			return fmt.Errorf("sparse-jobs must be positive")
		}
		client := serve.NewClientWire(*addr, serve.DefaultRetryPolicy(), wire)
		if !client.Healthy() {
			return fmt.Errorf("server at %s is not healthy", *addr)
		}
		return driveSparse(stdout, client, *sparseN, *sparseJ, *rounds, *conns, *out, *minRate, reshard)
	}

	// Generate every tenant's stream up front: generation cost must not
	// pollute the latency figures.
	names := classNames(*classesF)
	streams := make([]tenantStream, *tenants)
	horizon := int64(0)
	totalJobs := 0
	for i := range streams {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed:        *seed + int64(i),
			Delta:       *delta,
			Colors:      *colors,
			Rounds:      *rounds,
			MinDelayExp: *minExp,
			MaxDelayExp: *maxExp,
			Load:        *load,
		})
		if err != nil {
			return err
		}
		// Canonical IDs are round-major and dense, which satisfies the wire
		// contract that a tenant's IDs increase strictly across batches.
		seq = seq.Canonical()
		streams[i] = tenantStream{name: fmt.Sprintf("tenant-%03d", i), seq: seq}
		if len(names) > 0 {
			streams[i].class = names[i%len(names)]
		}
		if h := seq.Horizon(); h > horizon {
			horizon = h
		}
		totalJobs += seq.NumJobs()
	}

	if *dispURL != "" {
		if len(names) > 0 {
			return fmt.Errorf("-classes drives per-submit class tags, which the dispatched driver does not carry; use it against -addr")
		}
		return driveDispatched(stdout, streams, *rounds, horizon, totalJobs, *batch, *dispURL, *out, *minRate, wire, reshard)
	}

	client := serve.NewClientWire(*addr, serve.DefaultRetryPolicy(), wire)
	if !client.Healthy() {
		return fmt.Errorf("server at %s is not healthy", *addr)
	}
	_, _ = fmt.Fprintf(stdout, "rrload: %d tenants x %d rounds, %d jobs total, seed %d -> %s\n", // best-effort status output
		*tenants, *rounds, totalJobs, *seed, *addr)

	total := &result{}
	start := obs.Now()
	// Drive arrival rounds, then enough drain rounds for every delay bound
	// to expire, so executed+dropped reaches the accepted total.
	lastRound := horizon + 1
	for r := int64(0); r < lastRound; r++ {
		if reshard != nil && r == reshard.round {
			rr, err := client.Reshard(reshard.shards)
			if err != nil {
				return fmt.Errorf("reshard at round %d: %w", r, err)
			}
			_, _ = fmt.Fprintf(stdout, "rrload: resharded %d -> %d at round %d  moved=%d migrated=%dB pause=%.3fms (epoch %d)\n", // best-effort status output
				rr.From, rr.Shards, rr.Round, rr.Moved, rr.MigratedBytes, float64(rr.DurationNs)/1e6, rr.Epoch)
		}
		if r < *rounds {
			submitRound(client, streams, r, *batch, *conns, total)
		}
		if *tick {
			if _, err := client.Tick(1); err != nil {
				return err
			}
		}
	}
	elapsed := obs.Now() - start

	stats, err := client.Stats()
	if err != nil {
		return err
	}
	if *out != "" {
		raw, err := client.StatsRaw()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
	}
	report(stdout, total, stats, elapsed)
	if *minRate > 0 {
		rate := ratePerSec(total.accepted, elapsed)
		if rate < *minRate {
			return fmt.Errorf("sustained %.0f accepted jobs/s, below -min-rate %.0f", rate, *minRate)
		}
	}
	return nil
}

// driveDispatched replays the generated streams through a dispatched worker
// fleet: each round is one transactional dispatch.Driver round — every batch
// lands on the worker holding its tenant's shard, then every shard ticks once
// — so the run rides out worker crashes and lease migrations, at the cost of
// driver-serialized rounds (per-round latency is the figure reported).
func driveDispatched(stdout io.Writer, streams []tenantStream, rounds, horizon int64, totalJobs, batchSize int, base, outPath string, minRate float64, wire serve.WireMode, reshard *reshardPlan) error {
	driver, err := dispatch.NewDriver(base, dispatch.DriverConfig{Wire: wire})
	if err != nil {
		return err
	}
	_, _ = fmt.Fprintf(stdout, "rrload: dispatched mode -> %s (%d shards)\n", base, driver.Shards()) // best-effort status output

	var accepted int64
	var latencies []int64
	start := obs.Now()
	lastRound := horizon + 1
	for r := int64(0); r < lastRound; r++ {
		if reshard != nil && r == reshard.round {
			rr, err := dispatch.NewClient(base).Reshard(reshard.shards)
			if err != nil {
				return fmt.Errorf("fleet reshard at round %d: %w", r, err)
			}
			_, _ = fmt.Fprintf(stdout, "rrload: fleet resharded %d -> %d at round %d  moved=%d migrated=%dB pause=%.3fms (config epoch %d)\n", // best-effort status output
				rr.From, rr.Shards, rr.Round, rr.Moved, rr.MigratedBytes, float64(rr.DurationNs)/1e6, rr.Epoch)
		}
		var batches []dispatch.Batch
		if r < rounds {
			for _, ts := range streams {
				jobs := ts.seq.Request(r)
				for len(jobs) > 0 {
					n := len(jobs)
					if n > batchSize {
						n = batchSize
					}
					wire := make([]serve.SubmitJob, n)
					for i, j := range jobs[:n] {
						wire[i] = serve.SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
					}
					batches = append(batches, dispatch.Batch{Tenant: ts.name, Jobs: wire})
					jobs = jobs[n:]
				}
			}
		}
		t0 := obs.Now()
		if err := driver.Round(batches); err != nil {
			return fmt.Errorf("round %d: %w", r+1, err)
		}
		latencies = append(latencies, obs.Now()-t0)
		for _, b := range batches {
			accepted += int64(len(b.Jobs))
		}
	}
	elapsed := obs.Now() - start

	stats, err := fleetStats(base)
	if err != nil {
		return err
	}
	if outPath != "" {
		raw, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, raw, 0o644); err != nil {
			return err
		}
	}
	total := &result{submitted: int64(totalJobs), accepted: accepted, latencies: latencies}
	report(stdout, total, stats, elapsed)
	if minRate > 0 {
		rate := ratePerSec(accepted, elapsed)
		if rate < minRate {
			return fmt.Errorf("sustained %.0f accepted jobs/s, below -min-rate %.0f", rate, minRate)
		}
	}
	return nil
}

// fleetStats aggregates serve stats across every worker in the placement
// table into one fleet-level response: totals summed, round the maximum.
func fleetStats(base string) (*serve.StatsResponse, error) {
	p, err := dispatch.NewClient(base).Placement()
	if err != nil {
		return nil, err
	}
	agg := &serve.StatsResponse{Schema: serve.StatsSchema, Shards: len(p.Shards)}
	seen := map[string]bool{}
	for _, e := range p.Shards {
		if e.Addr == "" || seen[e.Addr] {
			continue
		}
		seen[e.Addr] = true
		st, err := serve.NewClient(e.Addr).Stats()
		if err != nil {
			return nil, fmt.Errorf("stats from %s: %w", e.Addr, err)
		}
		if st.Round > agg.Round {
			agg.Round = st.Round
		}
		agg.Totals.Tenants += st.Totals.Tenants
		agg.Totals.Backlog += st.Totals.Backlog
		agg.Totals.Inflight += st.Totals.Inflight
		agg.Totals.Accepted += st.Totals.Accepted
		agg.Totals.Rejected += st.Totals.Rejected
		agg.Totals.Refused += st.Totals.Refused
		agg.Totals.Executed += st.Totals.Executed
		agg.Totals.Dropped += st.Totals.Dropped
		agg.Totals.Reconfigs += st.Totals.Reconfigs
		agg.Totals.ReconfigCost += st.Totals.ReconfigCost
	}
	agg.Totals.Round = agg.Round
	agg.Totals.Shard = -1
	return agg, nil
}

// submitTask is one tenant-batch bound for /v1/submit.
type submitTask struct {
	tenant string
	class  string
	jobs   []serve.SubmitJob
}

// submitRound fans one round's batches across conns workers. A round is a
// barrier: every batch lands before the caller ticks, so the server sees
// exactly the generated arrival pattern.
func submitRound(client *serve.Client, streams []tenantStream, r int64, batchSize, conns int, total *result) {
	var tasks []submitTask
	for _, ts := range streams {
		jobs := ts.seq.Request(r)
		for len(jobs) > 0 {
			n := len(jobs)
			if n > batchSize {
				n = batchSize
			}
			wire := make([]serve.SubmitJob, n)
			for i, j := range jobs[:n] {
				wire[i] = serve.SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
			}
			tasks = append(tasks, submitTask{tenant: ts.name, class: ts.class, jobs: wire})
			jobs = jobs[n:]
		}
	}
	submitTasks(client, tasks, conns, total)
}

// submitTasks drives the shared worker pool over one round's batches; every
// batch lands before it returns, so the caller may tick.
func submitTasks(client *serve.Client, tasks []submitTask, conns int, total *result) {
	if len(tasks) == 0 {
		return
	}
	if conns > len(tasks) {
		conns = len(tasks)
	}
	results := make([]result, conns)
	next := make(chan submitTask)
	var wg sync.WaitGroup
	wg.Add(conns)
	for w := 0; w < conns; w++ {
		go func(res *result) {
			defer wg.Done()
			for t := range next {
				n := int64(len(t.jobs))
				res.submitted += n
				t0 := obs.Now()
				outcome, err := client.Submit(&serve.SubmitRequest{Schema: serve.WireSchema, Tenant: t.tenant, Class: t.class, Jobs: t.jobs})
				res.latencies = append(res.latencies, obs.Now()-t0)
				switch {
				case err != nil:
					// Transport/validation failure: count as refused; the
					// summary surfaces it and the exit code stays honest via
					// the accepted-vs-submitted line.
					res.refused += n
				case outcome.Accepted:
					res.accepted += n
				case outcome.Rejected:
					res.rejected += n
				case outcome.Refused:
					res.refused += n
				}
			}
		}(&results[w])
	}
	for _, t := range tasks {
		next <- t
	}
	close(next)
	wg.Wait()
	for i := range results {
		total.fold(&results[i])
	}
}

// driveSparse runs the high-cardinality paging scenario: nTenants one-burst
// tenants, each submitting jobsPer jobs at round (i mod rounds) and then
// idling forever. The tenant universe grows without bound while the working
// set per round stays near nTenants/rounds, which is exactly the shape
// cold-tenant eviction exists for: with -evict-after set on the server, idle
// tenants page out to the chunk store and the resident set — and the RSS the
// report prints — stays flat as nTenants grows.
func driveSparse(stdout io.Writer, client *serve.Client, nTenants, jobsPer int, rounds int64, conns int, outPath string, minRate float64, reshard *reshardPlan) error {
	// Fixed small delay bound: every burst resolves within sparseDelay rounds
	// of arrival, so the drain tail below settles the whole universe.
	const sparseDelay = int64(4)
	_, _ = fmt.Fprintf(stdout, "rrload: sparse mode, %d one-burst tenants x %d jobs over %d rounds\n", // best-effort status output
		nTenants, jobsPer, rounds)

	total := &result{}
	start := obs.Now()
	lastRound := rounds + sparseDelay + 1
	for r := int64(0); r < lastRound; r++ {
		if reshard != nil && r == reshard.round {
			rr, err := client.Reshard(reshard.shards)
			if err != nil {
				return fmt.Errorf("reshard at round %d: %w", r, err)
			}
			_, _ = fmt.Fprintf(stdout, "rrload: resharded %d -> %d at round %d  moved=%d migrated=%dB pause=%.3fms (epoch %d)\n", // best-effort status output
				rr.From, rr.Shards, rr.Round, rr.Moved, rr.MigratedBytes, float64(rr.DurationNs)/1e6, rr.Epoch)
		}
		if r < rounds {
			var tasks []submitTask
			for i := int(r); i < nTenants; i += int(rounds) {
				jobs := make([]serve.SubmitJob, jobsPer)
				for j := range jobs {
					jobs[j] = serve.SubmitJob{ID: int64(j), Color: int32(j % 4), Delay: sparseDelay}
				}
				tasks = append(tasks, submitTask{tenant: fmt.Sprintf("cold-%07d", i), jobs: jobs})
			}
			submitTasks(client, tasks, conns, total)
		}
		if _, err := client.Tick(1); err != nil {
			return err
		}
	}
	elapsed := obs.Now() - start

	stats, err := client.Stats()
	if err != nil {
		return err
	}
	if outPath != "" {
		raw, err := client.StatsRaw()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, raw, 0o644); err != nil {
			return err
		}
	}
	report(stdout, total, stats, elapsed)
	if minRate > 0 {
		rate := ratePerSec(total.accepted, elapsed)
		if rate < minRate {
			return fmt.Errorf("sustained %.0f accepted jobs/s, below -min-rate %.0f", rate, minRate)
		}
	}
	return nil
}

func report(stdout io.Writer, total *result, stats *serve.StatsResponse, elapsedNs int64) {
	_, _ = fmt.Fprintf(stdout, "submitted: %d  accepted=%d rejected(429)=%d refused=%d\n", // best-effort summary output
		total.submitted, total.accepted, total.rejected, total.refused)
	_, _ = fmt.Fprintf(stdout, "server:    round=%d executed=%d dropped=%d reconfigs=%d backlog=%d inflight=%d\n", // best-effort summary output
		stats.Round, stats.Totals.Executed, stats.Totals.Dropped, stats.Totals.Reconfigs,
		stats.Totals.Backlog, stats.Totals.Inflight)
	dropRate := 0.0
	if done := stats.Totals.Executed + stats.Totals.Dropped; done > 0 {
		dropRate = float64(stats.Totals.Dropped) / float64(done)
	}
	_, _ = fmt.Fprintf(stdout, "rates:     %.0f jobs/s accepted  drop-rate=%.4f  wall=%.3fs\n", // best-effort summary output
		ratePerSec(total.accepted, elapsedNs), dropRate, float64(elapsedNs)/1e9)
	if stats.Totals.Evicted > 0 || stats.RSSBytes > 0 {
		_, _ = fmt.Fprintf(stdout, "paging:    resident=%d evicted=%d dirty=%d server-rss=%.1fMiB\n", // best-effort summary output
			stats.Totals.Tenants, stats.Totals.Evicted, stats.Totals.Dirty, float64(stats.RSSBytes)/(1<<20))
	}
	if len(total.latencies) > 0 {
		lat := total.latencies
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		_, _ = fmt.Fprintf(stdout, "latency:   p50=%s p95=%s p99=%s max=%s (%d requests)\n", // best-effort summary output
			ms(pct(lat, 50)), ms(pct(lat, 95)), ms(pct(lat, 99)), ms(lat[len(lat)-1]), len(lat))
	}
}

// classNames splits the -classes value into its class-name cycle.
func classNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func ratePerSec(n, elapsedNs int64) float64 {
	if elapsedNs <= 0 {
		return 0
	}
	return float64(n) / (float64(elapsedNs) / 1e9)
}

// pct returns the p-th percentile of sorted samples.
func pct(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

func ms(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/1e6)
}
