// Command rrserve runs the sharded scheduling service: an HTTP ingest layer
// over a pool of per-tenant stream schedulers, with watermark backpressure,
// a real-time or virtual round ticker, and graceful drain to per-shard
// checkpoints (restored automatically on the next boot from the same -state
// dir).
//
// Examples:
//
//	rrserve -addr :8080 -n 64 -delta 4 -shards 8 -round 10ms -state ./state
//	rrserve -addr 127.0.0.1:0 -shards 4 -round 0        # virtual time: drive /v1/tick
//
// On SIGINT/SIGTERM the service drains: admissions stop (submits get 503,
// /readyz goes unready), the in-flight round completes, every shard's state
// is checkpointed to -state, and the process exits 0.
//
// Every data endpoint negotiates the wire format per request: JSON
// (rrserve/v1) by default, the length-prefixed binary framing (rrserve/v2)
// when the client sends Content-Type/Accept application/x-rrserve-bin.
// Nothing to configure server-side — clients opt in, and error responses are
// always JSON.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rrsched/internal/serve"
)

// parseClasses parses the -classes value ("name:weight,...") into the
// weighted class table; range and duplicate validation stays in serve.New.
func parseClasses(s string) ([]serve.TenantClass, error) {
	if s == "" {
		return nil, nil
	}
	var out []serve.TenantClass
	for _, part := range strings.Split(s, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("-classes entry %q: want name:weight", part)
		}
		w, err := strconv.ParseInt(weight, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-classes entry %q: weight: %w", part, err)
		}
		out = append(out, serve.TenantClass{Name: name, Weight: w})
	}
	return out, nil
}

func main() {
	// Library code returns errors; a defect that still panics must exit with
	// a diagnostic, not a stack trace.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "rrserve: internal panic:", r)
			os.Exit(1)
		}
	}()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sigs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rrserve:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing, so tests can inject flags, a
// signal channel, and receive the bound address. The shutdown order it
// implements is the drain protocol the chaos tests pin down:
//
//  1. stop admissions (serve.BeginDrain: 503s, ticker stopped, round barrier)
//  2. stop the HTTP server (in-flight requests finish against live shards)
//  3. checkpoint every shard to the state dir
//  4. stop the shard goroutines
func run(args []string, stdout io.Writer, sigs <-chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("rrserve", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		shards    = fs.Int("shards", 4, "scheduler shards (tenants map to shards by consistent hashing)")
		n         = fs.Int("n", 8, "resources per tenant (multiple of 4)")
		delta     = fs.Int64("delta", 4, "reconfiguration cost Δ")
		watermark = fs.Int("watermark", 1<<16, "per-shard backlog watermark: batches beyond it get 429")
		round     = fs.Duration("round", 0, "real-time duration of one round; 0 = virtual time (drive POST /v1/tick)")
		state     = fs.String("state", "", "state dir for drain checkpoints (and boot restore); empty disables durability")
		record    = fs.Bool("record-decisions", false, "keep per-tenant decision streams and serve /v1/decisions (testing; memory grows with the run)")
		drainWait = fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight HTTP requests on shutdown")
		classesF  = fs.String("classes", "", "weighted tenant QoS classes as name:weight,... (e.g. gold:3,bronze:1); empty runs the single implicit default class")
		budget    = fs.Int64("reshard-budget", 0, "max tenant-state bytes one live reshard may migrate, split across classes by weight (0 = unlimited)")
		evict     = fs.Int64("evict-after", 0, "page out tenants idle this many rounds to the chunk store (requires -state; 0 disables)")
		maxChain  = fs.Int("max-chunk-chain", 0, "fold a tenant's delta-chunk chain into a full chunk at this depth (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	classes, err := parseClasses(*classesF)
	if err != nil {
		return err
	}

	svc, restored, err := serve.New(serve.Config{
		Shards:          *shards,
		Resources:       *n,
		Delta:           *delta,
		Watermark:       *watermark,
		RoundEvery:      *round,
		RecordDecisions: *record,
		StateDir:        *state,
		Classes:         classes,
		ReshardBudget:   *budget,
		EvictAfter:      *evict,
		MaxChunkChain:   *maxChain,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	mode := "virtual-time (POST /v1/tick advances rounds)"
	if *round > 0 {
		mode = fmt.Sprintf("real-time (%v per round)", *round)
	}
	_, _ = fmt.Fprintf(stdout, "rrserve: listening on %s  shards=%d n=%d Δ=%d watermark=%d %s\n", // best-effort status output
		ln.Addr(), *shards, *n, *delta, *watermark, mode)
	if len(classes) > 0 {
		_, _ = fmt.Fprintf(stdout, "rrserve: classes %s  reshard-budget=%d\n", *classesF, *budget) // best-effort status output
	}
	if restored > 0 {
		_, _ = fmt.Fprintf(stdout, "rrserve: restored %d tenants from %s at round %d\n", restored, *state, svc.Round()) // best-effort status output
	}

	// Bounded read/header/write/idle timeouts: a stalled peer cannot pin a
	// connection (slowloris) or hold the drain hostage mid-response.
	srv := serve.HardenedServer(svc.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	svc.Start()

	select {
	case sig := <-sigs:
		_, _ = fmt.Fprintf(stdout, "rrserve: received %v, draining\n", sig) // best-effort status output
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Drain protocol. Order matters: BeginDrain before Shutdown so requests
	// that are already in flight finish against live shards while new
	// submissions get 503; Checkpoint after Shutdown so no handler can race
	// the snapshot; Close last.
	svc.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("draining http server: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http server: %w", err)
	}
	if *state != "" {
		if err := svc.Checkpoint(); err != nil {
			return err
		}
		_, _ = fmt.Fprintf(stdout, "rrserve: checkpointed %d shards to %s at round %d\n", *shards, *state, svc.Round()) // best-effort status output
	}
	stats := svc.Stats()
	svc.Close()
	if n := stats.Reshards; n > 0 {
		_, _ = fmt.Fprintf(stdout, "rrserve: reshards=%d (final epoch %d)\n", n, svc.Epoch()) // best-effort status output
	}
	_, _ = fmt.Fprintf(stdout, "rrserve: done  round=%d tenants=%d accepted=%d rejected=%d executed=%d dropped=%d reconfigs=%d\n", // best-effort status output
		stats.Round, stats.Totals.Tenants, stats.Totals.Accepted, stats.Totals.Rejected,
		stats.Totals.Executed, stats.Totals.Dropped, stats.Totals.Reconfigs)
	return nil
}
