package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"

	"rrsched/internal/model"
	"rrsched/internal/serve"
	"rrsched/internal/stream"
	"rrsched/internal/workload"
)

// instance runs rrserve's run() in a goroutine with an injected signal
// channel, exactly as main wires it, and hands back the bound address.
type instance struct {
	sigs chan os.Signal
	done chan error
	addr string
	out  *bytes.Buffer
}

func startInstance(t *testing.T, args ...string) *instance {
	t.Helper()
	in := &instance{
		sigs: make(chan os.Signal, 1),
		done: make(chan error, 1),
		out:  &bytes.Buffer{},
	}
	ready := make(chan string, 1)
	go func() {
		in.done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), in.out, in.sigs, ready)
	}()
	select {
	case in.addr = <-ready:
	case err := <-in.done:
		t.Fatalf("rrserve exited before binding: %v\n%s", err, in.out)
	}
	return in
}

// sigterm delivers SIGTERM and waits for run() to return.
func (in *instance) sigterm(t *testing.T) {
	t.Helper()
	in.sigs <- syscall.SIGTERM
	if err := <-in.done; err != nil {
		t.Fatalf("rrserve exited with error: %v\n%s", err, in.out)
	}
}

const (
	testShards = 2
	testRounds = 12
	cutRound   = 5
)

// mainTenants are the deterministic tenants whose decision streams the test
// pins; burstTenants exist to race submissions against the SIGTERM.
func mainTenants(t *testing.T) map[string]*model.Sequence {
	t.Helper()
	out := map[string]*model.Sequence{}
	for i, name := range []string{"main-a", "main-b", "main-c"} {
		seq, err := workload.RandomGeneral(workload.RandomConfig{
			Seed:        100 + int64(i),
			Delta:       4,
			Colors:      4,
			Rounds:      testRounds,
			MinDelayExp: 2,
			MaxDelayExp: 3,
			Load:        0.7,
		})
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
		out[name] = seq.Canonical()
	}
	return out
}

func submitRound(t *testing.T, client *serve.Client, tenants map[string]*model.Sequence, r int64) {
	t.Helper()
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		jobs := tenants[name].Request(r)
		if len(jobs) == 0 {
			continue
		}
		wire := make([]serve.SubmitJob, len(jobs))
		for i, j := range jobs {
			wire[i] = serve.SubmitJob{ID: j.ID, Color: int32(j.Color), Delay: j.Delay}
		}
		out, err := client.Submit(&serve.SubmitRequest{Schema: serve.WireSchema, Tenant: name, Jobs: wire})
		if err != nil || !out.Accepted {
			t.Fatalf("submit %s round %d: out=%+v err=%v", name, r, out, err)
		}
	}
}

// TestSigtermMidBurstCheckpointRestore is the process-level chaos test: an
// rrserve instance is SIGTERMed while a burst of unrelated submissions is
// still arriving, must exit cleanly with per-shard checkpoint files, and a
// second instance restoring from them must finish the run with the main
// tenants' decision streams identical to a bare scheduler reference.
// Burst batches may individually land (before the drain) or bounce with 503
// (after) — either is correct; what must not happen is an error exit, a torn
// batch, or any effect on other tenants' decisions.
func TestSigtermMidBurstCheckpointRestore(t *testing.T) {
	stateDir := t.TempDir()
	tenants := mainTenants(t)
	args := []string{
		"-shards", fmt.Sprint(testShards),
		"-n", "8", "-delta", "4",
		"-state", stateDir,
		"-record-decisions",
	}

	// First incarnation: rounds [0, cutRound), then SIGTERM in the middle of
	// a concurrent burst.
	in1 := startInstance(t, args...)
	client1 := serve.NewClient("http://" + in1.addr)
	for r := int64(0); r < cutRound; r++ {
		submitRound(t, client1, tenants, r)
		if _, err := client1.Tick(1); err != nil {
			t.Fatalf("tick: %v", err)
		}
	}
	// Capture the decision prefix before the process "dies" (recordings are
	// in-memory; the checkpoint carries scheduler state, not history).
	prefix := map[string][]stream.Decision{}
	for name := range tenants {
		dr, err := client1.Decisions(name)
		if err != nil {
			t.Fatalf("prefix decisions %s: %v", name, err)
		}
		prefix[name] = dr.Decisions
	}
	var burst sync.WaitGroup
	for w := 0; w < 8; w++ {
		burst.Add(1)
		go func(w int) {
			defer burst.Done()
			for i := 0; i < 50; i++ {
				// Errors are fine mid-drain (connection teardown); outcomes
				// are fine either way. The assertion is the clean exit below.
				_, _ = client1.Submit(&serve.SubmitRequest{
					Schema: serve.WireSchema,
					Tenant: fmt.Sprintf("burst-%d", w),
					Jobs:   []serve.SubmitJob{{ID: int64(i), Color: 0, Delay: 4}},
				})
			}
		}(w)
	}
	in1.sigterm(t)
	burst.Wait()
	for i := 0; i < testShards; i++ {
		if _, err := os.Stat(filepath.Join(stateDir, fmt.Sprintf("manifest-%04d.json", i))); err != nil {
			t.Fatalf("missing manifest for shard %d: %v", i, err)
		}
	}
	if !strings.Contains(in1.out.String(), "checkpointed") {
		t.Fatalf("no checkpoint log line:\n%s", in1.out)
	}

	// Second incarnation restores and finishes the run (plus a drain tail so
	// every delay bound expires).
	in2 := startInstance(t, args...)
	client2 := serve.NewClient("http://" + in2.addr)
	stats, err := client2.Stats()
	if err != nil {
		t.Fatalf("stats after restore: %v", err)
	}
	if stats.Round != cutRound {
		t.Fatalf("restored at round %d, want %d", stats.Round, cutRound)
	}
	const totalTicks = testRounds + 10
	for r := int64(cutRound); r < totalTicks; r++ {
		if r < testRounds {
			submitRound(t, client2, tenants, r)
		}
		if _, err := client2.Tick(1); err != nil {
			t.Fatalf("tick: %v", err)
		}
	}

	// Reference: a bare scheduler per main tenant over the same arrivals.
	// The tenant exists from its first non-empty arrival round (its epoch),
	// and its decision stream runs in tenant-local rounds from there.
	for name, seq := range tenants {
		dr, err := client2.Decisions(name)
		if err != nil {
			t.Fatalf("restored decisions %s: %v", name, err)
		}
		// The streaming decision log survives the restart, so the restored
		// instance serves the tenant's FULL stream; the pre-SIGTERM capture
		// must be a literal prefix of it.
		combined := dr.Decisions
		if len(prefix[name]) > len(combined) {
			t.Fatalf("tenant %s: pre-crash stream longer than restored stream", name)
		}
		for i, dec := range prefix[name] {
			a, err := serve.MarshalResponse(dec)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			b, err := serve.MarshalResponse(combined[i])
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("tenant %s: restored stream rewrites pre-crash round %d", name, i)
			}
		}
		epoch := int64(0)
		for len(seq.Request(epoch)) == 0 {
			epoch++
		}
		if dr.Epoch != epoch {
			t.Fatalf("tenant %s: service epoch %d, want %d", name, dr.Epoch, epoch)
		}
		if int64(len(combined)) != totalTicks-epoch {
			t.Fatalf("tenant %s: %d decisions, want %d", name, len(combined), totalTicks-epoch)
		}
		sched, err := stream.New(stream.Config{Delta: 4, Resources: 8})
		if err != nil {
			t.Fatalf("stream.New: %v", err)
		}
		for local := int64(0); local < totalTicks-epoch; local++ {
			arrivals := seq.Request(local + epoch)
			jobs := make([]model.Job, len(arrivals))
			copy(jobs, arrivals)
			for i := range jobs {
				jobs[i].Arrival = local
			}
			sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
			want, err := sched.Push(local, jobs)
			if err != nil {
				t.Fatalf("reference push: %v", err)
			}
			a, err := serve.MarshalResponse(combined[local])
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			b, err := serve.MarshalResponse(want)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("tenant %s local round %d: decisions diverge across SIGTERM restore\ngot:  %s\nwant: %s", name, local, a, b)
			}
		}
	}
	in2.sigterm(t)
	// The buffer is only safe to read once run() has returned.
	if !strings.Contains(in2.out.String(), "restored") {
		t.Fatalf("no restore log line:\n%s", in2.out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-shards", "0"}, &out, nil, nil); err == nil {
		t.Fatal("accepted -shards 0")
	}
	if err := run([]string{"-n", "6"}, &out, nil, nil); err == nil {
		t.Fatal("accepted -n 6")
	}
	if err := run([]string{"positional"}, &out, nil, nil); err == nil {
		t.Fatal("accepted positional arguments")
	}
	if err := run([]string{"-addr", "256.0.0.1:99999"}, &out, nil, nil); err == nil {
		t.Fatal("accepted an unlistenable address")
	}
}

func TestGracefulShutdownNoState(t *testing.T) {
	in := startInstance(t) // no -state: drain must skip the checkpoint
	client := serve.NewClient("http://" + in.addr)
	if !client.Ready() {
		t.Fatal("not ready")
	}
	in.sigterm(t)
	if strings.Contains(in.out.String(), "checkpointed") {
		t.Fatalf("checkpointed without -state:\n%s", in.out)
	}
	if !strings.Contains(in.out.String(), "rrserve: done") {
		t.Fatalf("no final summary:\n%s", in.out)
	}
}
