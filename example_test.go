package rrsched_test

import (
	"fmt"

	"rrsched"
)

// ExampleSchedule runs the full online stack on a small hand-built instance.
func ExampleSchedule() {
	b := rrsched.NewBuilder(2) // Δ = 2
	b.Add(0, 0, 4, 4)          // round 0: 4 jobs of color 0, delay bound 4
	b.Add(0, 1, 8, 6)          // round 0: 6 jobs of color 1, delay bound 8
	b.Add(8, 1, 8, 6)          // round 8: 6 more jobs of color 1
	seq := b.MustBuild()

	res, err := rrsched.Schedule(seq, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	audited, _ := rrsched.Audit(seq, res.Schedule)
	fmt.Println(res.Algorithm)
	fmt.Println(audited == res.Cost)
	fmt.Println(res.Schedule.NumExecs() == seq.NumJobs()) // all 16 jobs executed
	// Output:
	// varbatch(dlru-edf)
	// true
	// true
}

// ExampleNewStream drives the incremental scheduler round by round.
func ExampleNewStream() {
	s, err := rrsched.NewStream(2, 8)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Two bursts of jobs, pushed as they "arrive".
	id := int64(0)
	push := func(round int64, color rrsched.Color, delay int64, n int) {
		jobs := make([]rrsched.Job, n)
		for i := range jobs {
			jobs[i] = rrsched.Job{ID: id, Color: color, Arrival: round, Delay: delay}
			id++
		}
		if _, err := s.Push(round, jobs); err != nil {
			fmt.Println(err)
		}
	}
	push(0, 0, 4, 4)
	push(4, 1, 4, 4)
	if _, err := s.Drain(); err != nil {
		fmt.Println(err)
	}
	fmt.Println(s.Executed()+s.Dropped() == 8)
	// Output:
	// true
}

// ExampleOfflineBracket sandwiches the offline optimum.
func ExampleOfflineBracket() {
	b := rrsched.NewBuilder(3)
	b.Add(0, 0, 2, 2)
	b.Add(0, 1, 2, 2)
	seq := b.MustBuild()

	lb, ub := rrsched.OfflineBracket(seq, 1)
	opt, _ := rrsched.ExactOPT(seq, 1)
	fmt.Println(lb <= opt && opt <= ub)
	// Output:
	// true
}
