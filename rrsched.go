// Package rrsched is a library for online reconfigurable resource scheduling
// with variable delay bounds, reproducing Plaxton, Sun, Tiwari, and Vin
// (SPAA 2006): unit jobs of different categories ("colors") arrive over time
// and must run, within a per-color delay bound, on a resource configured to
// their color; resources can be reconfigured at a fixed cost Δ; unexecuted
// jobs are dropped at unit cost. The goal is to minimize total cost.
//
// The headline algorithm is the layered stack of the paper:
//
//	VarBatch ∘ Distribute ∘ ΔLRU-EDF
//
// ΔLRU-EDF (the core contribution) caches one set of colors by recency of
// "ΔLRU timestamps" and a second set by earliest deadline; VarBatch and
// Distribute reduce arbitrary inputs to the rate-limited batched inputs the
// core policy is analyzed on. With a constant-factor resource advantage
// (n = 8m) the stack is constant competitive against the optimal offline
// schedule with m resources.
//
// # Quick start
//
//	b := rrsched.NewBuilder(4)              // Δ = 4
//	b.Add(0, 0, 8, 10)                      // round 0: 10 jobs of color 0, delay bound 8
//	b.Add(3, 1, 4, 5)                       // round 3: 5 jobs of color 1, delay bound 4
//	seq := b.MustBuild()
//	res, err := rrsched.Schedule(seq, 8)    // the full stack, 8 resources
//	fmt.Println(res.Cost)
//
// Lower-level entry points expose the individual layers (RunPolicy with
// NewDeltaLRUEDF / NewDeltaLRU / NewEDF on batched inputs), the offline side
// (OfflineLowerBound, OfflineBracket, ExactOPT), and workload generators
// (subpackage internal/workload is surfaced through the cmd/ tools).
package rrsched

import (
	"rrsched/internal/core"
	"rrsched/internal/model"
	"rrsched/internal/offline"
	"rrsched/internal/reduce"
	"rrsched/internal/sim"
	"rrsched/internal/stream"
)

// Re-exported model types. Color identifies a job category; Black is the
// initial color of every resource.
type (
	// Color identifies a job category.
	Color = model.Color
	// Job is a unit job with a color, arrival round, and delay bound.
	Job = model.Job
	// Sequence is an input instance (requests, delay bounds, and Δ).
	Sequence = model.Sequence
	// Builder incrementally constructs a Sequence.
	Builder = model.Builder
	// Cost aggregates reconfiguration and drop cost.
	Cost = model.Cost
	// ScheduleRecord is the full record of reconfigurations and executions.
	ScheduleRecord = model.Schedule
	// Policy is an online reconfiguration policy runnable with RunPolicy.
	Policy = sim.Policy
	// Env configures a RunPolicy simulation.
	Env = sim.Env
)

// Black is the initial color of every resource; jobs are never black.
const Black = model.Black

// NewBuilder returns a sequence builder with reconfiguration cost delta.
func NewBuilder(delta int64) *Builder { return model.NewBuilder(delta) }

// Result is the outcome of scheduling a sequence.
type Result struct {
	// Algorithm names the stack or policy that produced the schedule.
	Algorithm string
	// Cost is the audited total cost of the schedule.
	Cost Cost
	// Schedule is the complete, auditable decision record.
	Schedule *ScheduleRecord
}

// Schedule runs the paper's full online stack (VarBatch ∘ Distribute ∘
// ΔLRU-EDF) on an arbitrary instance with n resources and returns the
// audited schedule. n must be a positive multiple of 4 (two-way replication
// with a two-way LRU/EDF slot split); the paper's guarantee regime is
// n = 8m against an m-resource offline optimum.
func Schedule(seq *Sequence, n int) (*Result, error) {
	res, err := reduce.RunVarBatch(seq, n, core.NewDeltaLRUEDF())
	if err != nil {
		return nil, err
	}
	return &Result{Algorithm: res.Policy, Cost: res.Cost, Schedule: res.Schedule}, nil
}

// ScheduleBatched runs Distribute ∘ ΔLRU-EDF on a batched instance
// (jobs of color ℓ arriving only at multiples of D_ℓ).
func ScheduleBatched(seq *Sequence, n int) (*Result, error) {
	res, err := reduce.RunDistribute(seq, n, core.NewDeltaLRUEDF())
	if err != nil {
		return nil, err
	}
	return &Result{Algorithm: res.Policy, Cost: res.Cost, Schedule: res.Schedule}, nil
}

// NewDeltaLRUEDF returns the paper's core ΔLRU-EDF policy for rate-limited
// batched inputs (Section 3.1.3).
func NewDeltaLRUEDF() Policy { return core.NewDeltaLRUEDF() }

// NewDeltaLRU returns the pure recency policy (Section 3.1.1; not resource
// competitive, provided for comparison).
func NewDeltaLRU() Policy { return core.NewDeltaLRU() }

// NewEDF returns the pure deadline policy (Section 3.1.2; not resource
// competitive, provided for comparison).
func NewEDF() Policy { return core.NewEDF() }

// RunPolicy simulates a policy on a batched instance with n resources and
// the paper's two-way replication, returning the audited result.
func RunPolicy(seq *Sequence, n int, p Policy) (*Result, error) {
	res, err := sim.Run(sim.Env{Seq: seq, Resources: n, Replication: 2, Speed: 1}, p)
	if err != nil {
		return nil, err
	}
	cost, err := model.Audit(seq, res.Schedule)
	if err != nil {
		return nil, err
	}
	return &Result{Algorithm: res.Policy, Cost: cost, Schedule: res.Schedule}, nil
}

// Audit independently replays a schedule against its input and returns its
// cost, or an error describing the first legality violation.
func Audit(seq *Sequence, sched *ScheduleRecord) (Cost, error) {
	return model.Audit(seq, sched)
}

// OfflineLowerBound returns a certified lower bound on the cost of every
// schedule for seq with m resources (Par-EDF drop bound + per-color bound).
func OfflineLowerBound(seq *Sequence, m int) int64 {
	return offline.LowerBound(seq, m)
}

// OfflineBracket bounds OPT(seq, m) from both sides: a certified lower bound
// and the audited cost of the best offline heuristic schedule.
func OfflineBracket(seq *Sequence, m int) (lb, ub int64) {
	br := offline.BracketOPT(seq, m)
	return br.LB, br.UB
}

// ExactOPT computes the exact optimal offline cost for small instances by
// dynamic programming; it returns offline.ErrTooLarge when the instance
// exceeds the state budget.
func ExactOPT(seq *Sequence, m int) (int64, error) {
	return offline.Exact(seq, m, offline.ExactOptions{})
}

// Streaming interface: the truly online form of the full stack. Callers
// push requests round by round and receive the round's reconfiguration and
// execution decisions immediately; the stream scheduler's decisions match
// the batch pipeline (Schedule) decision for decision.
type (
	// Stream is an incremental online scheduler (VarBatch ∘ Distribute ∘
	// ΔLRU-EDF); see NewStream.
	Stream = stream.Scheduler
	// StreamDecision is one round's output of a Stream.
	StreamDecision = stream.Decision
)

// NewStream returns an incremental online scheduler with the given
// reconfiguration cost and number of resources (a positive multiple of 4).
func NewStream(delta int64, resources int) (*Stream, error) {
	return stream.New(stream.Config{Delta: delta, Resources: resources})
}

// RestoreStream rebuilds a Stream from a checkpoint taken with its Snapshot
// method. The resumed scheduler's decisions are identical to those the
// original would have produced had it never been interrupted:
//
//	snap, _ := s.Snapshot()        // persist before shutdown
//	s2, _ := rrsched.RestoreStream(snap)
//	dec, _ := s2.Push(r, jobs)     // continues where s left off
func RestoreStream(snapshot []byte) (*Stream, error) {
	return stream.Restore(snapshot)
}
