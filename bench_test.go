// Benchmarks: one per experiment (E1–E12, the stand-ins for the paper's
// absent tables/figures — see DESIGN.md), plus micro-benchmarks of the
// engine and the core policy. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes the full experiment in Quick mode per
// iteration, so -bench also regenerates (a small version of) every table.
package rrsched_test

import (
	"fmt"
	"io"
	"testing"

	"rrsched"
	"rrsched/internal/core"
	"rrsched/internal/experiments"
	"rrsched/internal/sim"
	"rrsched/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(experiments.Config{Quick: true})
		if err != nil {
			b.Fatalf("%s failed: %v", id, err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1DeltaLRUAdversary(b *testing.B)   { benchExperiment(b, "E1") }
func BenchmarkE2EDFAdversary(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3Theorem1(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4Theorem2(b *testing.B)            { benchExperiment(b, "E4") }
func BenchmarkE5Theorem3(b *testing.B)            { benchExperiment(b, "E5") }
func BenchmarkE6EligibleDrops(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7EpochAccounting(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8BackgroundShortTerm(b *testing.B) { benchExperiment(b, "E8") }
func BenchmarkE9ExactOPT(b *testing.B)            { benchExperiment(b, "E9") }
func BenchmarkE10Augmentation(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Ablations(b *testing.B)          { benchExperiment(b, "E11") }
func BenchmarkE12Paging(b *testing.B)             { benchExperiment(b, "E12") }
func BenchmarkE13SuperEpochs(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14Transforms(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15Adaptive(b *testing.B)           { benchExperiment(b, "E15") }
func BenchmarkE16Quantiles(b *testing.B)          { benchExperiment(b, "E16") }
func BenchmarkE17AdversaryMining(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18Faults(b *testing.B)             { benchExperiment(b, "E18") }

// BenchmarkEngineDeltaLRUEDF measures raw engine + core-policy throughput in
// rounds/op at several scales.
func BenchmarkEngineDeltaLRUEDF(b *testing.B) {
	for _, scale := range []struct {
		colors int
		n      int
		rounds int64
	}{
		{colors: 8, n: 8, rounds: 1024},
		{colors: 32, n: 16, rounds: 1024},
		{colors: 128, n: 64, rounds: 1024},
	} {
		name := fmt.Sprintf("colors=%d/n=%d", scale.colors, scale.n)
		b.Run(name, func(b *testing.B) {
			seq, err := workload.RandomBatched(workload.RandomConfig{
				Seed: 1, Delta: 4, Colors: scale.colors, Rounds: scale.rounds,
				MinDelayExp: 1, MaxDelayExp: 4, Load: 0.6, RateLimited: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			env := sim.Env{Seq: seq, Resources: scale.n, Replication: 2, Speed: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(env, core.NewDeltaLRUEDF()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(scale.rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}

// BenchmarkFullStack measures the end-to-end VarBatch ∘ Distribute ∘
// ΔLRU-EDF pipeline on a general instance.
func BenchmarkFullStack(b *testing.B) {
	seq, err := workload.RandomGeneral(workload.RandomConfig{
		Seed: 1, Delta: 4, Colors: 16, Rounds: 1024,
		MinDelayExp: 1, MaxDelayExp: 5, Load: 0.5, ZipfS: 1.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rrsched.Schedule(seq, 16); err != nil {
			b.Fatal(err)
		}
	}
}
